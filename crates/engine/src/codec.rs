//! The binary value codec: little-endian, length-delimited encodings of
//! [`Request`] and [`Response`] used by the binary wire framing
//! ([`wire`](crate::wire)).
//!
//! Design rules, mirroring the JSON contract they sit beside:
//!
//! * **Zero-copy decode.** A request payload decodes to
//!   [`RequestRef`], which borrows every string straight from the frame
//!   buffer. The owned-conversion seam ([`RequestRef::to_owned`])
//!   allocates only for the ops that actually carry strings (`open`,
//!   `answer`, `sql`) — `suggest`, `screens`, `verdict`, `stats` and
//!   friends decode and convert without touching the heap.
//! * **Fixed-width primitives.** `u8`/`u32`/`u64` and `f64` are
//!   little-endian; strings and lists are `u32` count + items. No
//!   varints: predictable layout beats a few bytes on a local wire.
//! * **Op bytes follow the v1 op table.** The byte for each op is its
//!   row index in `api::OPS` — append-only, like error codes. There is
//!   deliberately no binary `batch` op: binary clients pipeline frames
//!   instead, which the multiplexed server already executes in order.
//! * **Responses decode to the canonical JSON shape.**
//!   [`decode_response`] returns the same [`Json`] object the JSON
//!   codec would have produced for the same response (`ok`, echoed
//!   `id`, `trace`, then the payload fields in the same order), so
//!   differential tests and clients compare codecs byte-for-byte after
//!   one render. `stats` bodies embed the canonical JSON rendering as a
//!   string for the same reason — the snapshot is an operator surface,
//!   not a hot path.

use scrutinizer_core::report::{ClaimOutcome, Verdict};
use scrutinizer_core::PropertyKind;

use crate::api::{kind_label, stats_json, ApiError, ErrorCode, Request, Response};
use crate::protocol::Json;
use crate::session::{ClaimQuestions, Suggestion};

/// Envelope flag: the request carries a `u64` request id.
pub const FLAG_HAS_ID: u8 = 1;
/// Envelope flag: the request carries a `u64` trace id.
pub const FLAG_HAS_TRACE: u8 = 1 << 1;

/// Binary request envelope: the version/id/trace fields that precede the
/// op byte (the binary mirror of the JSON `v`/`id`/`trace` keys; ids and
/// traces are `u64` here, rendered as a number and 16 hex digits on the
/// JSON side).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BinEnvelope {
    /// Protocol version claimed by the client.
    pub version: u8,
    /// Client-chosen request id, echoed in the response.
    pub id: Option<u64>,
    /// Client-chosen trace id, echoed and attached to spans.
    pub trace: Option<u64>,
}

/// A [`Request`] decoded without copying: every string borrows from the
/// frame buffer. Claims lists are materialized (dispatch needs a slice),
/// strings are not.
#[derive(Debug, Clone, PartialEq)]
pub enum RequestRef<'a> {
    /// `open`
    Open {
        /// Checker name, if given.
        checker: Option<&'a str>,
    },
    /// `submit`
    Submit {
        /// Target session.
        session: u64,
        /// Corpus claim ids.
        claims: Vec<usize>,
    },
    /// `next_batch`
    NextBatch {
        /// Target session.
        session: u64,
    },
    /// `screens`
    Screens {
        /// Target session.
        session: u64,
        /// Corpus claim id.
        claim: usize,
    },
    /// `answer`
    Answer {
        /// Target session.
        session: u64,
        /// Corpus claim id.
        claim: usize,
        /// The property the answer validates.
        kind: PropertyKind,
        /// The chosen option (borrowed from the frame).
        answer: &'a str,
    },
    /// `suggest`
    Suggest {
        /// Target session.
        session: u64,
        /// Corpus claim id.
        claim: usize,
    },
    /// `verdict`
    Verdict {
        /// Target session.
        session: u64,
        /// Corpus claim id.
        claim: usize,
        /// The checker's judgment.
        correct: bool,
        /// Rank of the confirming suggestion, if accepted.
        chosen: Option<usize>,
    },
    /// `sql`
    Sql {
        /// The statement text (borrowed from the frame).
        query: &'a str,
    },
    /// `verify_batch`
    VerifyBatch {
        /// Corpus claim ids.
        claims: Vec<usize>,
        /// Base worker seed.
        seed: Option<u64>,
    },
    /// `stats`
    Stats,
    /// `metrics`
    Metrics,
    /// `close`
    Close {
        /// Target session.
        session: u64,
    },
}

impl RequestRef<'_> {
    /// The owned-conversion seam: materializes the borrowed request.
    /// Allocates only where the op carries strings or lists; the
    /// string-free ops (`suggest`, `screens`, `stats`, …) convert
    /// without heap traffic.
    pub fn to_owned(&self) -> Request {
        match self {
            RequestRef::Open { checker } => Request::Open {
                checker: checker.map(str::to_string),
            },
            RequestRef::Submit { session, claims } => Request::Submit {
                session: *session,
                claims: claims.clone(),
            },
            RequestRef::NextBatch { session } => Request::NextBatch { session: *session },
            RequestRef::Screens { session, claim } => Request::Screens {
                session: *session,
                claim: *claim,
            },
            RequestRef::Answer {
                session,
                claim,
                kind,
                answer,
            } => Request::Answer {
                session: *session,
                claim: *claim,
                kind: *kind,
                answer: (*answer).to_string(),
            },
            RequestRef::Suggest { session, claim } => Request::Suggest {
                session: *session,
                claim: *claim,
            },
            RequestRef::Verdict {
                session,
                claim,
                correct,
                chosen,
            } => Request::Verdict {
                session: *session,
                claim: *claim,
                correct: *correct,
                chosen: *chosen,
            },
            RequestRef::Sql { query } => Request::Sql {
                query: (*query).to_string(),
            },
            RequestRef::VerifyBatch { claims, seed } => Request::VerifyBatch {
                claims: claims.clone(),
                seed: *seed,
            },
            RequestRef::Stats => Request::Stats,
            RequestRef::Metrics => Request::Metrics,
            RequestRef::Close { session } => Request::Close { session: *session },
        }
    }
}

// ---- primitive writers --------------------------------------------------

pub(crate) fn put_u8(out: &mut Vec<u8>, value: u8) {
    out.push(value);
}

pub(crate) fn put_u32(out: &mut Vec<u8>, value: u32) {
    out.extend_from_slice(&value.to_le_bytes());
}

pub(crate) fn put_u64(out: &mut Vec<u8>, value: u64) {
    out.extend_from_slice(&value.to_le_bytes());
}

pub(crate) fn put_f64(out: &mut Vec<u8>, value: f64) {
    out.extend_from_slice(&value.to_le_bytes());
}

pub(crate) fn put_str(out: &mut Vec<u8>, value: &str) {
    put_u32(out, value.len() as u32);
    out.extend_from_slice(value.as_bytes());
}

// ---- primitive reader ---------------------------------------------------

/// Cursor over a frame payload. Every read is bounds-checked; running
/// off the end is a structural `parse_error`, mirroring bad JSON.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

fn truncated() -> ApiError {
    ApiError::new(ErrorCode::ParseError, "truncated binary payload")
}

impl<'a> Reader<'a> {
    pub(crate) fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.pos >= self.buf.len()
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], ApiError> {
        let end = self.pos.checked_add(n).ok_or_else(truncated)?;
        if end > self.buf.len() {
            return Err(truncated());
        }
        let slice = &self.buf[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    pub(crate) fn u8(&mut self) -> Result<u8, ApiError> {
        Ok(self.take(1)?[0])
    }

    pub(crate) fn u32(&mut self) -> Result<u32, ApiError> {
        let bytes = self.take(4)?;
        Ok(u32::from_le_bytes(bytes.try_into().expect("4 bytes")))
    }

    pub(crate) fn u64(&mut self) -> Result<u64, ApiError> {
        let bytes = self.take(8)?;
        Ok(u64::from_le_bytes(bytes.try_into().expect("8 bytes")))
    }

    pub(crate) fn f64(&mut self) -> Result<f64, ApiError> {
        Ok(f64::from_bits(self.u64()?))
    }

    pub(crate) fn bool(&mut self) -> Result<bool, ApiError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(ApiError::new(
                ErrorCode::ParseError,
                format!("invalid boolean byte {other}"),
            )),
        }
    }

    pub(crate) fn str(&mut self) -> Result<&'a str, ApiError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        std::str::from_utf8(bytes)
            .map_err(|_| ApiError::new(ErrorCode::ParseError, "string field is not UTF-8"))
    }

    fn claims(&mut self) -> Result<Vec<usize>, ApiError> {
        let count = self.u32()? as usize;
        // cap pre-allocation by what the payload can actually hold (8
        // bytes per id), so a lying count cannot balloon memory
        let mut out = Vec::with_capacity(count.min((self.buf.len() - self.pos) / 8 + 1));
        for _ in 0..count {
            out.push(self.u64()? as usize);
        }
        Ok(out)
    }
}

// ---- op bytes -----------------------------------------------------------

const OP_OPEN: u8 = 0;
const OP_SUBMIT: u8 = 1;
const OP_NEXT_BATCH: u8 = 2;
const OP_SCREENS: u8 = 3;
const OP_ANSWER: u8 = 4;
const OP_SUGGEST: u8 = 5;
const OP_VERDICT: u8 = 6;
const OP_SQL: u8 = 7;
const OP_VERIFY_BATCH: u8 = 8;
const OP_STATS: u8 = 9;
const OP_METRICS: u8 = 10;
const OP_CLOSE: u8 = 11;

pub(crate) fn kind_byte(kind: PropertyKind) -> u8 {
    match kind {
        PropertyKind::Relation => 0,
        PropertyKind::Key => 1,
        PropertyKind::Attribute => 2,
        PropertyKind::Formula => 3,
    }
}

pub(crate) fn kind_from_byte(byte: u8) -> Option<PropertyKind> {
    match byte {
        0 => Some(PropertyKind::Relation),
        1 => Some(PropertyKind::Key),
        2 => Some(PropertyKind::Attribute),
        3 => Some(PropertyKind::Formula),
        _ => None,
    }
}

// ---- request encode (client side) ---------------------------------------

/// Encodes one request payload (envelope + op + body), without the frame
/// length prefix — [`wire::frame_into`](crate::wire::frame_into) adds
/// that.
pub fn encode_request(out: &mut Vec<u8>, request: &Request, id: Option<u64>, trace: Option<u64>) {
    put_u8(out, crate::api::PROTOCOL_VERSION as u8);
    let mut flags = 0u8;
    if id.is_some() {
        flags |= FLAG_HAS_ID;
    }
    if trace.is_some() {
        flags |= FLAG_HAS_TRACE;
    }
    put_u8(out, flags);
    if let Some(id) = id {
        put_u64(out, id);
    }
    if let Some(trace) = trace {
        put_u64(out, trace);
    }
    match request {
        Request::Open { checker } => {
            put_u8(out, OP_OPEN);
            match checker {
                Some(name) => {
                    put_u8(out, 1);
                    put_str(out, name);
                }
                None => put_u8(out, 0),
            }
        }
        Request::Submit { session, claims } => {
            put_u8(out, OP_SUBMIT);
            put_u64(out, *session);
            put_claims(out, claims);
        }
        Request::NextBatch { session } => {
            put_u8(out, OP_NEXT_BATCH);
            put_u64(out, *session);
        }
        Request::Screens { session, claim } => {
            put_u8(out, OP_SCREENS);
            put_u64(out, *session);
            put_u64(out, *claim as u64);
        }
        Request::Answer {
            session,
            claim,
            kind,
            answer,
        } => {
            put_u8(out, OP_ANSWER);
            put_u64(out, *session);
            put_u64(out, *claim as u64);
            put_u8(out, kind_byte(*kind));
            put_str(out, answer);
        }
        Request::Suggest { session, claim } => {
            put_u8(out, OP_SUGGEST);
            put_u64(out, *session);
            put_u64(out, *claim as u64);
        }
        Request::Verdict {
            session,
            claim,
            correct,
            chosen,
        } => {
            put_u8(out, OP_VERDICT);
            put_u64(out, *session);
            put_u64(out, *claim as u64);
            put_u8(out, u8::from(*correct));
            match chosen {
                Some(rank) => {
                    put_u8(out, 1);
                    put_u64(out, *rank as u64);
                }
                None => put_u8(out, 0),
            }
        }
        Request::Sql { query } => {
            put_u8(out, OP_SQL);
            put_str(out, query);
        }
        Request::VerifyBatch { claims, seed } => {
            put_u8(out, OP_VERIFY_BATCH);
            put_claims(out, claims);
            match seed {
                Some(seed) => {
                    put_u8(out, 1);
                    put_u64(out, *seed);
                }
                None => put_u8(out, 0),
            }
        }
        Request::Stats => put_u8(out, OP_STATS),
        Request::Metrics => put_u8(out, OP_METRICS),
        Request::Close { session } => {
            put_u8(out, OP_CLOSE);
            put_u64(out, *session);
        }
    }
}

fn put_claims(out: &mut Vec<u8>, claims: &[usize]) {
    put_u32(out, claims.len() as u32);
    for &claim in claims {
        put_u64(out, claim as u64);
    }
}

// ---- request decode (server side, zero-copy) ----------------------------

/// Decodes the envelope fields off the front of a frame payload,
/// returning the envelope and a reader positioned at the op byte. Split
/// from [`decode_body`] so the version gate can answer with the echoed
/// id even when the op body never decodes.
pub fn decode_envelope(payload: &[u8]) -> Result<(BinEnvelope, Reader<'_>), ApiError> {
    let mut reader = Reader::new(payload);
    let version = reader.u8()?;
    let flags = reader.u8()?;
    let id = if flags & FLAG_HAS_ID != 0 {
        Some(reader.u64()?)
    } else {
        None
    };
    let trace = if flags & FLAG_HAS_TRACE != 0 {
        Some(reader.u64()?)
    } else {
        None
    };
    Ok((BinEnvelope { version, id, trace }, reader))
}

/// Decodes the op byte and body from a reader positioned past the
/// envelope (see [`decode_envelope`]). Strings borrow from the payload.
pub fn decode_body<'a>(reader: &mut Reader<'a>) -> Result<RequestRef<'a>, ApiError> {
    let op = reader.u8()?;
    let request = match op {
        OP_OPEN => RequestRef::Open {
            checker: if reader.bool()? {
                Some(reader.str()?)
            } else {
                None
            },
        },
        OP_SUBMIT => RequestRef::Submit {
            session: reader.u64()?,
            claims: reader.claims()?,
        },
        OP_NEXT_BATCH => RequestRef::NextBatch {
            session: reader.u64()?,
        },
        OP_SCREENS => RequestRef::Screens {
            session: reader.u64()?,
            claim: reader.u64()? as usize,
        },
        OP_ANSWER => RequestRef::Answer {
            session: reader.u64()?,
            claim: reader.u64()? as usize,
            kind: {
                let byte = reader.u8()?;
                kind_from_byte(byte).ok_or_else(|| {
                    ApiError::new(
                        ErrorCode::InvalidArgument,
                        format!("invalid property kind byte {byte}"),
                    )
                })?
            },
            answer: reader.str()?,
        },
        OP_SUGGEST => RequestRef::Suggest {
            session: reader.u64()?,
            claim: reader.u64()? as usize,
        },
        OP_VERDICT => RequestRef::Verdict {
            session: reader.u64()?,
            claim: reader.u64()? as usize,
            correct: reader.bool()?,
            chosen: if reader.bool()? {
                Some(reader.u64()? as usize)
            } else {
                None
            },
        },
        OP_SQL => RequestRef::Sql {
            query: reader.str()?,
        },
        OP_VERIFY_BATCH => RequestRef::VerifyBatch {
            claims: reader.claims()?,
            seed: if reader.bool()? {
                Some(reader.u64()?)
            } else {
                None
            },
        },
        OP_STATS => RequestRef::Stats,
        OP_METRICS => RequestRef::Metrics,
        OP_CLOSE => RequestRef::Close {
            session: reader.u64()?,
        },
        other => {
            return Err(ApiError::new(
                ErrorCode::UnknownOp,
                format!("unknown binary op byte {other}"),
            ))
        }
    };
    if !reader.is_empty() {
        return Err(ApiError::new(
            ErrorCode::ParseError,
            "trailing bytes after binary request body",
        ));
    }
    Ok(request)
}

// ---- response encode (server side) --------------------------------------

const RESP_SESSION: u8 = 0;
const RESP_BATCH: u8 = 1;
const RESP_QUESTIONS: u8 = 2;
const RESP_REMAINING: u8 = 3;
const RESP_SUGGESTIONS: u8 = 4;
const RESP_VERDICT: u8 = 5;
const RESP_VALUE: u8 = 6;
const RESP_OUTCOMES: u8 = 7;
const RESP_STATS: u8 = 8;
const RESP_METRICS: u8 = 9;
const RESP_CLOSED: u8 = 10;

fn verdict_byte(verdict: &Verdict) -> u8 {
    match verdict {
        Verdict::Correct { .. } => 0,
        Verdict::Incorrect { .. } => 1,
        Verdict::Skipped => 2,
    }
}

fn verdict_wire_name(byte: u8) -> Result<&'static str, ApiError> {
    match byte {
        0 => Ok("correct"),
        1 => Ok("incorrect"),
        2 => Ok("skipped"),
        other => Err(ApiError::new(
            ErrorCode::ParseError,
            format!("invalid verdict byte {other}"),
        )),
    }
}

fn put_response_envelope(out: &mut Vec<u8>, ok: bool, id: Option<u64>, trace: u64) {
    put_u8(out, u8::from(ok));
    let flags = if id.is_some() { FLAG_HAS_ID } else { 0 };
    put_u8(out, flags);
    if let Some(id) = id {
        put_u64(out, id);
    }
    put_u64(out, trace);
}

fn put_questions(out: &mut Vec<u8>, questions: &ClaimQuestions) {
    put_u64(out, questions.claim_id as u64);
    put_f64(out, questions.expected_cost);
    put_u32(out, questions.screens.len() as u32);
    for screen in &questions.screens {
        put_u8(out, kind_byte(screen.kind));
        put_u32(out, screen.options.len() as u32);
        for option in &screen.options {
            put_str(out, option);
        }
    }
}

fn put_suggestions(out: &mut Vec<u8>, suggestions: &[Suggestion]) {
    put_u32(out, suggestions.len() as u32);
    for suggestion in suggestions {
        put_u64(out, suggestion.rank as u64);
        put_str(out, &suggestion.sql);
        put_str(out, &suggestion.formula);
        put_f64(out, suggestion.value);
        put_u8(out, u8::from(suggestion.matches_parameter));
    }
}

fn put_outcomes(out: &mut Vec<u8>, outcomes: &[ClaimOutcome]) {
    put_u32(out, outcomes.len() as u32);
    for outcome in outcomes {
        put_u64(out, outcome.claim_id as u64);
        put_u8(out, verdict_byte(&outcome.verdict));
        put_u8(out, u8::from(outcome.verdict_matches_truth));
        put_f64(out, outcome.crowd_seconds);
    }
}

/// Encodes one success response payload (without the frame length
/// prefix): response envelope, kind byte, then the body fields in the
/// same order the JSON payload lists them.
pub fn encode_ok_response(out: &mut Vec<u8>, id: Option<u64>, trace: u64, response: &Response) {
    put_response_envelope(out, true, id, trace);
    match response {
        Response::Session { session } => {
            put_u8(out, RESP_SESSION);
            put_u64(out, *session);
        }
        Response::Batch { batch } => {
            put_u8(out, RESP_BATCH);
            put_u32(out, batch.len() as u32);
            for questions in batch {
                put_questions(out, questions);
            }
        }
        Response::Questions { questions } => {
            put_u8(out, RESP_QUESTIONS);
            put_questions(out, questions);
        }
        Response::Remaining { remaining } => {
            put_u8(out, RESP_REMAINING);
            put_u64(out, *remaining as u64);
        }
        Response::Suggestions { suggestions } => {
            put_u8(out, RESP_SUGGESTIONS);
            put_suggestions(out, suggestions);
        }
        Response::Verdict { record } => {
            put_u8(out, RESP_VERDICT);
            put_u8(out, verdict_byte(&record.outcome.verdict));
            put_u8(out, u8::from(record.outcome.verdict_matches_truth));
            put_u8(out, u8::from(record.retrained));
        }
        Response::Value { value } => {
            put_u8(out, RESP_VALUE);
            put_f64(out, *value);
        }
        Response::Outcomes { outcomes } => {
            put_u8(out, RESP_OUTCOMES);
            put_outcomes(out, outcomes);
        }
        Response::Stats { stats } => {
            put_u8(out, RESP_STATS);
            put_str(out, &stats_json(stats).render());
        }
        Response::Metrics { exposition } => {
            put_u8(out, RESP_METRICS);
            put_str(out, exposition);
        }
        Response::Closed { verified } => {
            put_u8(out, RESP_CLOSED);
            put_claims(out, verified);
        }
    }
}

/// Encodes one error response payload (without the frame length prefix):
/// response envelope, the stable code byte ([`ErrorCode::index`]), then
/// the human-readable message.
pub fn encode_err_response(
    out: &mut Vec<u8>,
    id: Option<u64>,
    trace: u64,
    code: ErrorCode,
    message: &str,
) {
    put_response_envelope(out, false, id, trace);
    put_u8(out, code.index() as u8);
    put_str(out, message);
}

// ---- response decode (client side) --------------------------------------

fn read_questions(reader: &mut Reader<'_>) -> Result<Json, ApiError> {
    let claim = reader.u64()?;
    let cost = reader.f64()?;
    let n_screens = reader.u32()? as usize;
    let mut screens = Vec::with_capacity(n_screens.min(1024));
    for _ in 0..n_screens {
        let kind = kind_from_byte(reader.u8()?)
            .ok_or_else(|| ApiError::new(ErrorCode::ParseError, "invalid screen kind byte"))?;
        let n_options = reader.u32()? as usize;
        let mut options = Vec::with_capacity(n_options.min(1024));
        for _ in 0..n_options {
            options.push(Json::Str(reader.str()?.to_string()));
        }
        screens.push(crate::protocol::obj(vec![
            ("kind", Json::Str(kind_label(kind).to_string())),
            ("options", Json::Arr(options)),
        ]));
    }
    Ok(crate::protocol::obj(vec![
        ("claim", Json::Num(claim as f64)),
        ("expected_cost", Json::Num(cost)),
        ("screens", Json::Arr(screens)),
    ]))
}

/// Decodes one binary response payload into the canonical JSON response
/// object — the exact shape the JSON codec emits for the same response
/// (`ok`, echoed `id`, `trace` as 16 hex digits, then the payload).
/// This is the client half of the codec, used by tests, benches, and
/// the simulation harness to compare codecs value-for-value.
pub fn decode_response(payload: &[u8]) -> Result<Json, ApiError> {
    let mut reader = Reader::new(payload);
    let ok = reader.bool()?;
    let flags = reader.u8()?;
    let id = if flags & FLAG_HAS_ID != 0 {
        Some(reader.u64()?)
    } else {
        None
    };
    let trace = reader.u64()?;
    let mut fields: Vec<(String, Json)> = vec![("ok".to_string(), Json::Bool(ok))];
    if let Some(id) = id {
        fields.push(("id".to_string(), Json::Num(id as f64)));
    }
    fields.push(("trace".to_string(), Json::Str(format!("{trace:016x}"))));
    if !ok {
        let code_byte = reader.u8()? as usize;
        let code = *ErrorCode::ALL.get(code_byte).ok_or_else(|| {
            ApiError::new(
                ErrorCode::ParseError,
                format!("invalid error code byte {code_byte}"),
            )
        })?;
        let message = reader.str()?.to_string();
        fields.push(("code".to_string(), Json::Str(code.name().to_string())));
        fields.push(("error".to_string(), Json::Str(message)));
        return Ok(Json::Obj(fields));
    }
    let kind = reader.u8()?;
    match kind {
        RESP_SESSION => fields.push(("session".to_string(), Json::Num(reader.u64()? as f64))),
        RESP_BATCH => {
            let count = reader.u32()? as usize;
            let mut batch = Vec::with_capacity(count.min(1024));
            for _ in 0..count {
                batch.push(read_questions(&mut reader)?);
            }
            fields.push(("batch".to_string(), Json::Arr(batch)));
        }
        RESP_QUESTIONS => fields.push(("questions".to_string(), read_questions(&mut reader)?)),
        RESP_REMAINING => fields.push(("remaining".to_string(), Json::Num(reader.u64()? as f64))),
        RESP_SUGGESTIONS => {
            let count = reader.u32()? as usize;
            let mut suggestions = Vec::with_capacity(count.min(1024));
            for _ in 0..count {
                let rank = reader.u64()?;
                let sql = reader.str()?.to_string();
                let formula = reader.str()?.to_string();
                let value = reader.f64()?;
                let matches = reader.bool()?;
                suggestions.push(crate::protocol::obj(vec![
                    ("rank", Json::Num(rank as f64)),
                    ("sql", Json::Str(sql)),
                    ("formula", Json::Str(formula)),
                    ("value", Json::Num(value)),
                    ("matches_parameter", Json::Bool(matches)),
                ]));
            }
            fields.push(("suggestions".to_string(), Json::Arr(suggestions)));
        }
        RESP_VERDICT => {
            let verdict = verdict_wire_name(reader.u8()?)?;
            let matches = reader.bool()?;
            let retrained = reader.bool()?;
            fields.push(("verdict".to_string(), Json::Str(verdict.to_string())));
            fields.push(("matches_truth".to_string(), Json::Bool(matches)));
            fields.push(("retrained".to_string(), Json::Bool(retrained)));
        }
        RESP_VALUE => fields.push(("value".to_string(), Json::Num(reader.f64()?))),
        RESP_OUTCOMES => {
            let count = reader.u32()? as usize;
            let mut outcomes = Vec::with_capacity(count.min(1024));
            for _ in 0..count {
                let claim = reader.u64()?;
                let verdict = verdict_wire_name(reader.u8()?)?;
                let matches = reader.bool()?;
                let seconds = reader.f64()?;
                outcomes.push(crate::protocol::obj(vec![
                    ("claim", Json::Num(claim as f64)),
                    ("verdict", Json::Str(verdict.to_string())),
                    ("matches_truth", Json::Bool(matches)),
                    ("crowd_seconds", Json::Num(seconds)),
                ]));
            }
            fields.push(("outcomes".to_string(), Json::Arr(outcomes)));
        }
        RESP_STATS => {
            let body = reader.str()?;
            let stats = Json::parse(body).map_err(|error| {
                ApiError::new(
                    ErrorCode::ParseError,
                    format!("embedded stats body is not JSON: {error}"),
                )
            })?;
            fields.push(("stats".to_string(), stats));
        }
        RESP_METRICS => fields.push(("metrics".to_string(), Json::Str(reader.str()?.to_string()))),
        RESP_CLOSED => {
            let count = reader.u32()? as usize;
            let mut verified = Vec::with_capacity(count.min(1024));
            for _ in 0..count {
                verified.push(Json::Num(reader.u64()? as f64));
            }
            fields.push(("verified".to_string(), Json::Arr(verified)));
        }
        other => {
            return Err(ApiError::new(
                ErrorCode::ParseError,
                format!("invalid response kind byte {other}"),
            ))
        }
    }
    if !reader.is_empty() {
        return Err(ApiError::new(
            ErrorCode::ParseError,
            "trailing bytes after binary response body",
        ));
    }
    Ok(Json::Obj(fields))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(request: Request) {
        let mut payload = Vec::new();
        encode_request(&mut payload, &request, Some(7), Some(0xAB));
        let (envelope, mut reader) = decode_envelope(&payload).expect("envelope decodes");
        assert_eq!(envelope.version, 1);
        assert_eq!(envelope.id, Some(7));
        assert_eq!(envelope.trace, Some(0xAB));
        let decoded = decode_body(&mut reader).expect("body decodes");
        assert_eq!(decoded.to_owned(), request);
    }

    #[test]
    fn every_request_round_trips() {
        round_trip(Request::Open { checker: None });
        round_trip(Request::Open {
            checker: Some("alice \u{1F980}".to_string()),
        });
        round_trip(Request::Submit {
            session: 3,
            claims: vec![0, 5, 99],
        });
        round_trip(Request::NextBatch { session: 9 });
        round_trip(Request::Screens {
            session: 1,
            claim: 2,
        });
        round_trip(Request::Answer {
            session: 1,
            claim: 2,
            kind: PropertyKind::Key,
            answer: "a \"quoted\"\nanswer".to_string(),
        });
        round_trip(Request::Suggest {
            session: 1,
            claim: 2,
        });
        round_trip(Request::Verdict {
            session: 1,
            claim: 2,
            correct: true,
            chosen: Some(0),
        });
        round_trip(Request::Sql {
            query: "SELECT a.x FROM t a".to_string(),
        });
        round_trip(Request::VerifyBatch {
            claims: vec![1, 2],
            seed: Some(u64::MAX),
        });
        round_trip(Request::Stats);
        round_trip(Request::Metrics);
        round_trip(Request::Close { session: 4 });
    }

    #[test]
    fn envelope_flags_are_independent() {
        let mut payload = Vec::new();
        encode_request(&mut payload, &Request::Stats, None, None);
        let (envelope, mut reader) = decode_envelope(&payload).unwrap();
        assert_eq!(envelope.id, None);
        assert_eq!(envelope.trace, None);
        assert_eq!(decode_body(&mut reader).unwrap(), RequestRef::Stats);
    }

    #[test]
    fn truncation_anywhere_is_a_parse_error() {
        let mut payload = Vec::new();
        encode_request(
            &mut payload,
            &Request::Sql {
                query: "SELECT 1".to_string(),
            },
            Some(1),
            None,
        );
        for cut in 0..payload.len() {
            let slice = &payload[..cut];
            let outcome = decode_envelope(slice)
                .and_then(|(_, mut reader)| decode_body(&mut reader).map(|_| ()));
            assert!(outcome.is_err(), "prefix of {cut} bytes decoded");
        }
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let mut payload = Vec::new();
        encode_request(&mut payload, &Request::Stats, None, None);
        payload.push(0xFF);
        let (_, mut reader) = decode_envelope(&payload).unwrap();
        let error = decode_body(&mut reader).unwrap_err();
        assert_eq!(error.code, ErrorCode::ParseError);
    }

    #[test]
    fn unknown_op_byte_maps_to_unknown_op() {
        let payload = [1u8, 0, 200];
        let (_, mut reader) = decode_envelope(&payload).unwrap();
        let error = decode_body(&mut reader).unwrap_err();
        assert_eq!(error.code, ErrorCode::UnknownOp);
    }

    #[test]
    fn error_response_decodes_to_canonical_json() {
        let mut payload = Vec::new();
        encode_err_response(
            &mut payload,
            Some(9),
            0xCD,
            ErrorCode::UnknownSession,
            "unknown session s9",
        );
        let decoded = decode_response(&payload).expect("decodes");
        assert_eq!(decoded.get("ok").and_then(Json::as_bool), Some(false));
        assert_eq!(decoded.get("id").and_then(Json::as_usize), Some(9));
        assert_eq!(
            decoded.get("trace").and_then(Json::as_str),
            Some("00000000000000cd")
        );
        assert_eq!(
            decoded.get("code").and_then(Json::as_str),
            Some("unknown_session")
        );
    }

    #[test]
    fn suggestions_response_matches_json_payload_order() {
        let response = Response::Suggestions {
            suggestions: vec![Suggestion {
                rank: 0,
                sql: "SELECT a.x FROM t a".to_string(),
                formula: "x".to_string(),
                value: 42.5,
                matches_parameter: true,
            }]
            .into(),
        };
        let mut payload = Vec::new();
        encode_ok_response(&mut payload, None, 1, &response);
        let decoded = decode_response(&payload).expect("decodes");
        let suggestions = decoded
            .get("suggestions")
            .and_then(Json::as_arr)
            .expect("array");
        assert_eq!(
            suggestions[0].get("sql").and_then(Json::as_str),
            Some("SELECT a.x FROM t a")
        );
        assert_eq!(
            suggestions[0].get("value").and_then(Json::as_f64),
            Some(42.5)
        );
    }
}
