//! The typed, versioned service API — the contract between the engine
//! and every client (TCP, in-process, tests, benches).
//!
//! [`Request`] and [`Response`] are closed enums with one variant per
//! operation; [`ApiError`] pairs a stable machine-consumable
//! [`ErrorCode`] with a human-readable message. The JSON layer is a thin
//! table-driven codec ([`Request::from_json`] / [`Response::to_json`]);
//! dispatch ([`dispatch`]) is typed end to end, so validation lives in
//! the engine and error codes are uniform regardless of entry point.
//!
//! ## Op table (protocol v1)
//!
//! | op             | request fields                          | success payload | typical errors |
//! |----------------|-----------------------------------------|-----------------|----------------|
//! | `open`         | `checker?`                              | `session`       | — |
//! | `submit`       | `session`, `claims: [id]`               | `batch: [claim questions]` | `unknown_session`, `unknown_claim` |
//! | `next_batch`   | `session`                               | `batch`         | `unknown_session` |
//! | `screens`      | `session`, `claim`                      | `questions`     | `unknown_session`, `not_in_batch` |
//! | `answer`       | `session`, `claim`, `kind`, `answer`    | `remaining`     | `wrong_phase`, `unexpected_answer` |
//! | `suggest`      | `session`, `claim`                      | `suggestions`   | `not_in_batch`, `wrong_phase` |
//! | `verdict`      | `session`, `claim`, `correct`, `chosen?`| `verdict`, `matches_truth`, `retrained` | `wrong_phase` |
//! | `sql`          | `query`                                 | `value`         | `sql` |
//! | `verify_batch` | `claims: [id]`, `seed?`                 | `outcomes`      | `unknown_claim` |
//! | `stats`        | —                                       | `stats` ([`StatsSnapshot`]) | — |
//! | `metrics`      | —                                       | `metrics` (Prometheus text exposition) | — |
//! | `close`        | `session`                               | `verified: [id]`| `unknown_session` |
//! | `batch`        | `requests: [sub-request]`               | `results: [per-item response]` | `invalid_argument` |
//!
//! ## Versioning, request ids, and trace ids
//!
//! Every request may carry `"v"` (the protocol version; current: `1`).
//! Requests without `v` are treated as v1; any other version gets an
//! `unsupported_version` error. Clients may also attach an `"id"` (any
//! JSON value); the response echoes it verbatim right after `"ok"`, which
//! is what lets a pipelining client match many in-flight responses to
//! their requests. **v1 response fields are append-only**: new fields may
//! appear at the end of response objects, existing fields never change
//! meaning or type.
//!
//! Requests may also carry `"trace"` (a string): the distributed trace id
//! for the request, echoed verbatim in the response and attached to every
//! span the request produces in the flight recorder
//! ([`scrutinizer_obs::trace`]) — including a background retrain the
//! request triggers. When absent, the server generates one (16 lowercase
//! hex digits) and echoes it, so every response names its trace. Batch
//! sub-requests inherit the batch's trace unless they carry their own.
//!
//! ## Batching
//!
//! The `batch` op carries sub-requests executed in order, with one
//! response object per item (each echoing its own `id`); a failed item
//! does not abort the rest. `batch` cannot nest. A checker UI can thus
//! submit a report, fetch screens, and prefetch suggestions in a single
//! round trip.

use std::sync::Arc;

use scrutinizer_core::report::{ClaimOutcome, Verdict};
use scrutinizer_core::PropertyKind;
use scrutinizer_crowd::WorkerConfig;

use crate::engine::{Engine, EngineError, VerdictRecord};
use crate::protocol::{obj, Json};
use crate::session::{ClaimQuestions, SessionId, Suggestion};
use crate::stats::{HistogramSnapshot, StatsSnapshot, WireCodec};
use scrutinizer_obs::{self as obs, TraceId};

/// The protocol version this server speaks.
pub const PROTOCOL_VERSION: u64 = 1;

/// Most sub-requests one `batch` op may carry.
pub const MAX_BATCH_REQUESTS: usize = 256;

/// Stable machine-consumable error codes — the closed set every wire
/// error draws from. Codes are part of the v1 contract: existing codes
/// never change meaning; new ones may be appended.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ErrorCode {
    /// The request line is not valid JSON (or not a request object).
    ParseError,
    /// A required field is missing or has the wrong type.
    InvalidArgument,
    /// The `op` names no operation this server knows.
    UnknownOp,
    /// The request's `v` names a protocol version this server does not
    /// speak.
    UnsupportedVersion,
    /// No such session (never opened, or closed).
    UnknownSession,
    /// The claim id is not part of the corpus.
    UnknownClaim,
    /// The claim was not submitted to this session.
    NotInBatch,
    /// The operation does not fit the claim's current phase.
    WrongPhase,
    /// The posted answer's property has no screen outstanding.
    UnexpectedAnswer,
    /// Raw SQL execution failed.
    Sql,
    /// The server is at its connection limit.
    Overloaded,
    /// Unexpected server-side failure.
    Internal,
}

impl ErrorCode {
    /// Every code, in stable order (the per-code counter layout).
    pub const ALL: [ErrorCode; 12] = [
        ErrorCode::ParseError,
        ErrorCode::InvalidArgument,
        ErrorCode::UnknownOp,
        ErrorCode::UnsupportedVersion,
        ErrorCode::UnknownSession,
        ErrorCode::UnknownClaim,
        ErrorCode::NotInBatch,
        ErrorCode::WrongPhase,
        ErrorCode::UnexpectedAnswer,
        ErrorCode::Sql,
        ErrorCode::Overloaded,
        ErrorCode::Internal,
    ];

    /// Number of codes (sizes the per-code counter arrays).
    pub const COUNT: usize = Self::ALL.len();

    /// The stable wire name of this code.
    pub fn name(self) -> &'static str {
        match self {
            ErrorCode::ParseError => "parse_error",
            ErrorCode::InvalidArgument => "invalid_argument",
            ErrorCode::UnknownOp => "unknown_op",
            ErrorCode::UnsupportedVersion => "unsupported_version",
            ErrorCode::UnknownSession => "unknown_session",
            ErrorCode::UnknownClaim => "unknown_claim",
            ErrorCode::NotInBatch => "not_in_batch",
            ErrorCode::WrongPhase => "wrong_phase",
            ErrorCode::UnexpectedAnswer => "unexpected_answer",
            ErrorCode::Sql => "sql",
            ErrorCode::Overloaded => "overloaded",
            ErrorCode::Internal => "internal",
        }
    }

    /// Position in [`ErrorCode::ALL`] (the per-code counter index).
    pub fn index(self) -> usize {
        Self::ALL
            .iter()
            .position(|c| *c == self)
            .expect("every code is in ALL")
    }
}

impl std::fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A structured API failure: a stable [`ErrorCode`] plus a human-readable
/// message. This is what every wire error renders from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ApiError {
    /// The stable machine-consumable code.
    pub code: ErrorCode,
    /// Human-readable detail (not part of the stability contract).
    pub message: String,
}

impl ApiError {
    /// An error with the given code and message.
    pub fn new(code: ErrorCode, message: impl Into<String>) -> Self {
        ApiError {
            code,
            message: message.into(),
        }
    }

    fn invalid(message: impl Into<String>) -> Self {
        ApiError::new(ErrorCode::InvalidArgument, message)
    }
}

impl std::fmt::Display for ApiError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.code, self.message)
    }
}

impl std::error::Error for ApiError {}

impl From<EngineError> for ApiError {
    fn from(error: EngineError) -> Self {
        let code = match &error {
            EngineError::UnknownSession(_) => ErrorCode::UnknownSession,
            EngineError::UnknownClaim(_) => ErrorCode::UnknownClaim,
            EngineError::ClaimNotSubmitted(_) => ErrorCode::NotInBatch,
            EngineError::WrongPhase { .. } => ErrorCode::WrongPhase,
            EngineError::UnexpectedAnswer(_) => ErrorCode::UnexpectedAnswer,
            EngineError::Sql(_) => ErrorCode::Sql,
        };
        ApiError::new(code, error.to_string())
    }
}

/// One typed request — one variant per v1 operation. The wire-level
/// `batch` envelope is not a `Request`: it is unwrapped by
/// [`handle_value`] into a sequence of these.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Open a session for a named checker (`"anonymous"` when omitted).
    Open {
        /// Checker name, if given.
        checker: Option<String>,
    },
    /// Submit a report of corpus claims to a session.
    Submit {
        /// Target session.
        session: u64,
        /// Corpus claim ids.
        claims: Vec<usize>,
    },
    /// Re-plan the session's open claims with the current models.
    NextBatch {
        /// Target session.
        session: u64,
    },
    /// Fetch one claim's outstanding screens.
    Screens {
        /// Target session.
        session: u64,
        /// Corpus claim id.
        claim: usize,
    },
    /// Post a checker's answer to the claim's next screen.
    Answer {
        /// Target session.
        session: u64,
        /// Corpus claim id.
        claim: usize,
        /// The property the answer validates.
        kind: PropertyKind,
        /// The chosen option.
        answer: String,
    },
    /// Generate the claim's ranked candidate queries.
    Suggest {
        /// Target session.
        session: u64,
        /// Corpus claim id.
        claim: usize,
    },
    /// Record the checker's verdict for a claim.
    Verdict {
        /// Target session.
        session: u64,
        /// Corpus claim id.
        claim: usize,
        /// The checker's judgment.
        correct: bool,
        /// Rank of the confirming suggestion, if one was accepted.
        chosen: Option<usize>,
    },
    /// Execute one raw SQL statement against the shared catalog.
    Sql {
        /// The statement text.
        query: String,
    },
    /// Verify a batch of claims with simulated checkers.
    VerifyBatch {
        /// Corpus claim ids.
        claims: Vec<usize>,
        /// Base worker seed (default 1).
        seed: Option<u64>,
    },
    /// Fetch the engine-wide metrics snapshot.
    Stats,
    /// Fetch every metric in Prometheus text exposition format.
    Metrics,
    /// Close a session.
    Close {
        /// Target session.
        session: u64,
    },
}

/// One typed response — the success payload of the matching [`Request`].
#[derive(Debug, Clone)]
pub enum Response {
    /// `open` succeeded.
    Session {
        /// The new session id.
        session: u64,
    },
    /// `submit` / `next_batch` succeeded.
    Batch {
        /// The planned question batch, in presentation order.
        batch: Vec<ClaimQuestions>,
    },
    /// `screens` succeeded.
    Questions {
        /// The claim's outstanding screens.
        questions: ClaimQuestions,
    },
    /// `answer` succeeded.
    Remaining {
        /// Screens still outstanding for the claim.
        remaining: usize,
    },
    /// `suggest` succeeded.
    Suggestions {
        /// Ranked candidate queries, shared with the engine's per-claim
        /// cache — repeated suggests on unchanged claim state clone the
        /// `Arc`, not the suggestions.
        suggestions: Arc<[Suggestion]>,
    },
    /// `verdict` succeeded.
    Verdict {
        /// The recorded verdict.
        record: VerdictRecord,
    },
    /// `sql` succeeded.
    Value {
        /// The statement's value.
        value: f64,
    },
    /// `verify_batch` succeeded.
    Outcomes {
        /// Per-claim outcomes, in input order.
        outcomes: Vec<ClaimOutcome>,
    },
    /// `stats` succeeded.
    Stats {
        /// The metrics snapshot.
        stats: Box<StatsSnapshot>,
    },
    /// `metrics` succeeded.
    Metrics {
        /// The registry rendered as Prometheus text exposition.
        exposition: String,
    },
    /// `close` succeeded.
    Closed {
        /// Ids of claims the session verified.
        verified: Vec<usize>,
    },
}

// ---- the table-driven codec --------------------------------------------

type OpParser = fn(&Json) -> Result<Request, ApiError>;

/// One row per v1 operation: wire name → typed parser.
const OPS: &[(&str, OpParser)] = &[
    ("open", parse_open),
    ("submit", parse_submit),
    ("next_batch", parse_next_batch),
    ("screens", parse_screens),
    ("answer", parse_answer),
    ("suggest", parse_suggest),
    ("verdict", parse_verdict),
    ("sql", parse_sql),
    ("verify_batch", parse_verify_batch),
    ("stats", parse_stats),
    ("metrics", parse_metrics),
    ("close", parse_close),
];

fn field_session(request: &Json) -> Result<u64, ApiError> {
    request
        .get("session")
        .and_then(Json::as_usize)
        .map(|id| id as u64)
        .ok_or_else(|| ApiError::invalid("missing `session`"))
}

fn field_claim(request: &Json) -> Result<usize, ApiError> {
    request
        .get("claim")
        .and_then(Json::as_usize)
        .ok_or_else(|| ApiError::invalid("missing `claim`"))
}

fn field_claims(request: &Json) -> Result<Vec<usize>, ApiError> {
    let items = request
        .get("claims")
        .and_then(Json::as_arr)
        .ok_or_else(|| ApiError::invalid("missing `claims`"))?;
    items
        .iter()
        .map(|item| {
            item.as_usize()
                .ok_or_else(|| ApiError::invalid(format!("invalid claim id {}", item.render())))
        })
        .collect()
}

fn field_str(request: &Json, name: &str) -> Result<String, ApiError> {
    request
        .get(name)
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or_else(|| ApiError::invalid(format!("missing `{name}`")))
}

fn parse_open(request: &Json) -> Result<Request, ApiError> {
    Ok(Request::Open {
        checker: request
            .get("checker")
            .and_then(Json::as_str)
            .map(str::to_string),
    })
}

fn parse_submit(request: &Json) -> Result<Request, ApiError> {
    Ok(Request::Submit {
        session: field_session(request)?,
        claims: field_claims(request)?,
    })
}

fn parse_next_batch(request: &Json) -> Result<Request, ApiError> {
    Ok(Request::NextBatch {
        session: field_session(request)?,
    })
}

fn parse_screens(request: &Json) -> Result<Request, ApiError> {
    Ok(Request::Screens {
        session: field_session(request)?,
        claim: field_claim(request)?,
    })
}

fn parse_answer(request: &Json) -> Result<Request, ApiError> {
    let session = field_session(request)?;
    let claim = field_claim(request)?;
    let kind = request
        .get("kind")
        .and_then(Json::as_str)
        .and_then(property_kind)
        .ok_or_else(|| ApiError::invalid("missing or invalid `kind`"))?;
    let answer = field_str(request, "answer")?;
    Ok(Request::Answer {
        session,
        claim,
        kind,
        answer,
    })
}

fn parse_suggest(request: &Json) -> Result<Request, ApiError> {
    Ok(Request::Suggest {
        session: field_session(request)?,
        claim: field_claim(request)?,
    })
}

fn parse_verdict(request: &Json) -> Result<Request, ApiError> {
    Ok(Request::Verdict {
        session: field_session(request)?,
        claim: field_claim(request)?,
        correct: request
            .get("correct")
            .and_then(Json::as_bool)
            .ok_or_else(|| ApiError::invalid("missing `correct`"))?,
        // lenient on purpose, matching the pre-v1 contract: a malformed
        // `chosen` falls back to "no suggestion accepted"
        chosen: request.get("chosen").and_then(Json::as_usize),
    })
}

fn parse_sql(request: &Json) -> Result<Request, ApiError> {
    Ok(Request::Sql {
        query: field_str(request, "query")?,
    })
}

fn parse_verify_batch(request: &Json) -> Result<Request, ApiError> {
    Ok(Request::VerifyBatch {
        claims: field_claims(request)?,
        seed: request.get("seed").and_then(Json::as_f64).map(|s| s as u64),
    })
}

fn parse_stats(_request: &Json) -> Result<Request, ApiError> {
    Ok(Request::Stats)
}

fn parse_metrics(_request: &Json) -> Result<Request, ApiError> {
    Ok(Request::Metrics)
}

fn parse_close(request: &Json) -> Result<Request, ApiError> {
    Ok(Request::Close {
        session: field_session(request)?,
    })
}

impl Request {
    /// The wire name of this request's op.
    pub fn op_name(&self) -> &'static str {
        match self {
            Request::Open { .. } => "open",
            Request::Submit { .. } => "submit",
            Request::NextBatch { .. } => "next_batch",
            Request::Screens { .. } => "screens",
            Request::Answer { .. } => "answer",
            Request::Suggest { .. } => "suggest",
            Request::Verdict { .. } => "verdict",
            Request::Sql { .. } => "sql",
            Request::VerifyBatch { .. } => "verify_batch",
            Request::Stats => "stats",
            Request::Metrics => "metrics",
            Request::Close { .. } => "close",
        }
    }

    /// Decodes one request object. The error carries
    /// [`ErrorCode::InvalidArgument`] for missing/mistyped fields and
    /// [`ErrorCode::UnknownOp`] for ops outside the v1 table.
    pub fn from_json(value: &Json) -> Result<Request, ApiError> {
        let Some(op) = value.get("op").and_then(Json::as_str) else {
            return Err(ApiError::invalid("missing `op`"));
        };
        match OPS.iter().find(|(name, _)| *name == op) {
            Some((_, parser)) => parser(value),
            None => Err(ApiError::new(
                ErrorCode::UnknownOp,
                format!("unknown op `{op}`"),
            )),
        }
    }

    /// Encodes this request as its wire object (no `v`/`id` envelope
    /// fields; add those separately if needed — absent `v` means v1).
    pub fn to_json(&self) -> Json {
        let mut fields: Vec<(&str, Json)> = vec![("op", Json::Str(self.op_name().to_string()))];
        match self {
            Request::Open { checker } => {
                if let Some(checker) = checker {
                    fields.push(("checker", Json::Str(checker.clone())));
                }
            }
            Request::Submit { session, claims } => {
                fields.push(("session", Json::Num(*session as f64)));
                fields.push(("claims", claim_array(claims)));
            }
            Request::NextBatch { session } | Request::Close { session } => {
                fields.push(("session", Json::Num(*session as f64)));
            }
            Request::Screens { session, claim } | Request::Suggest { session, claim } => {
                fields.push(("session", Json::Num(*session as f64)));
                fields.push(("claim", Json::Num(*claim as f64)));
            }
            Request::Answer {
                session,
                claim,
                kind,
                answer,
            } => {
                fields.push(("session", Json::Num(*session as f64)));
                fields.push(("claim", Json::Num(*claim as f64)));
                fields.push(("kind", Json::Str(kind_label(*kind).to_string())));
                fields.push(("answer", Json::Str(answer.clone())));
            }
            Request::Verdict {
                session,
                claim,
                correct,
                chosen,
            } => {
                fields.push(("session", Json::Num(*session as f64)));
                fields.push(("claim", Json::Num(*claim as f64)));
                fields.push(("correct", Json::Bool(*correct)));
                if let Some(chosen) = chosen {
                    fields.push(("chosen", Json::Num(*chosen as f64)));
                }
            }
            Request::Sql { query } => {
                fields.push(("query", Json::Str(query.clone())));
            }
            Request::VerifyBatch { claims, seed } => {
                fields.push(("claims", claim_array(claims)));
                if let Some(seed) = seed {
                    fields.push(("seed", Json::Num(*seed as f64)));
                }
            }
            Request::Stats | Request::Metrics => {}
        }
        obj(fields)
    }
}

fn claim_array(claims: &[usize]) -> Json {
    Json::Arr(claims.iter().map(|&id| Json::Num(id as f64)).collect())
}

impl Response {
    /// Encodes this response as its wire object, `{"ok":true, ...payload}`
    /// (no `id` echo; the envelope layer adds it).
    pub fn to_json(&self) -> Json {
        let mut fields = vec![("ok".to_string(), Json::Bool(true))];
        append_payload(&mut fields, self);
        Json::Obj(fields)
    }
}

/// Appends the response's payload fields (everything after `ok`/`id`).
fn append_payload(fields: &mut Vec<(String, Json)>, response: &Response) {
    let mut push = |name: &str, value: Json| fields.push((name.to_string(), value));
    match response {
        Response::Session { session } => push("session", Json::Num(*session as f64)),
        Response::Batch { batch } => push(
            "batch",
            Json::Arr(batch.iter().map(questions_json).collect()),
        ),
        Response::Questions { questions } => push("questions", questions_json(questions)),
        Response::Remaining { remaining } => push("remaining", Json::Num(*remaining as f64)),
        Response::Suggestions { suggestions } => push(
            "suggestions",
            Json::Arr(suggestions.iter().map(suggestion_json).collect()),
        ),
        Response::Verdict { record } => {
            push(
                "verdict",
                Json::Str(verdict_name(&record.outcome.verdict).to_string()),
            );
            push(
                "matches_truth",
                Json::Bool(record.outcome.verdict_matches_truth),
            );
            push("retrained", Json::Bool(record.retrained));
        }
        Response::Value { value } => push("value", Json::Num(*value)),
        Response::Outcomes { outcomes } => push(
            "outcomes",
            Json::Arr(outcomes.iter().map(outcome_json).collect()),
        ),
        Response::Stats { stats } => push("stats", stats_json(stats)),
        Response::Metrics { exposition } => push("metrics", Json::Str(exposition.clone())),
        Response::Closed { verified } => push(
            "verified",
            Json::Arr(verified.iter().map(|&id| Json::Num(id as f64)).collect()),
        ),
    }
}

// ---- shared value → JSON renderers -------------------------------------

/// Parses a wire property-kind label.
pub(crate) fn property_kind(name: &str) -> Option<PropertyKind> {
    match name {
        "relation" => Some(PropertyKind::Relation),
        "key" => Some(PropertyKind::Key),
        "attribute" => Some(PropertyKind::Attribute),
        "formula" => Some(PropertyKind::Formula),
        _ => None,
    }
}

/// The wire label of a property kind (inverse of [`property_kind`]).
pub(crate) fn kind_label(kind: PropertyKind) -> &'static str {
    match kind {
        PropertyKind::Relation => "relation",
        PropertyKind::Key => "key",
        PropertyKind::Attribute => "attribute",
        PropertyKind::Formula => "formula",
    }
}

/// The wire name of a verdict.
pub(crate) fn verdict_name(verdict: &Verdict) -> &'static str {
    match verdict {
        Verdict::Correct { .. } => "correct",
        Verdict::Incorrect { .. } => "incorrect",
        Verdict::Skipped => "skipped",
    }
}

pub(crate) fn questions_json(questions: &ClaimQuestions) -> Json {
    obj(vec![
        ("claim", Json::Num(questions.claim_id as f64)),
        ("expected_cost", Json::Num(questions.expected_cost)),
        (
            "screens",
            Json::Arr(
                questions
                    .screens
                    .iter()
                    .map(|s| {
                        obj(vec![
                            ("kind", Json::Str(kind_label(s.kind).to_string())),
                            (
                                "options",
                                Json::Arr(s.options.iter().map(|o| Json::Str(o.clone())).collect()),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

pub(crate) fn suggestion_json(suggestion: &Suggestion) -> Json {
    obj(vec![
        ("rank", Json::Num(suggestion.rank as f64)),
        ("sql", Json::Str(suggestion.sql.clone())),
        ("formula", Json::Str(suggestion.formula.clone())),
        ("value", Json::Num(suggestion.value)),
        (
            "matches_parameter",
            Json::Bool(suggestion.matches_parameter),
        ),
    ])
}

pub(crate) fn outcome_json(outcome: &ClaimOutcome) -> Json {
    obj(vec![
        ("claim", Json::Num(outcome.claim_id as f64)),
        (
            "verdict",
            Json::Str(verdict_name(&outcome.verdict).to_string()),
        ),
        ("matches_truth", Json::Bool(outcome.verdict_matches_truth)),
        ("crowd_seconds", Json::Num(outcome.crowd_seconds)),
    ])
}

fn histogram_json(snapshot: &HistogramSnapshot) -> Json {
    obj(vec![
        ("count", Json::Num(snapshot.count as f64)),
        ("mean_micros", Json::Num(snapshot.mean_micros())),
        (
            "p50_micros",
            Json::Num(snapshot.quantile_micros(0.5) as f64),
        ),
        (
            "p99_micros",
            Json::Num(snapshot.quantile_micros(0.99) as f64),
        ),
        // append-only: interpolated (log-linear) quantile estimates next
        // to the original bucket-ceiling bounds
        ("p50_est_micros", Json::Num(snapshot.p50())),
        ("p95_est_micros", Json::Num(snapshot.p95())),
        ("p99_est_micros", Json::Num(snapshot.p99())),
    ])
}

pub(crate) fn stats_json(snapshot: &StatsSnapshot) -> Json {
    let count = |n: u64| Json::Num(n as f64);
    obj(vec![
        ("sessions_opened", count(snapshot.sessions_opened)),
        ("sessions_closed", count(snapshot.sessions_closed)),
        ("sessions_live", count(snapshot.sessions_live)),
        ("claims_verified", count(snapshot.claims_verified)),
        ("answers_posted", count(snapshot.answers_posted)),
        ("suggestions_served", count(snapshot.suggestions_served)),
        ("retrains", count(snapshot.retrains)),
        ("background_retrains", count(snapshot.background_retrains)),
        ("model_epoch", count(snapshot.model_epoch)),
        ("pending_examples", count(snapshot.pending_examples)),
        ("sql_executed", count(snapshot.sql_executed)),
        ("planner_plans", count(snapshot.planner_plans)),
        ("planner_cold_solves", count(snapshot.planner_cold_solves)),
        (
            "planner_incremental_repairs",
            count(snapshot.planner_incremental_repairs),
        ),
        (
            "planner_repair_rejections",
            count(snapshot.planner_repair_rejections),
        ),
        ("planner_fallbacks", count(snapshot.planner_fallbacks)),
        ("planner_nodes", count(snapshot.planner_nodes)),
        (
            "planner_warm_start_hits",
            count(snapshot.planner_warm_start_hits),
        ),
        ("planner_lp_solves", count(snapshot.planner_lp_solves)),
        (
            "planner_last_fallback",
            match &snapshot.planner_last_fallback {
                Some(reason) => Json::Str(reason.clone()),
                None => Json::Null,
            },
        ),
        ("cache_hits", count(snapshot.cache_hits)),
        ("cache_misses", count(snapshot.cache_misses)),
        ("cache_hit_rate", Json::Num(snapshot.cache_hit_rate)),
        ("cache_entries", count(snapshot.cache_entries as u64)),
        ("queue_depth", count(snapshot.queue_depth as u64)),
        ("in_flight", count(snapshot.in_flight as u64)),
        ("plan_latency", histogram_json(&snapshot.plan_latency)),
        ("suggest_latency", histogram_json(&snapshot.suggest_latency)),
        ("verify_latency", histogram_json(&snapshot.verify_latency)),
        ("retrain_latency", histogram_json(&snapshot.retrain_latency)),
        // v1 fields are append-only: the serving-layer gauges and the
        // per-code error counters extend the object at the end
        ("connections_open", count(snapshot.connections_open)),
        ("requests_in_flight", count(snapshot.requests_in_flight)),
        ("pipeline_depth", count(snapshot.pipeline_depth)),
        (
            "errors",
            obj(ErrorCode::ALL
                .iter()
                .map(|&code| (code.name(), count(snapshot.wire_errors[code.index()])))
                .collect()),
        ),
        // append-only: the conservation pair — requests_total equals
        // requests_ok plus the sum of every per-code error counter
        ("requests_total", count(snapshot.requests_total)),
        ("requests_ok", count(snapshot.requests_ok)),
        // append-only: the verdict-loss invariant's trained-examples side
        ("examples_trained", count(snapshot.examples_trained)),
        // append-only: per-codec counters so operators can watch a
        // JSON→binary migration; conservation holds within each codec
        // (total == ok + errors) and the per-codec totals sum to
        // requests_total above
        (
            "codec",
            obj(WireCodec::ALL
                .iter()
                .map(|&codec| {
                    (
                        codec.name(),
                        obj(vec![
                            (
                                "requests_total",
                                count(snapshot.requests_by_codec[codec.index()]),
                            ),
                            (
                                "requests_ok",
                                count(snapshot.requests_ok_by_codec[codec.index()]),
                            ),
                            (
                                "errors",
                                count(snapshot.wire_errors_by_codec[codec.index()]),
                            ),
                        ]),
                    )
                })
                .collect()),
        ),
        // append-only: the durability block. All zeros when the server
        // runs without a --data-dir; with one, `appends` obeys the
        // conservation law (one record per acknowledged state-changing
        // op) and `last_checkpoint_epoch` trails `model_epoch` by at
        // most the in-flight publish
        (
            "wal",
            obj(vec![
                ("appends", count(snapshot.wal_appends)),
                ("bytes_written", count(snapshot.wal_bytes_written)),
                ("fsyncs", count(snapshot.wal_fsyncs)),
                ("segments", count(snapshot.wal_segments)),
                (
                    "last_checkpoint_epoch",
                    count(snapshot.wal_last_checkpoint_epoch),
                ),
            ]),
        ),
    ])
}

// ---- typed dispatch ----------------------------------------------------

/// Executes one typed request against the engine. All validation happens
/// behind this call (inside the engine), so error codes are uniform
/// whatever the entry point — TCP line, in-process call, or `batch`
/// sub-request.
pub fn dispatch(engine: &Arc<Engine>, request: &Request) -> Result<Response, ApiError> {
    let mut _span = obs::span("dispatch");
    _span.add_field("op", request.op_name());
    match request {
        Request::Submit { session, .. }
        | Request::NextBatch { session }
        | Request::Screens { session, .. }
        | Request::Answer { session, .. }
        | Request::Suggest { session, .. }
        | Request::Verdict { session, .. }
        | Request::Close { session } => _span.add_field("session", *session),
        _ => {}
    }
    match request {
        Request::Screens { claim, .. }
        | Request::Answer { claim, .. }
        | Request::Suggest { claim, .. }
        | Request::Verdict { claim, .. } => _span.add_field("claim", *claim),
        _ => {}
    }
    match request {
        Request::Open { checker } => Ok(Response::Session {
            session: engine
                .open_session(checker.as_deref().unwrap_or("anonymous"))
                .0,
        }),
        Request::Submit { session, claims } => Ok(Response::Batch {
            batch: engine.submit_report(SessionId(*session), claims)?,
        }),
        Request::NextBatch { session } => Ok(Response::Batch {
            batch: engine.next_batch(SessionId(*session))?,
        }),
        Request::Screens { session, claim } => Ok(Response::Questions {
            questions: engine.screens(SessionId(*session), *claim)?,
        }),
        Request::Answer {
            session,
            claim,
            kind,
            answer,
        } => Ok(Response::Remaining {
            remaining: engine.post_answer(SessionId(*session), *claim, *kind, answer)?,
        }),
        Request::Suggest { session, claim } => Ok(Response::Suggestions {
            suggestions: engine.suggest(SessionId(*session), *claim)?,
        }),
        Request::Verdict {
            session,
            claim,
            correct,
            chosen,
        } => Ok(Response::Verdict {
            record: engine.post_verdict(SessionId(*session), *claim, *correct, *chosen)?,
        }),
        Request::Sql { query } => Ok(Response::Value {
            value: engine.run_sql(query)?,
        }),
        Request::VerifyBatch { claims, seed } => {
            let config = WorkerConfig {
                seed: seed.unwrap_or(1),
                ..WorkerConfig::default()
            };
            Ok(Response::Outcomes {
                outcomes: engine.verify_batch(claims, config)?,
            })
        }
        Request::Stats => Ok(Response::Stats {
            stats: Box::new(engine.stats()),
        }),
        Request::Metrics => Ok(Response::Metrics {
            exposition: engine.render_metrics(),
        }),
        Request::Close { session } => Ok(Response::Closed {
            verified: engine.close_session(SessionId(*session))?,
        }),
    }
}

// ---- the wire envelope (version, id echo, trace, batch) -----------------

/// Renders a success response with the envelope fields: `ok`, the echoed
/// `id` (when the request carried one), the `trace` id, then the payload.
/// Counts the response toward the conservation invariant
/// (`requests_total`/`requests_ok`).
fn render_ok(engine: &Arc<Engine>, id: Option<&Json>, trace: &str, response: &Response) -> Json {
    engine.stats_ref().note_ok();
    let mut fields = vec![("ok".to_string(), Json::Bool(true))];
    if let Some(id) = id {
        fields.push(("id".to_string(), id.clone()));
    }
    fields.push(("trace".to_string(), Json::Str(trace.to_string())));
    append_payload(&mut fields, response);
    Json::Obj(fields)
}

/// Renders an error response (`ok`, echoed `id`, `trace`, stable `code`,
/// human `error`) and bumps the engine's per-code wire-error counter
/// (which also counts the response toward `requests_total`).
fn render_error(engine: &Arc<Engine>, id: Option<&Json>, trace: &str, error: &ApiError) -> Json {
    engine.stats_ref().note_wire_error(error.code);
    let mut fields = vec![("ok".to_string(), Json::Bool(false))];
    if let Some(id) = id {
        fields.push(("id".to_string(), id.clone()));
    }
    fields.push(("trace".to_string(), Json::Str(trace.to_string())));
    fields.push(("code".to_string(), Json::Str(error.code.name().to_string())));
    fields.push(("error".to_string(), Json::Str(error.message.clone())));
    Json::Obj(fields)
}

fn check_version(value: &Json) -> Result<(), ApiError> {
    match value.get("v") {
        None => Ok(()),
        Some(v) if v.as_usize().map(|n| n as u64) == Some(PROTOCOL_VERSION) => Ok(()),
        Some(v) => Err(ApiError::new(
            ErrorCode::UnsupportedVersion,
            format!(
                "unsupported protocol version {} (this server speaks v{PROTOCOL_VERSION})",
                v.render()
            ),
        )),
    }
}

/// Handles one request line: parse, version-check, decode, dispatch,
/// render — the typed path behind
/// [`handle_request`](crate::protocol::handle_request). Never panics on
/// malformed input.
pub fn handle_line(engine: &Arc<Engine>, line: &str) -> Json {
    match Json::parse(line.trim()) {
        Err(error) => {
            // unparseable lines carry no usable `trace` field; generate an
            // id so even this response names a trace
            let trace = TraceId::generate().to_wire();
            render_error(
                engine,
                None,
                &trace,
                &ApiError::new(ErrorCode::ParseError, format!("bad json: {error}")),
            )
        }
        Ok(value) => handle_value(engine, &value),
    }
}

/// Handles one parsed request object, including the `v`/`id`/`trace`
/// envelope and the `batch` op.
pub fn handle_value(engine: &Arc<Engine>, value: &Json) -> Json {
    handle_envelope(engine, value, None)
}

/// Resolves the request's trace id: its own `trace` field wins, then the
/// enclosing batch's, then a freshly generated id.
fn resolve_trace(value: &Json, inherited: Option<&str>) -> String {
    match value.get("trace").and_then(Json::as_str) {
        Some(wire) => wire.to_string(),
        None => match inherited {
            Some(wire) => wire.to_string(),
            None => TraceId::generate().to_wire(),
        },
    }
}

/// `inherited` is `None` for a top-level request (which opens the root
/// span) and the batch's trace for sub-requests (children of that root).
fn handle_envelope(engine: &Arc<Engine>, value: &Json, inherited: Option<&str>) -> Json {
    let allow_batch = inherited.is_none();
    let id = value.get("id");
    let trace = resolve_trace(value, inherited);
    let mut span = if inherited.is_none() {
        obs::root_span("server.request", TraceId::from_wire(&trace))
    } else {
        obs::span("request")
    };
    if let Some(op) = value.get("op").and_then(Json::as_str) {
        span.add_field("op", op);
    }
    if let Err(error) = check_version(value) {
        return render_error(engine, id, &trace, &error);
    }
    if value.get("op").and_then(Json::as_str) == Some("batch") {
        if !allow_batch {
            return render_error(
                engine,
                id,
                &trace,
                &ApiError::invalid("`batch` cannot nest inside `batch`"),
            );
        }
        let Some(items) = value.get("requests").and_then(Json::as_arr) else {
            return render_error(engine, id, &trace, &ApiError::invalid("missing `requests`"));
        };
        if items.len() > MAX_BATCH_REQUESTS {
            return render_error(
                engine,
                id,
                &trace,
                &ApiError::invalid(format!(
                    "`batch` carries {} sub-requests (limit {MAX_BATCH_REQUESTS})",
                    items.len()
                )),
            );
        }
        // sub-requests execute in order; a failed item reports its own
        // error and does not abort the rest
        let results: Vec<Json> = items
            .iter()
            .map(|item| handle_envelope(engine, item, Some(&trace)))
            .collect();
        engine.stats_ref().note_ok();
        let mut fields = vec![("ok".to_string(), Json::Bool(true))];
        if let Some(id) = id {
            fields.push(("id".to_string(), id.clone()));
        }
        fields.push(("trace".to_string(), Json::Str(trace.clone())));
        fields.push(("results".to_string(), Json::Arr(results)));
        return Json::Obj(fields);
    }
    match Request::from_json(value) {
        Err(error) => render_error(engine, id, &trace, &error),
        Ok(request) => match dispatch(engine, &request) {
            Ok(response) => render_ok(engine, id, &trace, &response),
            Err(error) => render_error(engine, id, &trace, &error),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineOptions;
    use scrutinizer_core::OrderingStrategy;
    use scrutinizer_core::SystemConfig;
    use scrutinizer_corpus::{Corpus, CorpusConfig};

    fn tiny_engine() -> Arc<Engine> {
        // no pretrain: these tests never reach translation/suggestion
        Engine::with_options(
            Corpus::generate(CorpusConfig::small()),
            SystemConfig::test(),
            EngineOptions {
                retrain_interval: None,
                ordering: OrderingStrategy::Sequential,
                ..EngineOptions::default()
            },
        )
    }

    #[test]
    fn error_code_names_are_stable_and_unique() {
        let mut names: Vec<&str> = ErrorCode::ALL.iter().map(|c| c.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), ErrorCode::COUNT, "duplicate wire names");
        for (i, code) in ErrorCode::ALL.iter().enumerate() {
            assert_eq!(code.index(), i);
        }
    }

    #[test]
    fn caught_panics_answer_internal() {
        // `internal` has no legitimate wire trigger (every op handler is
        // guarded), so the panic seam is pinned here; the wire test's
        // exhaustive match points at this one
        let engine = tiny_engine();
        let before = engine.stats().wire_error(ErrorCode::Internal);
        let line = crate::protocol::respond_panicked(&engine, Box::new("boom"));
        let response = Json::parse(line.trim_end()).expect("panic response parses");
        assert_eq!(response.get("ok").and_then(Json::as_bool), Some(false));
        assert_eq!(
            response.get("code").and_then(Json::as_str),
            Some(ErrorCode::Internal.name())
        );
        let message = response
            .get("error")
            .and_then(Json::as_str)
            .expect("human-readable message");
        assert!(
            message.contains("boom"),
            "panic payload surfaced: {message}"
        );
        assert_eq!(
            engine.stats().wire_error(ErrorCode::Internal),
            before + 1,
            "internal errors obey the conservation counters too"
        );
    }

    #[test]
    fn id_is_echoed_verbatim() {
        let engine = tiny_engine();
        let response = handle_line(&engine, r#"{"op":"stats","id":"req-7"}"#);
        assert_eq!(response.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(response.get("id").and_then(Json::as_str), Some("req-7"));
        // numeric and structured ids echo too, and errors echo them as well
        let response = handle_line(&engine, r#"{"op":"nope","id":[1,2]}"#);
        assert_eq!(response.get("ok").and_then(Json::as_bool), Some(false));
        assert_eq!(
            response.get("id"),
            Some(&Json::Arr(vec![Json::Num(1.0), Json::Num(2.0)]))
        );
        assert_eq!(
            response.get("code").and_then(Json::as_str),
            Some("unknown_op")
        );
    }

    #[test]
    fn version_gate_speaks_v1_only() {
        let engine = tiny_engine();
        let ok = handle_line(&engine, r#"{"op":"stats","v":1}"#);
        assert_eq!(ok.get("ok").and_then(Json::as_bool), Some(true));
        let bad = handle_line(&engine, r#"{"op":"stats","v":2,"id":9}"#);
        assert_eq!(bad.get("ok").and_then(Json::as_bool), Some(false));
        assert_eq!(
            bad.get("code").and_then(Json::as_str),
            Some("unsupported_version")
        );
        assert_eq!(bad.get("id").and_then(Json::as_usize), Some(9));
        // a non-numeric version is also rejected with the same code
        let text = handle_line(&engine, r#"{"op":"stats","v":"two"}"#);
        assert_eq!(
            text.get("code").and_then(Json::as_str),
            Some("unsupported_version")
        );
    }

    #[test]
    fn batch_executes_in_order_with_per_item_responses() {
        let engine = tiny_engine();
        let line = r#"{"op":"batch","id":"b","requests":[
            {"op":"open","checker":"alice","id":1},
            {"op":"close","session":1,"id":2},
            {"op":"close","session":1,"id":3}
        ]}"#;
        let response = handle_line(&engine, line);
        assert_eq!(response.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(response.get("id").and_then(Json::as_str), Some("b"));
        let results = response.get("results").and_then(Json::as_arr).unwrap();
        assert_eq!(results.len(), 3);
        assert_eq!(results[0].get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(results[0].get("session").and_then(Json::as_usize), Some(1));
        assert_eq!(results[1].get("ok").and_then(Json::as_bool), Some(true));
        // the double-close fails with its own code, without aborting the batch
        assert_eq!(results[2].get("ok").and_then(Json::as_bool), Some(false));
        assert_eq!(
            results[2].get("code").and_then(Json::as_str),
            Some("unknown_session")
        );
        assert_eq!(results[2].get("id").and_then(Json::as_usize), Some(3));
    }

    #[test]
    fn batch_cannot_nest() {
        let engine = tiny_engine();
        let line = r#"{"op":"batch","requests":[{"op":"batch","requests":[]}]}"#;
        let response = handle_line(&engine, line);
        let results = response.get("results").and_then(Json::as_arr).unwrap();
        assert_eq!(results[0].get("ok").and_then(Json::as_bool), Some(false));
        assert_eq!(
            results[0].get("code").and_then(Json::as_str),
            Some("invalid_argument")
        );
    }

    #[test]
    fn wire_errors_are_counted_per_code() {
        let engine = tiny_engine();
        handle_line(&engine, "{nonsense");
        handle_line(&engine, r#"{"op":"warp"}"#);
        handle_line(&engine, r#"{"op":"close","session":404}"#);
        let stats = engine.stats();
        assert_eq!(stats.wire_errors[ErrorCode::ParseError.index()], 1);
        assert_eq!(stats.wire_errors[ErrorCode::UnknownOp.index()], 1);
        assert_eq!(stats.wire_errors[ErrorCode::UnknownSession.index()], 1);
        assert_eq!(stats.wire_errors[ErrorCode::Sql.index()], 0);
    }

    #[test]
    fn engine_errors_map_to_stable_codes() {
        let cases = [
            (
                EngineError::UnknownSession(3),
                ErrorCode::UnknownSession,
                "unknown session s3",
            ),
            (
                EngineError::UnknownClaim(9),
                ErrorCode::UnknownClaim,
                "unknown claim 9",
            ),
            (
                EngineError::ClaimNotSubmitted(4),
                ErrorCode::NotInBatch,
                "claim 4 was not submitted to this session",
            ),
        ];
        for (engine_error, code, message) in cases {
            let api: ApiError = engine_error.into();
            assert_eq!(api.code, code);
            assert_eq!(api.message, message);
        }
    }
}
