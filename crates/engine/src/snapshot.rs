//! Epoch-versioned model snapshots: the read side of non-blocking learning.
//!
//! Before PR 4 the engine kept its models in a `RwLock<SystemModels>` and
//! retrained **under the write lock** — every suggest/submit/translate in
//! flight stalled for the full retrain latency. The snapshot cell applies
//! the same prepare-once/swap discipline PR 2 used for query plans and
//! PR 3 for batch plans to the models themselves:
//!
//! * readers call [`SnapshotCell::load`] and get an `Arc` to an immutable
//!   [`ModelSnapshot`]; the cell's lock is held only for the pointer clone
//!   (nanoseconds), never across any model work, so a reader can *never*
//!   wait on a trainer;
//! * the background trainer works on a **copy** of the current snapshot's
//!   models and, when done, [`publish`](SnapshotCell::publish)es the result
//!   as a new snapshot with the epoch advanced — an atomic pointer swap.
//!
//! The epoch is the invalidation token for everything derived from the
//! models (session translations, cached utilities): same idea as the
//! `PlanKey` structural fingerprints, but one monotone counter is enough
//! because models only ever advance wholesale.

use std::sync::{Arc, RwLock};

use scrutinizer_core::SystemModels;

/// One immutable published generation of the four property classifiers.
#[derive(Debug)]
pub struct ModelSnapshot {
    /// Monotone generation counter; bumped by every publish.
    pub epoch: u64,
    /// The models themselves. Immutable — retraining clones, trains the
    /// copy off-lock, and publishes a fresh snapshot.
    pub models: SystemModels,
}

/// The swap cell holding the current [`ModelSnapshot`].
///
/// Reads and writes both touch the lock only for an `Arc` clone or a
/// pointer swap; all model computation happens outside it. `RwLock` (not
/// `Mutex`) so concurrent readers do not even serialize against each other
/// on the uncontended path.
#[derive(Debug)]
pub struct SnapshotCell {
    current: RwLock<Arc<ModelSnapshot>>,
}

impl SnapshotCell {
    /// Wraps the bootstrap models as epoch 0.
    pub fn new(models: SystemModels) -> Self {
        Self::with_epoch(models, 0)
    }

    /// Wraps already-trained models at a given starting epoch — the
    /// recovery path's constructor: a restarted engine resumes at the
    /// last durable epoch instead of restarting the counter at zero.
    pub fn with_epoch(models: SystemModels, epoch: u64) -> Self {
        SnapshotCell {
            current: RwLock::new(Arc::new(ModelSnapshot { epoch, models })),
        }
    }

    /// The current snapshot. Wait-free in practice: the read lock guards a
    /// single `Arc::clone`, and writers hold the write lock only for a
    /// pointer swap.
    pub fn load(&self) -> Arc<ModelSnapshot> {
        Arc::clone(&self.current.read().expect("snapshot cell poisoned"))
    }

    /// The current epoch (shorthand for `load().epoch`).
    pub fn epoch(&self) -> u64 {
        self.current.read().expect("snapshot cell poisoned").epoch
    }

    /// Publishes freshly trained models as the next epoch, returning the
    /// new epoch. Readers holding the previous snapshot keep it alive via
    /// their `Arc` until they finish — no reader is ever invalidated
    /// mid-operation.
    pub fn publish(&self, models: SystemModels) -> u64 {
        let mut slot = self.current.write().expect("snapshot cell poisoned");
        let epoch = slot.epoch + 1;
        *slot = Arc::new(ModelSnapshot { epoch, models });
        epoch
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scrutinizer_core::SystemConfig;
    use scrutinizer_corpus::{Corpus, CorpusConfig};

    #[test]
    fn publish_advances_the_epoch_and_readers_keep_their_snapshot() {
        let corpus = Corpus::generate(CorpusConfig::small());
        let models = SystemModels::bootstrap(&corpus, &SystemConfig::test());
        let cell = SnapshotCell::new(models.clone());
        assert_eq!(cell.epoch(), 0);

        let held = cell.load();
        assert_eq!(cell.publish(models.clone()), 1);
        assert_eq!(cell.publish(models), 2);
        assert_eq!(cell.epoch(), 2);
        // the reader's generation is untouched by later publishes
        assert_eq!(held.epoch, 0);
        assert_eq!(cell.load().epoch, 2);
    }
}
