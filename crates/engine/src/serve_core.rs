//! The transport-generic half of the serving loop: one connection's
//! buffers and the flush → read → split state machine, over any
//! [`ByteStream`].
//!
//! [`server`](crate::server) instantiates this over real
//! `TcpStream`s inside its readiness loop; the deterministic simulation
//! harness (`scrutinizer-simcheck`) instantiates the very same code over
//! in-memory [`SimStream`](scrutinizer_sim::SimStream)s — so the state
//! machine being model-checked under injected faults (stalled clients,
//! partial writes, hard drops) is byte-for-byte the one production runs,
//! not a reimplementation.

use std::collections::VecDeque;

use scrutinizer_sim::{ByteStream, IoPoll};

use crate::api::ErrorCode;
use crate::stats::{EngineStats, WireCodec};
use crate::wire;

/// The response line sent to a connection rejected at the connection
/// limit, newline included (shared by the TCP accept path and the
/// simulated one so the wire contract cannot drift).
pub const OVERLOAD_LINE: &[u8] =
    b"{\"ok\":false,\"code\":\"overloaded\",\"error\":\"connection limit reached\"}\n";

/// The per-connection buffer limits [`service_conn`] enforces — the
/// transport-independent subset of
/// [`ServerOptions`](crate::server::ServerOptions).
#[derive(Debug, Clone, Copy)]
pub struct ServiceLimits {
    /// Longest accepted request line, in bytes; a connection exceeding it
    /// gets a `parse_error` response and is closed (there is no way to
    /// resynchronize on an unterminated line).
    pub max_line_bytes: usize,
    /// Write-buffer backlog above which the loop stops executing (and
    /// then reading) for that connection until the client drains.
    pub write_buffer_limit: usize,
    /// Most complete lines queued per connection before the loop stops
    /// reading it (backpressure via transport flow control).
    pub max_pipeline: usize,
}

/// One client connection's buffers and execution state, over any
/// transport.
pub struct ConnState<S> {
    /// The transport.
    pub stream: S,
    /// Bytes received but not yet split into complete requests.
    read_buf: Vec<u8>,
    /// The wire codec this connection negotiated by its first byte:
    /// `None` until the first byte arrives, then fixed for the
    /// connection's lifetime ([`wire::BINARY_MAGIC`] selects binary
    /// framing; anything else is JSON lines).
    pub codec: Option<WireCodec>,
    /// Complete request payloads awaiting execution, in arrival order —
    /// JSON line bytes (without the newline) or binary frame payloads
    /// (without the length prefix).
    pub queue: VecDeque<Vec<u8>>,
    /// Spent payload buffers awaiting reuse (see [`ConnState::recycle`]):
    /// the per-connection scratch that makes a warmed binary connection
    /// allocation-free per request.
    scratch: Vec<Vec<u8>>,
    /// Rendered responses awaiting the transport; `write_pos` marks how
    /// far the prefix has been flushed.
    write_buf: Vec<u8>,
    write_pos: usize,
    /// A request of this connection is currently executing.
    pub in_flight: bool,
    /// Client finished sending (EOF); drain, flush, then close.
    pub eof: bool,
    /// Unrecoverable transport error; discard without draining.
    pub dead: bool,
}

impl<S> ConnState<S> {
    /// Fresh state over a connected transport.
    pub fn new(stream: S) -> Self {
        ConnState {
            stream,
            read_buf: Vec::new(),
            codec: None,
            queue: VecDeque::new(),
            scratch: Vec::new(),
            write_buf: Vec::new(),
            write_pos: 0,
            in_flight: false,
            eof: false,
            dead: false,
        }
    }

    /// Bytes rendered but not yet accepted by the transport.
    pub fn write_backlog(&self) -> usize {
        self.write_buf.len() - self.write_pos
    }

    /// Appends a response line (newline added) to the write buffer.
    pub fn push_response(&mut self, line: &str) {
        self.write_buf.extend_from_slice(line.as_bytes());
        self.write_buf.push(b'\n');
    }

    /// Appends pre-framed response bytes (no delimiter added) to the
    /// write buffer — the binary counterpart of
    /// [`ConnState::push_response`].
    pub fn push_response_bytes(&mut self, bytes: &[u8]) {
        self.write_buf.extend_from_slice(bytes);
    }

    /// Grants direct access to the write buffer so a response can be
    /// encoded in place (via [`wire::frame_into`]) instead of being
    /// assembled elsewhere and copied in. Callers append only.
    pub fn write_buf_mut(&mut self) -> &mut Vec<u8> {
        &mut self.write_buf
    }

    /// Returns a spent payload buffer to the connection's scratch pool
    /// so the next split reuses its capacity instead of allocating.
    pub fn recycle(&mut self, mut buf: Vec<u8>) {
        // bounded pool: one buffer per possible queue slot is plenty
        if self.scratch.len() < 128 {
            buf.clear();
            self.scratch.push(buf);
        }
    }

    /// Fully drained: nothing queued, nothing running, nothing to flush.
    pub fn idle(&self) -> bool {
        self.queue.is_empty() && !self.in_flight && self.write_backlog() == 0
    }
}

/// Flushes what the transport will take, reads what it has, and splits
/// complete lines into the queue. Returns whether anything moved.
///
/// This is the serving loop's entire per-connection I/O pass —
/// executing queued lines and sweeping closed connections stay with the
/// caller, which owns the scheduling policy (worker pool for the TCP
/// server, inline execution for the simulation).
pub fn service_conn<S: ByteStream>(
    conn: &mut ConnState<S>,
    limits: &ServiceLimits,
    shutting_down: bool,
    stats: &EngineStats,
) -> bool {
    let mut progress = false;

    // flush pending responses
    while conn.write_backlog() > 0 {
        match conn.stream.write_nb(&conn.write_buf[conn.write_pos..]) {
            IoPoll::Ready(0) => {
                conn.dead = true;
                break;
            }
            IoPoll::Ready(written) => {
                conn.write_pos += written;
                progress = true;
            }
            IoPoll::WouldBlock => break,
            IoPoll::Closed | IoPoll::Err => {
                conn.dead = true;
                break;
            }
        }
    }
    if conn.write_backlog() == 0 && !conn.write_buf.is_empty() {
        conn.write_buf.clear();
        conn.write_pos = 0;
    }

    // read while the pipeline and write buffer have room; a full queue
    // or a backed-up client pauses reading, and flow control pushes back
    let backpressured = conn.queue.len() >= limits.max_pipeline
        || conn.write_backlog() >= limits.write_buffer_limit;
    if !conn.eof && !conn.dead && !backpressured && !shutting_down {
        let mut chunk = [0u8; 4096];
        loop {
            match conn.stream.read_nb(&mut chunk) {
                IoPoll::Ready(0) => {
                    conn.eof = true;
                    break;
                }
                IoPoll::Ready(received) => {
                    conn.read_buf.extend_from_slice(&chunk[..received]);
                    progress = true;
                    if conn.read_buf.len() >= limits.max_line_bytes
                        || conn.queue.len() >= limits.max_pipeline
                    {
                        break;
                    }
                }
                IoPoll::WouldBlock => break,
                IoPoll::Closed | IoPoll::Err => {
                    conn.dead = true;
                    break;
                }
            }
        }
    }

    // sniff the codec on the connection's first byte: BINARY_MAGIC
    // selects binary framing (the magic byte itself is consumed); any
    // other byte — `{` in practice — falls through to JSON lines
    if conn.codec.is_none() {
        if let Some(&first) = conn.read_buf.first() {
            if first == wire::BINARY_MAGIC {
                conn.codec = Some(WireCodec::Binary);
                conn.read_buf.remove(0);
            } else {
                conn.codec = Some(WireCodec::Json);
            }
            progress = true;
        }
    }

    match conn.codec {
        Some(WireCodec::Binary) => progress |= split_frames(conn, limits, stats),
        _ => progress |= split_lines(conn, limits, stats),
    }

    progress
}

/// The JSON half of the split stage: complete newline-terminated lines
/// move to the queue, never past the pipeline cap — one burst can carry
/// far more lines than `max_pipeline`, and whatever stays unsplit here
/// pauses reads until the queue drains.
fn split_lines<S>(conn: &mut ConnState<S>, limits: &ServiceLimits, stats: &EngineStats) -> bool {
    let mut progress = false;
    while conn.queue.len() < limits.max_pipeline {
        let Some(newline) = conn.read_buf.iter().position(|&b| b == b'\n') else {
            break;
        };
        let rest = conn.read_buf.split_off(newline + 1);
        let mut line_bytes = std::mem::replace(&mut conn.read_buf, rest);
        line_bytes.pop(); // the newline
                          // invalid UTF-8 is queued as-is and lossily decoded at
                          // execution, producing a structured parse_error like any
                          // other bad line
        if line_bytes.iter().any(|b| !b.is_ascii_whitespace()) {
            conn.queue.push_back(line_bytes);
        }
        progress = true;
    }

    let residual_has_newline = conn.read_buf.contains(&b'\n');
    if !residual_has_newline && conn.read_buf.len() >= limits.max_line_bytes {
        // an unterminated line longer than the cap can never
        // resynchronize: answer once, stop reading, close after the flush
        stats.note_wire_error(ErrorCode::ParseError);
        conn.push_response(&format!(
            "{{\"ok\":false,\"code\":\"parse_error\",\"error\":\"request line exceeds {} bytes\"}}",
            limits.max_line_bytes
        ));
        conn.read_buf.clear();
        conn.eof = true;
        progress = true;
    } else if conn.eof
        && !residual_has_newline
        && !conn.read_buf.is_empty()
        && conn.queue.len() < limits.max_pipeline
    {
        // the pre-v1 server answered a final request missing its trailing
        // newline (BufRead::lines yields it at EOF); keep that contract
        let line_bytes = std::mem::take(&mut conn.read_buf);
        if line_bytes.iter().any(|b| !b.is_ascii_whitespace()) {
            conn.queue.push_back(line_bytes);
        }
        progress = true;
    }
    progress
}

/// The binary half of the split stage: complete frames move to the
/// queue (payload only, length prefix stripped), reusing scratch
/// buffers so a warmed connection splits without allocating. Mirrors
/// the JSON limits: a frame announcing more than `max_line_bytes`
/// answers `parse_error` and closes (no resynchronizing mid-frame), and
/// a partial frame at EOF — a truncated length prefix or a payload cut
/// short — answers `parse_error` once, since it can never complete.
fn split_frames<S>(conn: &mut ConnState<S>, limits: &ServiceLimits, stats: &EngineStats) -> bool {
    let mut progress = false;
    while conn.queue.len() < limits.max_pipeline {
        if let Some(announced) = wire::announced_len(&conn.read_buf) {
            if wire::FRAME_HEADER_BYTES + announced > limits.max_line_bytes {
                stats.note_wire_error_as(ErrorCode::ParseError, WireCodec::Binary);
                wire::error_frame(
                    &mut conn.write_buf,
                    ErrorCode::ParseError,
                    &format!("request frame exceeds {} bytes", limits.max_line_bytes),
                );
                conn.read_buf.clear();
                conn.eof = true;
                return true;
            }
        }
        let Some((payload, used)) = wire::split_frame(&conn.read_buf) else {
            break;
        };
        let mut buf = conn.scratch.pop().unwrap_or_default();
        buf.extend_from_slice(payload);
        conn.read_buf.drain(..used);
        // a zero-length frame is queued too: its payload fails to decode
        // and is answered with a parse_error *in pipeline order*, so the
        // connection survives and stays synchronized
        conn.queue.push_back(buf);
        progress = true;
    }

    if conn.eof && !conn.read_buf.is_empty() && conn.queue.len() < limits.max_pipeline {
        // eof with a partial frame buffered: it can never complete
        stats.note_wire_error_as(ErrorCode::ParseError, WireCodec::Binary);
        wire::error_frame(
            &mut conn.write_buf,
            ErrorCode::ParseError,
            "connection closed mid-frame",
        );
        conn.read_buf.clear();
        progress = true;
    }
    progress
}

#[cfg(test)]
mod tests {
    use super::*;
    use scrutinizer_sim::sim_pair;

    fn limits() -> ServiceLimits {
        ServiceLimits {
            max_line_bytes: 64,
            write_buffer_limit: 1 << 16,
            max_pipeline: 4,
        }
    }

    #[test]
    fn lines_split_in_order_and_flush_round_trips() {
        let stats = EngineStats::default();
        let (server, client) = sim_pair();
        let mut conn = ConnState::new(server);
        client.send(b"{\"a\":1}\n{\"b\":2}\n");
        assert!(service_conn(&mut conn, &limits(), false, &stats));
        assert_eq!(conn.codec, Some(WireCodec::Json));
        assert_eq!(conn.queue.len(), 2);
        assert_eq!(conn.queue[0].as_slice(), b"{\"a\":1}");

        conn.push_response("resp");
        assert!(service_conn(&mut conn, &limits(), false, &stats));
        assert_eq!(client.recv(), b"resp\n");
        assert_eq!(conn.write_backlog(), 0);
    }

    #[test]
    fn pipeline_cap_pauses_splitting() {
        let stats = EngineStats::default();
        let (server, client) = sim_pair();
        let mut conn = ConnState::new(server);
        client.send(b"1\n2\n3\n4\n5\n6\n");
        service_conn(&mut conn, &limits(), false, &stats);
        assert_eq!(conn.queue.len(), 4, "split stops at max_pipeline");
        conn.queue.clear();
        service_conn(&mut conn, &limits(), false, &stats);
        assert_eq!(conn.queue.len(), 2, "the rest splits once the queue drains");
    }

    #[test]
    fn oversized_unterminated_line_answers_parse_error_and_closes() {
        let stats = EngineStats::default();
        let (server, client) = sim_pair();
        let mut conn = ConnState::new(server);
        client.send(&[b'x'; 100]);
        service_conn(&mut conn, &limits(), false, &stats);
        assert!(conn.eof, "no resynchronization possible");
        assert!(conn.write_backlog() > 0);
        service_conn(&mut conn, &limits(), false, &stats);
        let out = String::from_utf8(client.recv()).unwrap();
        assert!(out.contains("\"code\":\"parse_error\""), "got {out}");
        assert_eq!(stats.wire_errors[ErrorCode::ParseError.index()].get(), 1);
    }

    #[test]
    fn final_unterminated_line_is_served_at_eof() {
        let stats = EngineStats::default();
        let (server, client) = sim_pair();
        let mut conn = ConnState::new(server);
        client.send(b"{\"op\":\"stats\"}");
        client.close_write();
        service_conn(&mut conn, &limits(), false, &stats);
        assert!(conn.eof);
        assert_eq!(conn.queue.len(), 1);
        assert_eq!(conn.queue[0].as_slice(), b"{\"op\":\"stats\"}");
    }

    #[test]
    fn magic_byte_selects_binary_and_frames_split() {
        let stats = EngineStats::default();
        let (server, client) = sim_pair();
        let mut conn = ConnState::new(server);
        let mut bytes = vec![wire::BINARY_MAGIC];
        wire::frame_into(&mut bytes, |buf| buf.extend_from_slice(b"first"));
        wire::frame_into(&mut bytes, |buf| buf.extend_from_slice(b"second"));
        client.send(&bytes);
        assert!(service_conn(&mut conn, &limits(), false, &stats));
        assert_eq!(conn.codec, Some(WireCodec::Binary));
        assert_eq!(conn.queue.len(), 2);
        assert_eq!(conn.queue[0].as_slice(), b"first");
        assert_eq!(conn.queue[1].as_slice(), b"second");
    }

    #[test]
    fn oversized_frame_answers_parse_error_and_closes() {
        let stats = EngineStats::default();
        let (server, client) = sim_pair();
        let mut conn = ConnState::new(server);
        let mut bytes = vec![wire::BINARY_MAGIC];
        bytes.extend_from_slice(&1000u32.to_le_bytes()); // announces > max_line_bytes
        client.send(&bytes);
        service_conn(&mut conn, &limits(), false, &stats);
        assert!(conn.eof, "no resynchronization possible mid-frame");
        service_conn(&mut conn, &limits(), false, &stats);
        let reply = client.recv();
        let (payload, _) = wire::split_frame(&reply).expect("framed error reply");
        let decoded = crate::codec::decode_response(payload).expect("decodes");
        assert_eq!(
            decoded.get("code").and_then(crate::protocol::Json::as_str),
            Some("parse_error")
        );
        assert_eq!(stats.wire_errors[ErrorCode::ParseError.index()].get(), 1);
        assert_eq!(
            stats.wire_errors_by_codec[WireCodec::Binary.index()].get(),
            1
        );
    }

    #[test]
    fn truncated_frame_at_eof_answers_parse_error() {
        let stats = EngineStats::default();
        let (server, client) = sim_pair();
        let mut conn = ConnState::new(server);
        // magic + half a length prefix, then the client goes away
        client.send(&[wire::BINARY_MAGIC, 0x05, 0x00]);
        client.close_write();
        service_conn(&mut conn, &limits(), false, &stats);
        assert!(conn.eof);
        assert!(conn.queue.is_empty());
        service_conn(&mut conn, &limits(), false, &stats);
        let reply = client.recv();
        let (payload, _) = wire::split_frame(&reply).expect("framed error reply");
        let decoded = crate::codec::decode_response(payload).expect("decodes");
        assert_eq!(
            decoded.get("code").and_then(crate::protocol::Json::as_str),
            Some("parse_error")
        );
    }

    #[test]
    fn frame_arriving_byte_by_byte_assembles() {
        let stats = EngineStats::default();
        let (server, client) = sim_pair();
        let mut conn = ConnState::new(server);
        let mut bytes = vec![wire::BINARY_MAGIC];
        wire::frame_into(&mut bytes, |buf| buf.extend_from_slice(b"slow"));
        for &byte in &bytes {
            client.send(&[byte]);
            service_conn(&mut conn, &limits(), false, &stats);
        }
        assert_eq!(conn.queue.len(), 1);
        assert_eq!(conn.queue[0].as_slice(), b"slow");
        assert_eq!(stats.requests_total.get(), 0, "no spurious errors");
    }

    #[test]
    fn zero_length_frame_is_queued_for_in_order_handling() {
        let stats = EngineStats::default();
        let (server, client) = sim_pair();
        let mut conn = ConnState::new(server);
        let mut bytes = vec![wire::BINARY_MAGIC];
        wire::frame_into(&mut bytes, |_| {});
        wire::frame_into(&mut bytes, |buf| buf.extend_from_slice(b"after"));
        client.send(&bytes);
        service_conn(&mut conn, &limits(), false, &stats);
        assert_eq!(conn.queue.len(), 2);
        assert!(conn.queue[0].is_empty());
        assert_eq!(conn.queue[1].as_slice(), b"after");
        assert!(!conn.eof, "the connection survives a zero-length frame");
    }

    #[test]
    fn recycled_buffers_are_reused_by_the_splitter() {
        let stats = EngineStats::default();
        let (server, client) = sim_pair();
        let mut conn = ConnState::new(server);
        let mut bytes = vec![wire::BINARY_MAGIC];
        wire::frame_into(&mut bytes, |buf| buf.extend_from_slice(b"one"));
        client.send(&bytes);
        service_conn(&mut conn, &limits(), false, &stats);
        let payload = conn.queue.pop_front().unwrap();
        let capacity = payload.capacity();
        let pointer = payload.as_ptr();
        conn.recycle(payload);
        let mut bytes = Vec::new();
        wire::frame_into(&mut bytes, |buf| buf.extend_from_slice(b"two"));
        client.send(&bytes);
        service_conn(&mut conn, &limits(), false, &stats);
        let reused = conn.queue.pop_front().unwrap();
        assert_eq!(reused.as_slice(), b"two");
        assert_eq!(reused.as_ptr(), pointer, "scratch buffer was reused");
        assert_eq!(reused.capacity(), capacity);
    }

    #[test]
    fn hard_drop_marks_dead() {
        let stats = EngineStats::default();
        let (server, client) = sim_pair();
        let mut conn = ConnState::new(server);
        conn.push_response("never delivered");
        client.drop_hard();
        service_conn(&mut conn, &limits(), false, &stats);
        assert!(conn.dead);
    }

    #[test]
    fn partial_writes_flush_across_passes() {
        let stats = EngineStats::default();
        let (server, client) = sim_pair();
        let mut conn = ConnState::new(server);
        client.set_write_cap(Some(3));
        conn.push_response("0123456789");
        while conn.write_backlog() > 0 {
            service_conn(&mut conn, &limits(), false, &stats);
        }
        assert_eq!(client.recv(), b"0123456789\n");
    }
}
