//! The transport-generic half of the serving loop: one connection's
//! buffers and the flush → read → split state machine, over any
//! [`ByteStream`].
//!
//! [`server`](crate::server) instantiates this over real
//! `TcpStream`s inside its readiness loop; the deterministic simulation
//! harness (`scrutinizer-simcheck`) instantiates the very same code over
//! in-memory [`SimStream`](scrutinizer_sim::SimStream)s — so the state
//! machine being model-checked under injected faults (stalled clients,
//! partial writes, hard drops) is byte-for-byte the one production runs,
//! not a reimplementation.

use std::collections::VecDeque;

use scrutinizer_sim::{ByteStream, IoPoll};

use crate::api::ErrorCode;
use crate::stats::EngineStats;

/// The response line sent to a connection rejected at the connection
/// limit, newline included (shared by the TCP accept path and the
/// simulated one so the wire contract cannot drift).
pub const OVERLOAD_LINE: &[u8] =
    b"{\"ok\":false,\"code\":\"overloaded\",\"error\":\"connection limit reached\"}\n";

/// The per-connection buffer limits [`service_conn`] enforces — the
/// transport-independent subset of
/// [`ServerOptions`](crate::server::ServerOptions).
#[derive(Debug, Clone, Copy)]
pub struct ServiceLimits {
    /// Longest accepted request line, in bytes; a connection exceeding it
    /// gets a `parse_error` response and is closed (there is no way to
    /// resynchronize on an unterminated line).
    pub max_line_bytes: usize,
    /// Write-buffer backlog above which the loop stops executing (and
    /// then reading) for that connection until the client drains.
    pub write_buffer_limit: usize,
    /// Most complete lines queued per connection before the loop stops
    /// reading it (backpressure via transport flow control).
    pub max_pipeline: usize,
}

/// One client connection's buffers and execution state, over any
/// transport.
pub struct ConnState<S> {
    /// The transport.
    pub stream: S,
    /// Bytes received but not yet split into complete lines.
    read_buf: Vec<u8>,
    /// Complete request lines awaiting execution, in arrival order.
    pub queue: VecDeque<String>,
    /// Rendered responses awaiting the transport; `write_pos` marks how
    /// far the prefix has been flushed.
    write_buf: Vec<u8>,
    write_pos: usize,
    /// A request of this connection is currently executing.
    pub in_flight: bool,
    /// Client finished sending (EOF); drain, flush, then close.
    pub eof: bool,
    /// Unrecoverable transport error; discard without draining.
    pub dead: bool,
}

impl<S> ConnState<S> {
    /// Fresh state over a connected transport.
    pub fn new(stream: S) -> Self {
        ConnState {
            stream,
            read_buf: Vec::new(),
            queue: VecDeque::new(),
            write_buf: Vec::new(),
            write_pos: 0,
            in_flight: false,
            eof: false,
            dead: false,
        }
    }

    /// Bytes rendered but not yet accepted by the transport.
    pub fn write_backlog(&self) -> usize {
        self.write_buf.len() - self.write_pos
    }

    /// Appends a response line (newline added) to the write buffer.
    pub fn push_response(&mut self, line: &str) {
        self.write_buf.extend_from_slice(line.as_bytes());
        self.write_buf.push(b'\n');
    }

    /// Fully drained: nothing queued, nothing running, nothing to flush.
    pub fn idle(&self) -> bool {
        self.queue.is_empty() && !self.in_flight && self.write_backlog() == 0
    }
}

/// Flushes what the transport will take, reads what it has, and splits
/// complete lines into the queue. Returns whether anything moved.
///
/// This is the serving loop's entire per-connection I/O pass —
/// executing queued lines and sweeping closed connections stay with the
/// caller, which owns the scheduling policy (worker pool for the TCP
/// server, inline execution for the simulation).
pub fn service_conn<S: ByteStream>(
    conn: &mut ConnState<S>,
    limits: &ServiceLimits,
    shutting_down: bool,
    stats: &EngineStats,
) -> bool {
    let mut progress = false;

    // flush pending responses
    while conn.write_backlog() > 0 {
        match conn.stream.write_nb(&conn.write_buf[conn.write_pos..]) {
            IoPoll::Ready(0) => {
                conn.dead = true;
                break;
            }
            IoPoll::Ready(written) => {
                conn.write_pos += written;
                progress = true;
            }
            IoPoll::WouldBlock => break,
            IoPoll::Closed | IoPoll::Err => {
                conn.dead = true;
                break;
            }
        }
    }
    if conn.write_backlog() == 0 && !conn.write_buf.is_empty() {
        conn.write_buf.clear();
        conn.write_pos = 0;
    }

    // read while the pipeline and write buffer have room; a full queue
    // or a backed-up client pauses reading, and flow control pushes back
    let backpressured = conn.queue.len() >= limits.max_pipeline
        || conn.write_backlog() >= limits.write_buffer_limit;
    if !conn.eof && !conn.dead && !backpressured && !shutting_down {
        let mut chunk = [0u8; 4096];
        loop {
            match conn.stream.read_nb(&mut chunk) {
                IoPoll::Ready(0) => {
                    conn.eof = true;
                    break;
                }
                IoPoll::Ready(received) => {
                    conn.read_buf.extend_from_slice(&chunk[..received]);
                    progress = true;
                    if conn.read_buf.len() >= limits.max_line_bytes
                        || conn.queue.len() >= limits.max_pipeline
                    {
                        break;
                    }
                }
                IoPoll::WouldBlock => break,
                IoPoll::Closed | IoPoll::Err => {
                    conn.dead = true;
                    break;
                }
            }
        }
    }

    // split complete lines off the read buffer, never past the pipeline
    // cap — one burst can carry far more lines than max_pipeline, and
    // whatever stays unsplit here pauses reads until the queue drains
    while conn.queue.len() < limits.max_pipeline {
        let Some(newline) = conn.read_buf.iter().position(|&b| b == b'\n') else {
            break;
        };
        let rest = conn.read_buf.split_off(newline + 1);
        let mut line_bytes = std::mem::replace(&mut conn.read_buf, rest);
        line_bytes.pop(); // the newline
                          // invalid UTF-8 flows through lossily and fails JSON parsing,
                          // producing a structured parse_error like any other bad line
        let line = String::from_utf8_lossy(&line_bytes).into_owned();
        if !line.trim().is_empty() {
            conn.queue.push_back(line);
        }
        progress = true;
    }

    let residual_has_newline = conn.read_buf.contains(&b'\n');
    if !residual_has_newline && conn.read_buf.len() >= limits.max_line_bytes {
        // an unterminated line longer than the cap can never
        // resynchronize: answer once, stop reading, close after the flush
        stats.note_wire_error(ErrorCode::ParseError);
        conn.push_response(&format!(
            "{{\"ok\":false,\"code\":\"parse_error\",\"error\":\"request line exceeds {} bytes\"}}",
            limits.max_line_bytes
        ));
        conn.read_buf.clear();
        conn.eof = true;
        progress = true;
    } else if conn.eof
        && !residual_has_newline
        && !conn.read_buf.is_empty()
        && conn.queue.len() < limits.max_pipeline
    {
        // the pre-v1 server answered a final request missing its trailing
        // newline (BufRead::lines yields it at EOF); keep that contract
        let line = String::from_utf8_lossy(&conn.read_buf).into_owned();
        conn.read_buf.clear();
        if !line.trim().is_empty() {
            conn.queue.push_back(line);
        }
        progress = true;
    }

    progress
}

#[cfg(test)]
mod tests {
    use super::*;
    use scrutinizer_sim::sim_pair;

    fn limits() -> ServiceLimits {
        ServiceLimits {
            max_line_bytes: 64,
            write_buffer_limit: 1 << 16,
            max_pipeline: 4,
        }
    }

    #[test]
    fn lines_split_in_order_and_flush_round_trips() {
        let stats = EngineStats::default();
        let (server, client) = sim_pair();
        let mut conn = ConnState::new(server);
        client.send(b"{\"a\":1}\n{\"b\":2}\n");
        assert!(service_conn(&mut conn, &limits(), false, &stats));
        assert_eq!(conn.queue.len(), 2);
        assert_eq!(conn.queue[0], "{\"a\":1}");

        conn.push_response("resp");
        assert!(service_conn(&mut conn, &limits(), false, &stats));
        assert_eq!(client.recv(), b"resp\n");
        assert_eq!(conn.write_backlog(), 0);
    }

    #[test]
    fn pipeline_cap_pauses_splitting() {
        let stats = EngineStats::default();
        let (server, client) = sim_pair();
        let mut conn = ConnState::new(server);
        client.send(b"1\n2\n3\n4\n5\n6\n");
        service_conn(&mut conn, &limits(), false, &stats);
        assert_eq!(conn.queue.len(), 4, "split stops at max_pipeline");
        conn.queue.clear();
        service_conn(&mut conn, &limits(), false, &stats);
        assert_eq!(conn.queue.len(), 2, "the rest splits once the queue drains");
    }

    #[test]
    fn oversized_unterminated_line_answers_parse_error_and_closes() {
        let stats = EngineStats::default();
        let (server, client) = sim_pair();
        let mut conn = ConnState::new(server);
        client.send(&[b'x'; 100]);
        service_conn(&mut conn, &limits(), false, &stats);
        assert!(conn.eof, "no resynchronization possible");
        assert!(conn.write_backlog() > 0);
        service_conn(&mut conn, &limits(), false, &stats);
        let out = String::from_utf8(client.recv()).unwrap();
        assert!(out.contains("\"code\":\"parse_error\""), "got {out}");
        assert_eq!(stats.wire_errors[ErrorCode::ParseError.index()].get(), 1);
    }

    #[test]
    fn final_unterminated_line_is_served_at_eof() {
        let stats = EngineStats::default();
        let (server, client) = sim_pair();
        let mut conn = ConnState::new(server);
        client.send(b"{\"op\":\"stats\"}");
        client.close_write();
        service_conn(&mut conn, &limits(), false, &stats);
        assert!(conn.eof);
        assert_eq!(conn.queue.len(), 1);
        assert_eq!(conn.queue[0], "{\"op\":\"stats\"}");
    }

    #[test]
    fn hard_drop_marks_dead() {
        let stats = EngineStats::default();
        let (server, client) = sim_pair();
        let mut conn = ConnState::new(server);
        conn.push_response("never delivered");
        client.drop_hard();
        service_conn(&mut conn, &limits(), false, &stats);
        assert!(conn.dead);
    }

    #[test]
    fn partial_writes_flush_across_passes() {
        let stats = EngineStats::default();
        let (server, client) = sim_pair();
        let mut conn = ConnState::new(server);
        client.set_write_cap(Some(3));
        conn.push_response("0123456789");
        while conn.write_backlog() > 0 {
            service_conn(&mut conn, &limits(), false, &stats);
        }
        assert_eq!(client.recv(), b"0123456789\n");
    }
}
