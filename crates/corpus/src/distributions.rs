//! Seeded Zipf sampling and frequency-percentile reporting (Table 1).

use rand::rngs::SmallRng;
use rand::Rng;

/// A Zipf distribution over `0..n` with exponent `s`: rank `r` has
/// probability proportional to `1/(r+1)^s`. Sampling is by precomputed CDF
/// and binary search — O(log n) per draw, deterministic given the RNG.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds the distribution.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf over empty support");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for r in 0..n {
            acc += 1.0 / ((r + 1) as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        Zipf { cdf }
    }

    /// Draws a rank in `0..n`.
    pub fn sample(&self, rng: &mut SmallRng) -> usize {
        let u: f64 = rng.gen();
        match self
            .cdf
            .binary_search_by(|c| c.partial_cmp(&u).expect("no NaN"))
        {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }

    /// Support size.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// True when the support is empty (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }
}

/// Percentiles of a frequency multiset — the rows of Table 1.
///
/// `frequencies` are the per-value occurrence counts; returns the values at
/// the requested percentiles (nearest-rank on the ascending sort).
pub fn percentiles(frequencies: &[usize], points: &[f64]) -> Vec<usize> {
    if frequencies.is_empty() {
        return vec![0; points.len()];
    }
    let mut sorted = frequencies.to_vec();
    sorted.sort_unstable();
    points
        .iter()
        .map(|&p| {
            let rank = ((p / 100.0) * sorted.len() as f64).ceil().max(1.0) as usize;
            sorted[rank.min(sorted.len()) - 1]
        })
        .collect()
}

/// The percentile points Table 1 reports.
pub const TABLE1_POINTS: [f64; 5] = [10.0, 25.0, 50.0, 95.0, 99.0];

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn zipf_prefers_low_ranks() {
        let z = Zipf::new(100, 1.1);
        let mut rng = SmallRng::seed_from_u64(5);
        let mut counts = vec![0usize; 100];
        for _ in 0..20_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[10]);
        assert!(counts[10] > counts[60], "{} vs {}", counts[10], counts[60]);
        // all mass within support
        assert_eq!(counts.iter().sum::<usize>(), 20_000);
    }

    #[test]
    fn zipf_deterministic() {
        let z = Zipf::new(50, 1.0);
        let mut a = SmallRng::seed_from_u64(9);
        let mut b = SmallRng::seed_from_u64(9);
        let xs: Vec<usize> = (0..100).map(|_| z.sample(&mut a)).collect();
        let ys: Vec<usize> = (0..100).map(|_| z.sample(&mut b)).collect();
        assert_eq!(xs, ys);
    }

    #[test]
    fn percentile_nearest_rank() {
        let freqs = vec![1, 1, 2, 2, 4, 10, 39, 107, 200];
        // nearest-rank: p50 over 9 values → ceil(4.5) = 5th smallest = 4
        let p = percentiles(&freqs, &[10.0, 50.0, 99.0]);
        assert_eq!(p, vec![1, 4, 200]);
    }

    #[test]
    fn percentile_single_value() {
        assert_eq!(percentiles(&[7], &TABLE1_POINTS), vec![7; 5]);
        assert_eq!(percentiles(&[], &TABLE1_POINTS), vec![0; 5]);
    }

    #[test]
    fn percentiles_monotone() {
        let freqs: Vec<usize> = (1..500).collect();
        let p = percentiles(&freqs, &TABLE1_POINTS);
        for w in p.windows(2) {
            assert!(w[0] <= w[1]);
        }
    }
}
