//! The formula pool.
//!
//! The paper extracts 413 distinct formulas from the annotations, with a
//! heavy Zipf tail (Table 1: half of them appear once, the top 5 % at least
//! eight times). We generate a pool of the same character: a head of the
//! domain's workhorse checks (lookups, year-over-year growth, CAGR, ratios,
//! shares, differences) followed by a parametric tail of threshold and
//! rounding variants — distinct constants make distinct formulas, exactly
//! how the real tail arises.

use crate::CorpusConfig;
use scrutinizer_data::hash::FxHashSet;
use scrutinizer_formula::{parse_formula, Formula};

/// Semantic family of a formula — decides how claims over it are phrased
/// and which parameter style they quote.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Family {
    /// Plain lookup: "reached 22 200 TWh".
    Level,
    /// Year-over-year growth: "grew by 3%".
    Growth,
    /// Compound annual growth: "grew by 3% per year on average".
    Cagr,
    /// Multiple between two years: "increased nine-fold".
    Ratio,
    /// Absolute difference: "added 52 GW".
    Diff,
    /// Share of an aggregate: "accounted for 23% of the total".
    Share,
    /// Boolean threshold — the general-claim family: "expanded aggressively".
    Threshold,
    /// Sum/average across years: "averaged 1 200 TWh".
    Aggregate,
}

impl Family {
    /// Factor turning the formula's value into the number quoted in text
    /// (growth fractions are quoted as percentages).
    pub fn display_scale(self) -> f64 {
        match self {
            Family::Growth | Family::Cagr | Family::Share => 100.0,
            _ => 1.0,
        }
    }

    /// Whether claims of this family are explicit (quote a parameter) —
    /// thresholds are the general claims of Definition 1.
    pub fn is_explicit(self) -> bool {
        !matches!(self, Family::Threshold)
    }
}

/// One formula in the pool.
#[derive(Debug, Clone)]
pub struct FormulaSpec {
    /// Canonical formula text (also the classifier class label).
    pub text: String,
    /// Parsed formula.
    pub formula: Formula,
    /// Semantic family.
    pub family: Family,
}

impl FormulaSpec {
    fn new(text: &str, family: Family) -> Self {
        let formula =
            parse_formula(text).unwrap_or_else(|e| panic!("pool formula `{text}` must parse: {e}"));
        FormulaSpec {
            text: text.to_string(),
            formula,
            family,
        }
    }
}

/// The head of the pool: the workhorse checks, in Zipf-rank order (most
/// frequent first, matching how often each family shows up in energy
/// reports).
fn head() -> Vec<FormulaSpec> {
    vec![
        FormulaSpec::new("a", Family::Level),
        FormulaSpec::new("a / b - 1", Family::Growth),
        FormulaSpec::new("POWER(a / b, 1 / (A1 - A2)) - 1", Family::Cagr),
        FormulaSpec::new("a / b", Family::Ratio),
        FormulaSpec::new("(a - b) / b", Family::Growth),
        FormulaSpec::new("a - b", Family::Diff),
        FormulaSpec::new("a / b > 1", Family::Threshold),
        FormulaSpec::new("SHARE(a, b)", Family::Share),
        FormulaSpec::new("SUM(a, b)", Family::Aggregate),
        FormulaSpec::new("AVG(a, b)", Family::Aggregate),
        FormulaSpec::new("ABS(a - b)", Family::Diff),
        FormulaSpec::new("CAGR(a, b, A1 - A2)", Family::Cagr),
        FormulaSpec::new("PCT_CHANGE(a, b)", Family::Growth),
        FormulaSpec::new("RATIO(a, b)", Family::Ratio),
        FormulaSpec::new("ROUND(a, 0)", Family::Level),
        FormulaSpec::new("SUM(a, b, c)", Family::Aggregate),
        FormulaSpec::new("AVG(a, b, c)", Family::Aggregate),
        FormulaSpec::new("a - b > 0", Family::Threshold),
        FormulaSpec::new("MAX(a, b)", Family::Aggregate),
        FormulaSpec::new("MIN(a, b)", Family::Aggregate),
    ]
}

/// Generates the full pool of `config.n_formulas` distinct formulas.
pub fn generate_pool(config: &CorpusConfig) -> Vec<FormulaSpec> {
    let mut pool = head();
    pool.truncate(config.n_formulas);
    let mut seen: FxHashSet<String> = pool.iter().map(|s| s.text.clone()).collect();

    // parametric tail: threshold/rounding/scaling variants with distinct
    // constants, interleaved across families
    let mut k = 0usize;
    while pool.len() < config.n_formulas {
        let candidates = [
            (format!("a > {}", 10 * (k + 1)), Family::Threshold),
            (
                format!("a / b > {}", 1.0 + 0.05 * (k + 1) as f64),
                Family::Threshold,
            ),
            (format!("a - b > {}", 5 * (k + 1)), Family::Threshold),
            (
                format!("ROUND((a / b - 1) * 100, {})", k % 4),
                Family::Growth,
            ),
            (format!("ROUND(a / b, {})", k % 6), Family::Ratio),
            (format!("a / {}", k + 2), Family::Level),
            (format!("(a - b) / {}", k + 2), Family::Diff),
            (
                format!("SHARE(a, b) > {}", 0.05 * (k + 1) as f64),
                Family::Threshold,
            ),
            (
                format!("ROUND(POWER(a / b, 1 / (A1 - A2)) - 1, {})", 2 + k % 4),
                Family::Cagr,
            ),
            (format!("ABS(a - b) > {}", 3 * (k + 1)), Family::Threshold),
        ];
        for (text, family) in candidates {
            if pool.len() >= config.n_formulas {
                break;
            }
            if seen.insert(text.clone()) {
                pool.push(FormulaSpec::new(&text, family));
            }
        }
        k += 1;
        assert!(k < 10_000, "formula pool generation did not converge");
    }
    pool
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_has_requested_size_and_distinct_texts() {
        let mut config = CorpusConfig::small();
        config.n_formulas = 413;
        let pool = generate_pool(&config);
        assert_eq!(pool.len(), 413);
        let mut texts: Vec<&str> = pool.iter().map(|s| s.text.as_str()).collect();
        texts.sort_unstable();
        texts.dedup();
        assert_eq!(texts.len(), 413, "all formulas distinct");
    }

    #[test]
    fn all_formulas_parse_and_have_sane_var_counts() {
        let mut config = CorpusConfig::small();
        config.n_formulas = 413;
        for spec in generate_pool(&config) {
            let n = spec.formula.value_var_count();
            assert!((1..=3).contains(&n), "{} has {} vars", spec.text, n);
        }
    }

    #[test]
    fn head_order_is_stable() {
        let config = CorpusConfig::small();
        let pool = generate_pool(&config);
        assert_eq!(pool[0].text, "a");
        assert_eq!(pool[1].text, "a / b - 1");
        assert_eq!(pool[2].text, "POWER(a / b, 1 / (A1 - A2)) - 1");
    }

    #[test]
    fn display_scale_and_explicitness() {
        assert_eq!(Family::Growth.display_scale(), 100.0);
        assert_eq!(Family::Ratio.display_scale(), 1.0);
        assert!(!Family::Threshold.is_explicit());
        assert!(Family::Level.is_explicit());
    }

    #[test]
    fn small_pool_truncates_head() {
        let mut config = CorpusConfig::small();
        config.n_formulas = 5;
        assert_eq!(generate_pool(&config).len(), 5);
    }
}
