//! Catalog generation: region × topic statistics tables.
//!
//! Mirrors the shape of the IEA corpus: every relation is a statistics table
//! for one topic in one region, keyed by indicator codes (`PGElecDemand`)
//! with year columns 2000–2040 plus aggregate columns. Values are smooth
//! exponential-ish time series so growth-rate claims take realistic values.

use crate::CorpusConfig;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use scrutinizer_data::{Catalog, Schema, Table, Value};

/// Region name pool (48 entries).
pub const REGIONS: &[&str] = &[
    "World",
    "OECD",
    "NonOECD",
    "China",
    "India",
    "UnitedStates",
    "Europe",
    "Africa",
    "MiddleEast",
    "Japan",
    "Brazil",
    "Russia",
    "SoutheastAsia",
    "LatinAmerica",
    "Eurasia",
    "Korea",
    "Canada",
    "Mexico",
    "Australia",
    "Germany",
    "France",
    "Italy",
    "Spain",
    "Poland",
    "Turkey",
    "Indonesia",
    "Thailand",
    "Vietnam",
    "Pakistan",
    "Bangladesh",
    "Nigeria",
    "Egypt",
    "SouthAfrica",
    "SaudiArabia",
    "Iran",
    "Iraq",
    "Argentina",
    "Chile",
    "Colombia",
    "Netherlands",
    "Belgium",
    "Sweden",
    "Norway",
    "Finland",
    "Denmark",
    "Switzerland",
    "Austria",
    "Greece",
];

/// Topic name pool (38 entries) with display units.
pub const TOPICS: &[(&str, &str)] = &[
    ("PowerGeneration", "TWh"),
    ("FinalConsumption", "Mtoe"),
    ("CoalSupply", "Mt"),
    ("OilSupply", "mb/d"),
    ("GasSupply", "bcm"),
    ("RenewableCapacity", "GW"),
    ("WindCapacity", "GW"),
    ("SolarCapacity", "GW"),
    ("HydroCapacity", "GW"),
    ("NuclearGeneration", "TWh"),
    ("CO2Emissions", "Mt"),
    ("EnergyIntensity", "toe"),
    ("ElectricityPrices", "USD/MWh"),
    ("InvestmentFlows", "USD billion"),
    ("BiofuelProduction", "mboe/d"),
    ("HeatGeneration", "PJ"),
    ("HydrogenProduction", "Mt"),
    ("StorageCapacity", "GWh"),
    ("GridInfrastructure", "km"),
    ("EnergyAccess", "million people"),
    ("DemandResponse", "GW"),
    ("EfficiencySavings", "Mtoe"),
    ("TransportDemand", "Mtoe"),
    ("IndustryDemand", "Mtoe"),
    ("BuildingsDemand", "Mtoe"),
    ("PetrochemicalDemand", "mb/d"),
    ("AviationDemand", "Mtoe"),
    ("ShippingDemand", "Mtoe"),
    ("MethaneEmissions", "Mt"),
    ("FlaringEmissions", "Mt"),
    ("CriticalMinerals", "kt"),
    ("BatteryDemand", "GWh"),
    ("EVStock", "million"),
    ("CoalTrade", "Mt"),
    ("GasTrade", "bcm"),
    ("OilTrade", "mb/d"),
    ("LNGCapacity", "bcm"),
    ("RefiningCapacity", "mb/d"),
];

/// Indicator key prefixes with their text phrases.
pub const KEY_PREFIXES: &[(&str, &str)] = &[
    ("PG", "power generation"),
    ("TFC", "total final consumption of"),
    ("IN", "input of"),
    ("OUT", "output of"),
    ("NET", "net"),
    ("GROSS", "gross"),
    ("CAP", "installed capacity of"),
    ("GEN", "generation from"),
    ("SUP", "supply of"),
    ("DEM", "demand for"),
    ("IMP", "imports of"),
    ("EXP", "exports of"),
    ("STK", "stocks of"),
    ("AVG", "average"),
    ("RES", "residential"),
    ("COM", "commercial"),
    ("IND", "industrial"),
    ("TRA", "transport"),
    ("PUB", "public sector"),
    ("AGR", "agricultural"),
];

/// Indicator measures with their text phrases.
pub const KEY_MEASURES: &[(&str, &str)] = &[
    ("ElecDemand", "electricity demand"),
    ("Coal", "coal"),
    ("Oil", "oil"),
    ("Gas", "natural gas"),
    ("Wind", "wind power"),
    ("Solar", "solar PV"),
    ("SolarThermal", "solar thermal"),
    ("Hydro", "hydropower"),
    ("Nuclear", "nuclear power"),
    ("Bioenergy", "bioenergy"),
    ("Heat", "heat"),
    ("Hydrogen", "hydrogen"),
    ("CO2", "carbon emissions"),
    ("Invest", "investment"),
    ("Access", "energy access"),
    ("Intensity", "energy intensity"),
    ("Renewables", "renewables"),
    ("Fossil", "fossil fuels"),
    ("LowCarbon", "low-carbon sources"),
    ("Storage", "storage"),
    ("EV", "electric vehicles"),
    ("Batteries", "batteries"),
    ("Grid", "grid capacity"),
    ("LNG", "liquefied natural gas"),
    ("Refining", "refining"),
    ("Petchem", "petrochemicals"),
    ("Aviation", "aviation fuel"),
    ("Shipping", "shipping fuel"),
    ("Methane", "methane"),
    ("Flaring", "gas flaring"),
    ("Minerals", "critical minerals"),
    ("Efficiency", "efficiency measures"),
    ("Subsidies", "fossil fuel subsidies"),
    ("Prices", "end-user prices"),
    ("Peak", "peak load"),
    ("Offgrid", "off-grid systems"),
    ("Cooking", "clean cooking"),
    ("Cooling", "space cooling"),
    ("Heating", "space heating"),
    ("Lighting", "lighting"),
    ("Appliances", "appliances"),
    ("DataCentres", "data centres"),
];

/// First year of every table's series.
pub const FIRST_YEAR: i32 = 2000;
/// Last (projection) year.
pub const LAST_YEAR: i32 = 2040;

/// Builds the attribute pool: years first, then aggregate columns, truncated
/// to `n_attributes`.
pub fn attribute_pool(n_attributes: usize) -> Vec<String> {
    let mut attrs: Vec<String> = (FIRST_YEAR..=LAST_YEAR).map(|y| y.to_string()).collect();
    attrs.push("Total".to_string());
    for scenario in ["NPS", "SDS", "CPS"] {
        for year in [2025, 2030, 2035, 2040] {
            attrs.push(format!("{scenario}{year}"));
        }
    }
    for extra in [
        "Delta2025",
        "Delta2030",
        "Delta2035",
        "Delta2040",
        "Low2030",
        "High2030",
        "Low2040",
        "High2040",
        "Min",
        "Max",
        "Avg",
        "Median",
        "Q1",
        "Q2",
        "Q3",
        "Q4",
        "Target2030",
        "Target2040",
        "Base2000",
        "Base2010",
        "Peak",
        "Trough",
        "Hist",
        "Proj",
        "Rev1",
        "Rev2",
        "Rev3",
        "Rev4",
        "Est2018",
        "Est2019",
        "Prelim2018",
        "Prelim2019",
        "Final2017",
    ] {
        attrs.push(extra.to_string());
    }
    attrs.truncate(n_attributes);
    attrs
}

/// Builds the key pool (`prefix+measure` codes), truncated to `n_keys`.
pub fn key_pool(n_keys: usize) -> Vec<String> {
    let mut keys = Vec::with_capacity(KEY_PREFIXES.len() * KEY_MEASURES.len());
    for (prefix, _) in KEY_PREFIXES {
        for (measure, _) in KEY_MEASURES {
            keys.push(format!("{prefix}{measure}"));
        }
    }
    keys.truncate(n_keys);
    keys
}

/// Human phrase for an indicator key (`PGElecDemand` → "power generation
/// electricity demand"). Used when rendering claim text.
pub fn key_phrase(key: &str) -> String {
    for (prefix, prefix_phrase) in KEY_PREFIXES {
        if let Some(rest) = key.strip_prefix(prefix) {
            if let Some((_, measure_phrase)) = KEY_MEASURES.iter().find(|(m, _)| *m == rest) {
                return format!("{prefix_phrase} {measure_phrase}");
            }
        }
    }
    key.to_string()
}

/// Human phrase for a region (`UnitedStates` → "United States").
pub fn region_phrase(region: &str) -> String {
    let mut out = String::with_capacity(region.len() + 4);
    for (i, c) in region.chars().enumerate() {
        if c.is_uppercase() && i > 0 {
            out.push(' ');
        }
        out.push(c);
    }
    out
}

/// Human phrase for a topic (`WindCapacity` → "wind capacity").
pub fn topic_phrase(topic: &str) -> String {
    region_phrase(topic).to_lowercase()
}

/// `(topic, region)` of relation number `i`.
pub fn relation_parts(i: usize) -> (&'static str, &'static str) {
    let (topic, _) = TOPICS[(i / REGIONS.len()) % TOPICS.len()];
    let region = REGIONS[i % REGIONS.len()];
    (topic, region)
}

/// Unit of a topic.
pub fn topic_unit(topic: &str) -> &'static str {
    TOPICS
        .iter()
        .find(|(t, _)| *t == topic)
        .map_or("units", |(_, u)| u)
}

/// Relation name of relation number `i`: `"{topic}_{region}"`.
pub fn relation_name(i: usize) -> String {
    let (topic, region) = relation_parts(i);
    format!("{topic}_{region}")
}

/// Generates the full catalog.
pub fn generate_catalog(config: &CorpusConfig) -> Catalog {
    let keys = key_pool(config.n_keys);
    let attrs = attribute_pool(config.n_attributes);
    let years: Vec<&String> = attrs.iter().filter(|a| a.parse::<i32>().is_ok()).collect();
    let extras: Vec<&String> = attrs.iter().filter(|a| a.parse::<i32>().is_err()).collect();

    let mut catalog = Catalog::new();
    for i in 0..config.n_relations {
        let name = relation_name(i);
        let mut rng = SmallRng::seed_from_u64(config.seed ^ (i as u64).wrapping_mul(0x9E37_79B9));
        // every table carries all year columns plus a few extras
        let n_extras = rng.gen_range(0..=extras.len().min(6));
        let mut columns: Vec<&str> = years.iter().map(|s| s.as_str()).collect();
        columns.extend(extras.iter().take(n_extras).map(|s| s.as_str()));
        let mut table = Table::new(&name, Schema::keyed("Index", &columns));

        // a subset of the key pool lives in this table
        let n_table_keys = rng.gen_range(8..=20.min(keys.len()));
        let start = rng.gen_range(0..keys.len());
        for k in 0..n_table_keys {
            let key = &keys[(start + k * 7) % keys.len()];
            if table.contains_key(key) {
                continue;
            }
            let row = generate_series(&mut rng, years.len(), n_extras);
            let mut cells: Vec<Value> = Vec::with_capacity(columns.len() + 1);
            cells.push(Value::Str(key.clone()));
            cells.extend(row.into_iter().map(Value::Float));
            table
                .push_row(cells)
                .expect("generated row is schema-valid");
        }
        catalog.add(table).expect("relation names are unique");
    }
    catalog
}

/// A smooth exponential-drift series over the year columns, plus extras
/// derived from it (Total = sum, others = scaled aggregates).
fn generate_series(rng: &mut SmallRng, n_years: usize, n_extras: usize) -> Vec<f64> {
    let base = 10f64.powf(rng.gen_range(0.5..4.5)); // 3 .. 30 000
    let trend = rng.gen_range(-0.03..0.06); // -3% .. +6% per year
    let mut value = base;
    let mut series = Vec::with_capacity(n_years + n_extras);
    for _ in 0..n_years {
        series.push((value * 100.0).round() / 100.0);
        let wobble = rng.gen_range(-0.01..0.01);
        value *= 1.0 + trend + wobble;
    }
    let total: f64 = series.iter().sum();
    for e in 0..n_extras {
        // deterministic-but-varied aggregates of the series
        let scaled = match e {
            0 => total,
            _ => total * rng.gen_range(0.05..0.95),
        };
        series.push((scaled * 100.0).round() / 100.0);
    }
    series
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pools_have_requested_sizes() {
        assert_eq!(attribute_pool(87).len(), 87);
        assert_eq!(key_pool(830).len(), 830);
        assert!(KEY_PREFIXES.len() * KEY_MEASURES.len() >= 830);
        assert!(TOPICS.len() * REGIONS.len() >= 1791);
    }

    #[test]
    fn phrases_are_readable() {
        assert_eq!(
            key_phrase("PGElecDemand"),
            "power generation electricity demand"
        );
        assert_eq!(key_phrase("CAPWind"), "installed capacity of wind power");
        assert_eq!(region_phrase("UnitedStates"), "United States");
        assert_eq!(topic_phrase("WindCapacity"), "wind capacity");
        assert_eq!(
            key_phrase("Unknown123"),
            "Unknown123",
            "unknown keys pass through"
        );
    }

    #[test]
    fn catalog_generation_small() {
        let config = CorpusConfig::small();
        let catalog = generate_catalog(&config);
        assert_eq!(catalog.len(), config.n_relations);
        // every table has year columns and at least 8 keys
        for table in catalog.tables() {
            assert!(table.has_attribute("2017"));
            assert!(
                table.row_count() >= 8,
                "{} has {} rows",
                table.name(),
                table.row_count()
            );
        }
    }

    #[test]
    fn catalog_is_deterministic() {
        let config = CorpusConfig::small();
        let a = generate_catalog(&config);
        let b = generate_catalog(&config);
        for (ta, tb) in a.tables().zip(b.tables()) {
            assert_eq!(ta.name(), tb.name());
            assert_eq!(ta.row_count(), tb.row_count());
            let key = ta.keys().next().unwrap().to_string();
            assert_eq!(
                ta.get(&key, "2017").unwrap().as_f64(),
                tb.get(&key, "2017").unwrap().as_f64()
            );
        }
    }

    #[test]
    fn series_are_positive_and_smooth() {
        let config = CorpusConfig::small();
        let catalog = generate_catalog(&config);
        let table = catalog.tables().next().unwrap();
        let key = table.keys().next().unwrap().to_string();
        let mut prev: Option<f64> = None;
        for year in 2000..=2040 {
            let v = table
                .get(&key, &year.to_string())
                .unwrap()
                .as_f64()
                .unwrap();
            assert!(v > 0.0);
            if let Some(p) = prev {
                let ratio = v / p;
                assert!(
                    (0.90..=1.10).contains(&ratio),
                    "year-over-year jump too big: {ratio}"
                );
            }
            prev = Some(v);
        }
    }

    #[test]
    fn relation_names_unique_at_paper_scale() {
        let mut names: Vec<String> = (0..1791).map(relation_name).collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(names.len(), before);
    }
}
