//! Past-check annotations in the three styles of §4.2.
//!
//! The IEA checkers annotated with spreadsheets and free-form notes, which
//! creates three reconstruction problems the paper names: **reconstruction**
//! (values computed from other values), **ambiguity** (the same claim checked
//! with different operations — Example 9's Boolean vs lookup styles) and
//! **incomplete information** (general claims whose parameter lives only in
//! the checker's head). This module renders a claim's ground truth the way a
//! checker of each style would have recorded it, so the formula-extraction
//! pipeline can be exercised against realistic mess.

use crate::claims::{ClaimKind, ClaimRecord};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use scrutinizer_formula::{instantiate, parse_formula};

/// How a past checker recorded a verification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AnnotationStyle {
    /// Full SQL query (the clean case).
    CleanSql,
    /// Boolean query returning 0/1 (Example 9's first checker).
    BooleanQuery,
    /// Plain lookup, comparison done "visually" — the annotation lacks the
    /// parameter entirely (Example 9's second checker; incomplete).
    IncompleteLookup,
}

/// A past-check annotation.
#[derive(Debug, Clone)]
pub struct Annotation {
    /// The annotated claim.
    pub claim_id: usize,
    /// Style the checker used.
    pub style: AnnotationStyle,
    /// The recorded SQL (reconstructable for `CleanSql` and `BooleanQuery`;
    /// missing the check parameter for `IncompleteLookup`).
    pub sql: String,
    /// The checker's verdict.
    pub verdict_correct: bool,
}

/// Renders annotations for a claim as `checkers` past experts would have
/// (IEA uses three). Style mix: mostly clean, with the messy styles
/// appearing at realistic rates.
pub fn annotate(claim: &ClaimRecord, checkers: usize, seed: u64) -> Vec<Annotation> {
    let mut rng = SmallRng::seed_from_u64(seed ^ claim.id as u64);
    (0..checkers)
        .map(|_| {
            let style = match rng.gen_range(0..10) {
                0..=6 => AnnotationStyle::CleanSql,
                7..=8 => AnnotationStyle::BooleanQuery,
                _ => AnnotationStyle::IncompleteLookup,
            };
            let sql = render_sql(claim, style);
            Annotation {
                claim_id: claim.id,
                style,
                sql,
                verdict_correct: claim.is_correct,
            }
        })
        .collect()
}

fn render_sql(claim: &ClaimRecord, style: AnnotationStyle) -> String {
    let formula = parse_formula(&claim.formula_text).expect("corpus formulas parse");
    match style {
        AnnotationStyle::CleanSql => instantiate(&formula, &claim.lookups)
            .map(|stmt| stmt.to_string())
            .unwrap_or_default(),
        AnnotationStyle::BooleanQuery => {
            // wrap the check into a comparison against the stated parameter
            let stmt = instantiate(&formula, &claim.lookups)
                .map(|stmt| stmt.to_string())
                .unwrap_or_default();
            match (claim.kind, claim.stated_value) {
                (ClaimKind::Explicit, Some(p)) => {
                    // SELECT <expr> = p FROM ... — splice the comparison in
                    stmt.replacen("SELECT ", &format!("SELECT {p} = ", p = p), 1)
                        .replacen(&format!("{p} = "), "", 0) // no-op; keeps style explicit
                }
                _ => stmt,
            }
        }
        AnnotationStyle::IncompleteLookup => {
            // only the first lookup is recorded; the comparison lived in the
            // checker's head (the incomplete-information problem)
            let lookup = &claim.lookups[0];
            format!(
                "SELECT a.{attr} FROM {rel} a WHERE a.Index = '{key}'",
                attr = lookup.attribute,
                rel = lookup.relation,
                key = lookup.key
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::claims::generate_claims;
    use crate::formulas::generate_pool;
    use crate::tables::generate_catalog;
    use crate::CorpusConfig;
    use scrutinizer_formula::generalize;
    use scrutinizer_query::parse;

    fn claims() -> Vec<ClaimRecord> {
        let config = CorpusConfig::small();
        let catalog = generate_catalog(&config);
        let pool = generate_pool(&config);
        generate_claims(&config, &catalog, &pool)
    }

    #[test]
    fn three_annotations_per_claim() {
        let claims = claims();
        for claim in claims.iter().take(20) {
            let anns = annotate(claim, 3, 99);
            assert_eq!(anns.len(), 3);
            for a in &anns {
                assert_eq!(a.claim_id, claim.id);
                assert!(!a.sql.is_empty(), "claim {} produced empty SQL", claim.id);
            }
        }
    }

    #[test]
    fn clean_annotations_parse_and_generalize_back() {
        let claims = claims();
        let mut tested = 0;
        for claim in &claims {
            for ann in annotate(claim, 3, 5) {
                if ann.style == AnnotationStyle::CleanSql {
                    let stmt = parse(&ann.sql)
                        .unwrap_or_else(|e| panic!("clean SQL must parse: {e}\n{}", ann.sql));
                    // generalizing the clean annotation recovers a formula
                    let g = generalize(&stmt).expect("clean SQL generalizes");
                    assert!(g.formula.element_count() >= 1);
                    tested += 1;
                }
            }
        }
        assert!(tested > 20, "expected many clean annotations, got {tested}");
    }

    #[test]
    fn incomplete_annotations_lose_the_parameter() {
        let claims = claims();
        for claim in &claims {
            for ann in annotate(claim, 3, 5) {
                if ann.style == AnnotationStyle::IncompleteLookup {
                    // the recorded query is a bare lookup regardless of the
                    // real formula's complexity
                    let stmt = parse(&ann.sql).expect("incomplete SQL still parses");
                    assert_eq!(stmt.from.len(), 1);
                }
            }
        }
    }

    #[test]
    fn annotation_styles_are_mixed() {
        let claims = claims();
        let mut clean = 0;
        let mut boolean = 0;
        let mut incomplete = 0;
        for claim in &claims {
            for ann in annotate(claim, 3, 11) {
                match ann.style {
                    AnnotationStyle::CleanSql => clean += 1,
                    AnnotationStyle::BooleanQuery => boolean += 1,
                    AnnotationStyle::IncompleteLookup => incomplete += 1,
                }
            }
        }
        assert!(clean > boolean, "clean should dominate");
        assert!(boolean > 0 && incomplete > 0, "messy styles must occur");
    }

    #[test]
    fn deterministic_given_seed() {
        let claims = claims();
        let a = annotate(&claims[0], 3, 42);
        let b = annotate(&claims[0], 3, 42);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.style, y.style);
            assert_eq!(x.sql, y.sql);
        }
    }
}
