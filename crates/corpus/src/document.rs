//! The sectioned report embedding the claims.

use crate::claims::ClaimRecord;
use crate::CorpusConfig;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// One document section.
#[derive(Debug, Clone)]
pub struct Section {
    /// Section number.
    pub id: usize,
    /// Section title.
    pub title: String,
    /// Total sentences in the section (claims + filler).
    pub sentence_count: usize,
    /// Claim ids located in this section.
    pub claim_ids: Vec<usize>,
}

impl Section {
    /// Reading/skimming cost `r(s)` of Definition 8, at `seconds_per_sentence`
    /// skim speed.
    pub fn read_cost(&self, seconds_per_sentence: f64) -> f64 {
        self.sentence_count as f64 * seconds_per_sentence
    }
}

/// The report: an ordered list of sections.
#[derive(Debug, Clone)]
pub struct Document {
    /// Sections in document order.
    pub sections: Vec<Section>,
    /// Total sentence count (the paper's document has 7901).
    pub total_sentences: usize,
}

impl Document {
    /// Section containing a claim.
    pub fn section_of(&self, claim_id: usize) -> Option<usize> {
        self.sections
            .iter()
            .position(|s| s.claim_ids.contains(&claim_id))
    }
}

/// Filler topics for section titles.
const SECTION_THEMES: &[&str] = &[
    "Global Energy Trends",
    "Outlook for Electricity",
    "Oil Markets",
    "Natural Gas Markets",
    "Coal Markets",
    "Renewables",
    "Energy Efficiency",
    "Emissions and Climate",
    "Energy Access",
    "Investment and Finance",
    "Regional Focus",
    "Technology Outlook",
    "Policy Scenarios",
    "Transport",
    "Industry",
    "Buildings",
    "Power Sector Transformation",
    "Critical Minerals",
    "Hydrogen",
    "Energy Security",
    "Methane Abatement",
    "Offshore Energy",
    "Bioenergy",
    "Nuclear Power",
    "Grids and Storage",
    "Annex and Methodology",
];

/// Distributes claims and filler sentences across sections.
pub fn build_document(config: &CorpusConfig, claims: &[ClaimRecord]) -> Document {
    let n_sections = config.n_sections.max(1);
    let mut rng = SmallRng::seed_from_u64(config.seed ^ 0xD0C5);
    // claims already carry their section assignment (clustered by topic)
    let mut claim_ids: Vec<Vec<usize>> = vec![Vec::new(); n_sections];
    for claim in claims {
        claim_ids[claim.section % n_sections].push(claim.id);
    }
    // spread the filler sentences roughly evenly with jitter
    let filler_total = config.n_sentences.saturating_sub(claims.len());
    let base = filler_total / n_sections;
    let mut sections = Vec::with_capacity(n_sections);
    let mut used = 0usize;
    for id in 0..n_sections {
        let jitter = if base > 4 {
            rng.gen_range(0..base / 2)
        } else {
            0
        };
        let filler = if id + 1 == n_sections {
            filler_total - used
        } else {
            (base + jitter).min(filler_total - used)
        };
        used += filler;
        sections.push(Section {
            id,
            title: SECTION_THEMES[id % SECTION_THEMES.len()].to_string(),
            sentence_count: filler + claim_ids[id].len(),
            claim_ids: std::mem::take(&mut claim_ids[id]),
        });
    }
    let total_sentences = sections.iter().map(|s| s.sentence_count).sum();
    Document {
        sections,
        total_sentences,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::claims::generate_claims;
    use crate::formulas::generate_pool;
    use crate::tables::generate_catalog;

    fn build() -> (CorpusConfig, Document, Vec<ClaimRecord>) {
        let config = CorpusConfig::small();
        let catalog = generate_catalog(&config);
        let pool = generate_pool(&config);
        let claims = generate_claims(&config, &catalog, &pool);
        let document = build_document(&config, &claims);
        (config, document, claims)
    }

    #[test]
    fn all_claims_are_placed_exactly_once() {
        let (config, document, claims) = build();
        let mut placed: Vec<usize> = document
            .sections
            .iter()
            .flat_map(|s| s.claim_ids.iter().copied())
            .collect();
        placed.sort_unstable();
        assert_eq!(placed, (0..claims.len()).collect::<Vec<_>>());
        assert_eq!(document.sections.len(), config.n_sections);
    }

    #[test]
    fn sentence_budget_matches_config() {
        let (config, document, _) = build();
        assert_eq!(document.total_sentences, config.n_sentences);
    }

    #[test]
    fn section_of_finds_claims() {
        let (_, document, claims) = build();
        for claim in &claims {
            let section = document.section_of(claim.id).unwrap();
            assert!(document.sections[section].claim_ids.contains(&claim.id));
        }
        assert_eq!(document.section_of(999_999), None);
    }

    #[test]
    fn read_cost_scales_with_length() {
        let (_, document, _) = build();
        let s = &document.sections[0];
        assert!((s.read_cost(2.0) - 2.0 * s.sentence_count as f64).abs() < 1e-9);
    }

    #[test]
    fn claims_cluster_by_topic() {
        // claims on the same topic share a section (enables batch savings)
        let (_, document, claims) = build();
        for section in &document.sections {
            let mut topics: Vec<&str> = section
                .claim_ids
                .iter()
                .map(|&id| claims[id].relation.split('_').next().unwrap())
                .collect();
            topics.sort_unstable();
            topics.dedup();
            // small corpora: each section hosts only a handful of topics
            assert!(
                topics.len() <= 8,
                "section {} hosts {} topics",
                section.id,
                topics.len()
            );
        }
    }
}
