//! # scrutinizer-corpus
//!
//! Synthetic IEA-style corpus generator (the data substitution of DESIGN.md §3).
//!
//! The paper evaluates on the IEA 2018 World Energy Outlook: a 661-page
//! document with 7901 sentences and 1539 manually checked statistical claims
//! over a corpus of energy statistics tables; the annotations identify 1791
//! relations, 830 key values, 87 attribute labels and 413 formulas with the
//! long-tailed frequency profile of Table 1. That data is proprietary, so
//! this crate synthesizes a corpus with the same published marginals:
//!
//! * [`tables`] — a catalog of region × topic statistics tables with smooth
//!   time series (years 2000–2040 plus aggregate columns),
//! * [`formulas`] — a pool of distinct check formulas built from the families
//!   the paper names (lookups, growth rates, CAGR, ratios, shares,
//!   comparisons), Zipf-weighted,
//! * [`claims`] — claims generated from real table values, rendered as text
//!   with paraphrase variation (multiple authors, §1.1), roughly half
//!   explicit, with configurable injected-error rate (40 % in first drafts),
//! * [`document`] — a sectioned report embedding the claims among filler
//!   sentences, with per-section read costs (Definition 8's `r(s)`),
//! * [`annotations`] — past-check records in the three styles of §4.2
//!   (clean SQL, Boolean-query, incomplete),
//! * [`distributions`] — seeded Zipf sampling and the percentile profile of
//!   Table 1.
//!
//! Everything is deterministic given [`CorpusConfig::seed`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod annotations;
pub mod claims;
pub mod distributions;
pub mod document;
pub mod formulas;
pub mod tables;

pub use claims::{ClaimKind, ClaimRecord};
pub use document::{Document, Section};
pub use formulas::FormulaSpec;

use scrutinizer_data::Catalog;

/// Scale and behaviour of the generated corpus.
#[derive(Debug, Clone, Copy)]
pub struct CorpusConfig {
    /// Master seed; all randomness derives from it.
    pub seed: u64,
    /// Number of statistical claims to generate.
    pub n_claims: usize,
    /// Number of sentences in the document (claims + filler).
    pub n_sentences: usize,
    /// Number of relations (tables) in the catalog.
    pub n_relations: usize,
    /// Size of the primary-key pool.
    pub n_keys: usize,
    /// Size of the attribute pool.
    pub n_attributes: usize,
    /// Number of distinct formulas in the pool.
    pub n_formulas: usize,
    /// Number of document sections.
    pub n_sections: usize,
    /// Fraction of claims with an injected error (the paper: up to 40 % of a
    /// first draft changes).
    pub error_rate: f64,
    /// Fraction of explicit claims (the paper: about half).
    pub explicit_fraction: f64,
    /// Zipf exponent shaping all frequency long tails (Table 1).
    pub zipf_exponent: f64,
}

impl CorpusConfig {
    /// Full paper scale: the 2018 WEO marginals.
    pub fn paper_scale() -> Self {
        CorpusConfig {
            seed: 2018,
            n_claims: 1539,
            n_sentences: 7901,
            n_relations: 1791,
            n_keys: 830,
            n_attributes: 87,
            n_formulas: 413,
            n_sections: 26,
            error_rate: 0.40,
            explicit_fraction: 0.5,
            zipf_exponent: 1.05,
        }
    }

    /// A small corpus for unit tests and examples (fast to generate and
    /// train on).
    pub fn small() -> Self {
        CorpusConfig {
            seed: 7,
            n_claims: 80,
            n_sentences: 400,
            n_relations: 24,
            n_keys: 40,
            n_attributes: 45, // all 41 years + Total + a few aggregates
            n_formulas: 16,
            n_sections: 6,
            error_rate: 0.25,
            explicit_fraction: 0.5,
            zipf_exponent: 1.05,
        }
    }
}

/// A fully generated corpus: the verification task's complete input plus
/// ground truth for simulation and evaluation.
#[derive(Debug, Clone)]
pub struct Corpus {
    /// Generation parameters.
    pub config: CorpusConfig,
    /// The relational corpus `D`.
    pub catalog: Catalog,
    /// The formula pool with Zipf weights.
    pub formulas: Vec<FormulaSpec>,
    /// All claims with ground truth.
    pub claims: Vec<ClaimRecord>,
    /// The sectioned document embedding the claims.
    pub document: Document,
}

impl Corpus {
    /// Generates a corpus from a configuration.
    pub fn generate(config: CorpusConfig) -> Self {
        let catalog = tables::generate_catalog(&config);
        let formulas = formulas::generate_pool(&config);
        let claims = claims::generate_claims(&config, &catalog, &formulas);
        let document = document::build_document(&config, &claims);
        Corpus {
            config,
            catalog,
            formulas,
            claims,
            document,
        }
    }
}
