//! Claim generation: ground-truth checks rendered as report prose.

use crate::distributions::Zipf;
use crate::formulas::{Family, FormulaSpec};
use crate::tables;
use crate::CorpusConfig;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use scrutinizer_data::Catalog;
use scrutinizer_formula::{claim_complexity, eval_formula, Lookup};
use scrutinizer_query::FunctionRegistry;

/// Explicit vs general (Definitions 1–2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClaimKind {
    /// The parameter is stated in the claim.
    Explicit,
    /// The comparison is qualitative ("expanded aggressively").
    General,
}

/// A generated claim with full ground truth.
#[derive(Debug, Clone)]
pub struct ClaimRecord {
    /// Claim id (position in the corpus).
    pub id: usize,
    /// The claim span itself.
    pub claim_text: String,
    /// The full sentence containing the claim (classifier context).
    pub sentence_text: String,
    /// Document section the claim lives in.
    pub section: usize,
    /// Ground-truth relation (first lookup's; claims may span two).
    pub relation: String,
    /// Ground-truth primary key.
    pub key: String,
    /// Ground-truth attribute labels, in lookup order (deduplicated).
    pub attributes: Vec<String>,
    /// Ground-truth formula (canonical text = class label).
    pub formula_text: String,
    /// Ground-truth variable bindings.
    pub lookups: Vec<Lookup>,
    /// Explicit or general.
    pub kind: ClaimKind,
    /// The number as stated in the text (display-scaled); `None` for
    /// general claims.
    pub stated_value: Option<f64>,
    /// The value the formula actually evaluates to on the data.
    pub true_value: f64,
    /// Whether the claim is consistent with the data.
    pub is_correct: bool,
    /// For incorrect explicit claims: the display-scaled correct value the
    /// system should suggest (Example 4).
    pub suggested_correction: Option<f64>,
    /// Claim complexity (Figure 6's x-axis).
    pub complexity: usize,
}

/// Year mention weights: history anchors (2016/2017) dominate, projection
/// milestones follow — the WEO's actual focus years.
fn sample_year(rng: &mut SmallRng) -> i32 {
    const WEIGHTED: &[(i32, u32)] = &[
        (2017, 30),
        (2016, 15),
        (2018, 8),
        (2000, 6),
        (2010, 6),
        (2025, 10),
        (2030, 12),
        (2035, 6),
        (2040, 12),
    ];
    let light: u32 = 1;
    let heavy_total: u32 = WEIGHTED.iter().map(|(_, w)| w).sum();
    let light_years = (tables::LAST_YEAR - tables::FIRST_YEAR + 1) as u32 - WEIGHTED.len() as u32;
    let total = heavy_total + light_years * light;
    let mut draw = rng.gen_range(0..total);
    for &(year, weight) in WEIGHTED {
        if draw < weight {
            return year;
        }
        draw -= weight;
    }
    // uniform over the remaining years
    let mut year = tables::FIRST_YEAR + (draw / light) as i32;
    while WEIGHTED.iter().any(|(y, _)| *y == year) {
        year += 1;
        if year > tables::LAST_YEAR {
            year = tables::FIRST_YEAR;
        }
    }
    year
}

/// Generates all claims.
pub fn generate_claims(
    config: &CorpusConfig,
    catalog: &Catalog,
    pool: &[FormulaSpec],
) -> Vec<ClaimRecord> {
    let registry = FunctionRegistry::standard();
    let table_names: Vec<String> = catalog.table_names().map(str::to_string).collect();
    let table_keys: Vec<Vec<String>> = catalog
        .tables()
        .map(|t| t.keys().map(str::to_string).collect())
        .collect();

    let explicit_ranks: Vec<usize> = (0..pool.len())
        .filter(|&i| pool[i].family.is_explicit())
        .collect();
    let general_ranks: Vec<usize> = (0..pool.len())
        .filter(|&i| !pool[i].family.is_explicit())
        .collect();
    let explicit_zipf = Zipf::new(explicit_ranks.len().max(1), config.zipf_exponent);
    let general_zipf = Zipf::new(general_ranks.len().max(1), config.zipf_exponent);
    let relation_zipf = Zipf::new(table_names.len(), config.zipf_exponent);

    let mut claims = Vec::with_capacity(config.n_claims);
    for id in 0..config.n_claims {
        let mut rng = SmallRng::seed_from_u64(
            config.seed ^ 0xC1A1_0000 ^ (id as u64).wrapping_mul(0x5851_F42D),
        );
        let claim = generate_one(
            config,
            catalog,
            pool,
            &registry,
            &table_names,
            &table_keys,
            &relation_zipf,
            (&explicit_ranks, &explicit_zipf),
            (&general_ranks, &general_zipf),
            id,
            &mut rng,
        );
        claims.push(claim);
    }
    claims
}

#[allow(clippy::too_many_arguments)]
fn generate_one(
    config: &CorpusConfig,
    catalog: &Catalog,
    pool: &[FormulaSpec],
    registry: &FunctionRegistry,
    table_names: &[String],
    table_keys: &[Vec<String>],
    relation_zipf: &Zipf,
    explicit: (&[usize], &Zipf),
    general: (&[usize], &Zipf),
    id: usize,
    rng: &mut SmallRng,
) -> ClaimRecord {
    for _attempt in 0..40 {
        // explicit vs general, then a formula of that kind
        let want_explicit = rng.gen_bool(config.explicit_fraction);
        let (ranks, zipf) = if want_explicit { explicit } else { general };
        if ranks.is_empty() {
            continue;
        }
        let spec = &pool[ranks[zipf.sample(rng)]];

        // relation and key
        let t = relation_zipf.sample(rng);
        let relation = &table_names[t];
        let keys = &table_keys[t];
        if keys.is_empty() {
            continue;
        }
        let key_zipf = Zipf::new(keys.len(), config.zipf_exponent);
        let key = &keys[key_zipf.sample(rng)];

        // attribute pattern per family
        let n_vars = spec.formula.value_var_count();
        let max_year = tables::FIRST_YEAR + (config.n_attributes.min(41) as i32) - 1;
        let Some(lookups) = choose_lookups(
            spec,
            relation,
            key,
            n_vars,
            catalog,
            table_names,
            max_year,
            rng,
        ) else {
            continue;
        };

        // evaluate ground truth
        let Ok(true_value) = eval_formula(catalog, registry, &spec.formula, &lookups) else {
            continue;
        };
        if !true_value.is_finite() {
            continue;
        }
        // keep displayed magnitudes sane
        if spec.family.is_explicit() {
            let display = true_value * spec.family.display_scale();
            if display.abs() > 1e9 || (display != 0.0 && display.abs() < 1e-4) {
                continue;
            }
        }

        let has_error = rng.gen_bool(config.error_rate);
        return render_claim(
            config, spec, relation, key, lookups, true_value, has_error, id, rng,
        );
    }
    // deterministic fallback: simple lookup on the first table
    let relation = &table_names[0];
    let key = &table_keys[0][0];
    let lookup = Lookup::new(relation.clone(), key.clone(), "2017");
    let spec = &pool[0];
    let true_value = eval_formula(
        catalog,
        registry,
        &spec.formula,
        std::slice::from_ref(&lookup),
    )
    .expect("fallback lookup must evaluate");
    render_claim(
        config,
        spec,
        relation,
        key,
        vec![lookup],
        true_value,
        false,
        id,
        rng,
    )
}

/// Chooses ground-truth lookups for a formula according to its family's
/// attribute pattern. Occasionally spans a second relation that shares the
/// key (cross-table claims).
#[allow(clippy::too_many_arguments)]
fn choose_lookups(
    spec: &FormulaSpec,
    relation: &str,
    key: &str,
    n_vars: usize,
    catalog: &Catalog,
    table_names: &[String],
    max_year: i32,
    rng: &mut SmallRng,
) -> Option<Vec<Lookup>> {
    let year2 = sample_year(rng).min(max_year);
    let (y_late, y_early) = match spec.family {
        Family::Growth => (
            year2.max(tables::FIRST_YEAR + 1),
            year2.max(tables::FIRST_YEAR + 1) - 1,
        ),
        Family::Cagr | Family::Ratio => {
            let gap = rng
                .gen_range(5..=17)
                .min((max_year - tables::FIRST_YEAR) as i64 as i32);
            let late = year2.clamp(tables::FIRST_YEAR + gap, max_year);
            (late, late - gap)
        }
        _ => {
            let gap = rng
                .gen_range(1..=10)
                .min((max_year - tables::FIRST_YEAR) as i64 as i32);
            let late = year2.clamp(tables::FIRST_YEAR + gap, max_year);
            (late, late - gap)
        }
    };

    // second relation for variable b in ~15% of multi-var claims
    let rel_b = if n_vars >= 2 && rng.gen_bool(0.15) {
        let start = rng.gen_range(0..table_names.len());
        table_names
            .iter()
            .cycle()
            .skip(start)
            .take(table_names.len())
            .find(|r| {
                r.as_str() != relation
                    && catalog.get(r).map(|t| t.contains_key(key)).unwrap_or(false)
            })
            .cloned()
            .unwrap_or_else(|| relation.to_string())
    } else {
        relation.to_string()
    };

    let mut lookups = Vec::with_capacity(n_vars);
    match spec.family {
        Family::Share => {
            // a = key at year, b = Total of the same row when available
            lookups.push(Lookup::new(relation, key, y_late.to_string()));
            let table = catalog.get(relation).ok()?;
            if table.has_attribute("Total") {
                lookups.push(Lookup::new(relation, key, "Total"));
            } else {
                lookups.push(Lookup::new(rel_b.clone(), key, y_early.to_string()));
            }
        }
        _ => {
            let years = [y_late, y_early, y_late - 1];
            for (v, year) in years.iter().take(n_vars).enumerate() {
                let rel = if v == 1 { rel_b.as_str() } else { relation };
                lookups.push(Lookup::new(rel, key, year.to_string()));
            }
        }
    }
    // formulas with attribute variables need numeric year labels
    for (i, lookup) in lookups.iter().enumerate() {
        if spec.formula.uses_attr_var(i) && lookup.attribute.parse::<f64>().is_err() {
            return None;
        }
    }
    Some(lookups)
}

#[allow(clippy::too_many_arguments)]
fn render_claim(
    config: &CorpusConfig,
    spec: &FormulaSpec,
    relation: &str,
    key: &str,
    lookups: Vec<Lookup>,
    true_value: f64,
    has_error: bool,
    id: usize,
    rng: &mut SmallRng,
) -> ClaimRecord {
    let (topic, region) = {
        let mut parts = relation.splitn(2, '_');
        (
            parts.next().unwrap_or("").to_string(),
            parts.next().unwrap_or("World").to_string(),
        )
    };
    let unit = tables::topic_unit(&topic);
    let region_text = tables::region_phrase(&region);
    let subject = tables::key_phrase(key);

    let kind = if spec.family.is_explicit() {
        ClaimKind::Explicit
    } else {
        ClaimKind::General
    };

    // displayed number (possibly perturbed)
    let display_true = round_display(true_value * spec.family.display_scale());
    let (stated_value, is_correct, suggested) = match kind {
        ClaimKind::Explicit => {
            if has_error {
                let mut delta: f64 = rng.gen_range(0.10..0.50);
                if rng.gen_bool(0.5) {
                    delta = -delta;
                }
                let wrong = round_display(display_true * (1.0 + delta));
                // guard against rounding collapsing the error away
                let wrong = if (wrong - display_true).abs() <= 0.05 * display_true.abs().max(1e-9) {
                    round_display(display_true * 1.25 + 1.0)
                } else {
                    wrong
                };
                (Some(wrong), false, Some(display_true))
            } else {
                (Some(display_true), true, None)
            }
        }
        ClaimKind::General => (None, !has_error, None),
    };

    let claim_text = render_text(
        spec.family,
        &subject,
        &region_text,
        unit,
        &lookups,
        stated_value,
        true_value,
        has_error,
        rng,
    );
    let sentence_text = embellish_sentence(&claim_text, rng);
    let complexity = claim_complexity(&spec.formula, &lookups);

    let mut attributes: Vec<String> = lookups.iter().map(|l| l.attribute.clone()).collect();
    attributes.dedup();

    // claims cluster by topic: same-topic claims land in the same section
    let topic_index = tables::TOPICS
        .iter()
        .position(|(t, _)| *t == topic)
        .unwrap_or(0);
    let section = topic_index % config.n_sections.max(1);

    ClaimRecord {
        id,
        claim_text,
        sentence_text,
        section,
        relation: relation.to_string(),
        key: key.to_string(),
        attributes,
        formula_text: spec.text.clone(),
        lookups,
        kind,
        stated_value,
        true_value,
        is_correct,
        suggested_correction: suggested,
        complexity,
    }
}

/// Rounds a display value to ~3 significant digits (what reports quote).
fn round_display(x: f64) -> f64 {
    if x == 0.0 || !x.is_finite() {
        return 0.0;
    }
    let magnitude = x.abs().log10().floor();
    let scale = 10f64.powf(magnitude - 2.0);
    (x / scale).round() * scale
}

/// Formats a quantity in report style (space-grouped thousands).
pub fn format_quantity(x: f64) -> String {
    if x.abs() >= 1000.0 {
        let rounded = x.round() as i64;
        let mut digits = rounded.abs().to_string();
        let mut grouped = String::new();
        while digits.len() > 3 {
            let tail = digits.split_off(digits.len() - 3);
            grouped = if grouped.is_empty() {
                tail
            } else {
                format!("{tail} {grouped}")
            };
        }
        grouped = if grouped.is_empty() {
            digits
        } else {
            format!("{digits} {grouped}")
        };
        if rounded < 0 {
            format!("-{grouped}")
        } else {
            grouped
        }
    } else if x.abs() >= 10.0 {
        trim_zeros(format!("{x:.1}"))
    } else {
        trim_zeros(format!("{x:.2}"))
    }
}

fn trim_zeros(s: String) -> String {
    if s.contains('.') {
        s.trim_end_matches('0').trim_end_matches('.').to_string()
    } else {
        s
    }
}

#[allow(clippy::too_many_arguments)]
fn render_text(
    family: Family,
    subject: &str,
    region: &str,
    unit: &str,
    lookups: &[Lookup],
    stated: Option<f64>,
    true_value: f64,
    flipped: bool,
    rng: &mut SmallRng,
) -> String {
    let year = lookups
        .first()
        .map(|l| l.attribute.clone())
        .unwrap_or_default();
    let year_b = lookups
        .get(1)
        .map(|l| l.attribute.clone())
        .unwrap_or_default();
    let pick = |rng: &mut SmallRng, options: &[String]| -> String {
        options[rng.gen_range(0..options.len())].clone()
    };
    match family {
        Family::Level => {
            let value = format_quantity(stated.unwrap_or(true_value));
            pick(
                rng,
                &[
                    format!("in {year}, {subject} in {region} reached {value} {unit}"),
                    format!("{subject} in {region} stood at {value} {unit} in {year}"),
                    format!("{region} {subject} amounted to {value} {unit} in {year}"),
                ],
            )
        }
        Family::Growth | Family::Cagr => {
            let p = stated.unwrap_or(true_value * 100.0);
            let verb = if p >= 0.0 { "grew" } else { "fell" };
            let pct = trim_zeros(format!("{:.1}", p.abs()));
            let annual = if matches!(family, Family::Cagr) {
                " per year on average"
            } else {
                ""
            };
            let span = if matches!(family, Family::Cagr) {
                format!("between {year_b} and {year}")
            } else {
                format!("in {year}")
            };
            pick(
                rng,
                &[
                    format!("{subject} in {region} {verb} by {pct}%{annual} {span}"),
                    format!("{span}, {region} {subject} {verb} {pct}%{annual}"),
                    format!("{subject} across {region} {verb} by {pct}%{annual} {span}"),
                ],
            )
        }
        Family::Ratio => {
            let fold = stated.unwrap_or(true_value);
            let fold_text = if (fold - 2.0).abs() < 0.05 {
                "doubled".to_string()
            } else if (fold - 3.0).abs() < 0.05 {
                "tripled".to_string()
            } else {
                format!("increased {}-fold", trim_zeros(format!("{fold:.1}")))
            };
            pick(
                rng,
                &[
                    format!("{subject} in {region} {fold_text} from {year_b} to {year}"),
                    format!("between {year_b} and {year}, {region} {subject} {fold_text}"),
                ],
            )
        }
        Family::Diff => {
            let value = format_quantity(stated.unwrap_or(true_value).abs());
            let verb = if stated.unwrap_or(true_value) >= 0.0 {
                "added"
            } else {
                "shed"
            };
            pick(
                rng,
                &[
                    format!(
                        "{region} {verb} {value} {unit} of {subject} between {year_b} and {year}"
                    ),
                    format!("{subject} in {region} {verb} {value} {unit} from {year_b} to {year}"),
                ],
            )
        }
        Family::Share => {
            let pct = trim_zeros(format!("{:.1}", stated.unwrap_or(true_value * 100.0)));
            pick(
                rng,
                &[
                    format!("{subject} accounted for {pct}% of the {region} total in {year}"),
                    format!("in {year}, {pct}% of the {region} total came from {subject}"),
                ],
            )
        }
        Family::Aggregate => {
            let value = format_quantity(stated.unwrap_or(true_value));
            pick(
                rng,
                &[
                    format!("combined {subject} in {region} amounted to {value} {unit} over {year_b}-{year}"),
                    format!("{region} {subject} averaged {value} {unit} across {year_b} and {year}"),
                ],
            )
        }
        Family::Threshold => {
            // direction as implied by the data, flipped when erroneous
            let positive = (true_value >= 0.5) != flipped;
            if positive {
                pick(
                    rng,
                    &[
                        format!("{subject} in {region} expanded aggressively after {year_b}"),
                        format!(
                            "the market for {subject} in {region} surged markedly through {year}"
                        ),
                        format!("{region} {subject} climbed strongly into {year}"),
                    ],
                )
            } else {
                pick(
                    rng,
                    &[
                        format!("{subject} in {region} stayed broadly flat through {year}"),
                        format!("the market for {subject} in {region} barely moved by {year}"),
                        format!("{region} {subject} stagnated into {year}"),
                    ],
                )
            }
        }
    }
}

/// Wraps a claim span into a full sentence with optional context clauses.
fn embellish_sentence(claim: &str, rng: &mut SmallRng) -> String {
    const TAILS: &[&str] = &[
        "",
        ", driven by strong industrial demand",
        ", reflecting sustained policy support",
        ", despite weaker prices",
        ", according to preliminary estimates",
        ", outpacing most forecasts",
    ];
    let tail = TAILS[rng.gen_range(0..TAILS.len())];
    let mut sentence = String::with_capacity(claim.len() + tail.len() + 2);
    let mut chars = claim.chars();
    if let Some(first) = chars.next() {
        sentence.extend(first.to_uppercase());
        sentence.push_str(chars.as_str());
    }
    sentence.push_str(tail);
    sentence.push('.');
    sentence
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::formulas::generate_pool;
    use crate::tables::generate_catalog;

    fn small_corpus() -> (CorpusConfig, Catalog, Vec<FormulaSpec>, Vec<ClaimRecord>) {
        let config = CorpusConfig::small();
        let catalog = generate_catalog(&config);
        let pool = generate_pool(&config);
        let claims = generate_claims(&config, &catalog, &pool);
        (config, catalog, pool, claims)
    }

    #[test]
    fn generates_requested_count_deterministically() {
        let (config, _, _, claims) = small_corpus();
        assert_eq!(claims.len(), config.n_claims);
        let (_, _, _, again) = small_corpus();
        for (a, b) in claims.iter().zip(&again) {
            assert_eq!(a.claim_text, b.claim_text);
            assert_eq!(a.is_correct, b.is_correct);
        }
    }

    #[test]
    fn ground_truth_evaluates_to_true_value() {
        let (_, catalog, pool, claims) = small_corpus();
        let registry = FunctionRegistry::standard();
        for claim in &claims {
            let spec = pool.iter().find(|s| s.text == claim.formula_text).unwrap();
            let v = eval_formula(&catalog, &registry, &spec.formula, &claim.lookups)
                .unwrap_or_else(|e| panic!("claim {} lookups must evaluate: {e}", claim.id));
            assert!(
                (v - claim.true_value).abs() <= 1e-9 * claim.true_value.abs().max(1.0),
                "claim {}: {} vs {}",
                claim.id,
                v,
                claim.true_value
            );
        }
    }

    #[test]
    fn correct_explicit_claims_are_within_tolerance() {
        let (_, _, pool, claims) = small_corpus();
        for claim in claims.iter().filter(|c| c.kind == ClaimKind::Explicit) {
            let spec = pool.iter().find(|s| s.text == claim.formula_text).unwrap();
            let display_true = claim.true_value * spec.family.display_scale();
            let stated = claim.stated_value.unwrap();
            let rel_err = (stated - display_true).abs() / display_true.abs().max(1e-9);
            if claim.is_correct {
                assert!(rel_err <= 0.05, "claim {} err {rel_err}", claim.id);
            } else {
                assert!(rel_err > 0.05, "claim {} err {rel_err} too small", claim.id);
            }
        }
    }

    #[test]
    fn error_rate_roughly_matches_config() {
        let (config, _, _, claims) = small_corpus();
        let incorrect = claims.iter().filter(|c| !c.is_correct).count();
        let rate = incorrect as f64 / claims.len() as f64;
        assert!(
            (rate - config.error_rate).abs() < 0.15,
            "error rate {rate} vs configured {}",
            config.error_rate
        );
    }

    #[test]
    fn explicit_fraction_roughly_matches_config() {
        let (config, _, _, claims) = small_corpus();
        let explicit = claims
            .iter()
            .filter(|c| c.kind == ClaimKind::Explicit)
            .count();
        let fraction = explicit as f64 / claims.len() as f64;
        assert!(
            (fraction - config.explicit_fraction).abs() < 0.20,
            "explicit fraction {fraction}"
        );
    }

    #[test]
    fn claim_text_mentions_ground_truth_years() {
        // every claim's text mentions at least one of its year attributes —
        // that is what makes the attribute classifier learnable
        let (_, _, _, claims) = small_corpus();
        for claim in &claims {
            let years: Vec<&String> = claim
                .attributes
                .iter()
                .filter(|a| a.parse::<i32>().is_ok())
                .collect();
            if years.is_empty() {
                continue;
            }
            assert!(
                years
                    .iter()
                    .any(|y| claim.sentence_text.contains(y.as_str())),
                "claim {} text `{}` mentions none of {years:?}",
                claim.id,
                claim.sentence_text
            );
        }
    }

    #[test]
    fn incorrect_explicit_claims_carry_corrections() {
        let (_, _, _, claims) = small_corpus();
        for claim in &claims {
            match (claim.kind, claim.is_correct) {
                (ClaimKind::Explicit, false) => {
                    assert!(claim.suggested_correction.is_some(), "claim {}", claim.id)
                }
                (ClaimKind::Explicit, true) => {
                    assert!(claim.suggested_correction.is_none())
                }
                (ClaimKind::General, _) => assert!(claim.stated_value.is_none()),
            }
        }
    }

    #[test]
    fn complexity_spans_figure6_range() {
        let (_, _, _, claims) = small_corpus();
        let min = claims.iter().map(|c| c.complexity).min().unwrap();
        let max = claims.iter().map(|c| c.complexity).max().unwrap();
        assert!(min <= 5, "min complexity {min}");
        assert!(max >= 8, "max complexity {max}");
    }

    #[test]
    fn format_quantity_report_style() {
        assert_eq!(format_quantity(22_209.0), "22 209");
        assert_eq!(format_quantity(1_234_567.0), "1 234 567");
        assert_eq!(format_quantity(52.2), "52.2");
        assert_eq!(format_quantity(3.0), "3");
        assert_eq!(format_quantity(0.25), "0.25");
        assert_eq!(format_quantity(-1500.0), "-1 500");
    }

    #[test]
    fn round_display_three_sig_figs() {
        assert_eq!(round_display(22_209.0), 22_200.0);
        assert_eq!(round_display(0.029_83), 0.0298);
        assert_eq!(round_display(0.0), 0.0);
    }
}
