//! Observability overhead: the representative wire workload —
//! `submit` + `suggest` requests through `api::handle_line`, crossing
//! every instrumented stage (envelope parse, root span, dispatch span,
//! translate/plan/qgen/execute/score child spans, render) — measured
//! with the flight recorder disabled and enabled.
//!
//! Before criterion times anything, the bench asserts the tracing tax:
//! the enabled path must cost ≤ 5% over the disabled path (plus a small
//! absolute epsilon so a microsecond-scale difference on a fast machine
//! cannot fail the ratio on noise). Samples for the two modes are
//! interleaved round-robin so frequency drift and cache warm-up hit both
//! sides equally, and the best (least-disturbed) samples are compared.

use std::sync::Arc;
use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};
use scrutinizer_core::{OrderingStrategy, SystemConfig};
use scrutinizer_corpus::{Corpus, CorpusConfig};
use scrutinizer_engine::api;
use scrutinizer_engine::engine::{Engine, EngineOptions};
use scrutinizer_engine::protocol::Json;
use scrutinizer_obs as obs;

/// Claims driven per timed sample (one `submit` + one `suggest` each):
/// enough suggestion-pipeline work that the sample is milliseconds, so
/// the 5% comparison sits far above timer noise.
const CLAIMS_PER_SAMPLE: usize = 8;
/// Interleaved samples per mode.
const ROUNDS: usize = 15;
/// Absolute slack added to the 5% bound (seconds per sample).
const ABS_EPSILON: f64 = 100e-6;

fn bench_engine() -> Arc<Engine> {
    let engine = Engine::with_options(
        Corpus::generate(CorpusConfig::small()),
        SystemConfig::test(),
        EngineOptions {
            retrain_interval: None,
            ordering: OrderingStrategy::Sequential,
            ..EngineOptions::default()
        },
    );
    engine.pretrain(None);
    engine
}

/// One wire round over the suggestion pipeline: for each claim, a
/// `submit` then a `suggest`, every line a full `handle_line` pass.
/// Returns the number of suggestions produced as the parity sink.
fn drive(engine: &Arc<Engine>, lines: &[String]) -> usize {
    let mut suggestions = 0;
    for line in lines {
        let response = api::handle_line(engine, line);
        assert_eq!(
            response.get("ok").and_then(Json::as_bool),
            Some(true),
            "bench request failed: {}",
            response.render()
        );
        if let Some(ranked) = response.get("suggestions").and_then(Json::as_arr) {
            suggestions += ranked.len();
        }
    }
    suggestions
}

fn best(samples: &[f64]) -> f64 {
    samples.iter().copied().fold(f64::INFINITY, f64::min)
}

fn bench_obs(c: &mut Criterion) {
    let engine = bench_engine();
    let session = engine.open_session("obs-bench").0;
    let lines: Vec<String> = (0..CLAIMS_PER_SAMPLE)
        .flat_map(|claim| {
            [
                format!(r#"{{"op":"submit","session":{session},"claims":[{claim}]}}"#),
                format!(r#"{{"op":"suggest","session":{session},"claim":{claim}}}"#),
            ]
        })
        .collect();

    // correctness before timing: both modes produce the same suggestions
    obs::set_tracing(false);
    let disabled_ok = drive(&engine, &lines);
    obs::set_tracing(true);
    let enabled_ok = drive(&engine, &lines);
    assert_eq!(
        disabled_ok, enabled_ok,
        "tracing must not change response payloads"
    );
    assert!(disabled_ok > 0, "the workload must produce suggestions");

    // ---- the ≤5% overhead claim, asserted before criterion runs ----
    // warm-up (also warms the query cache), then interleave the two
    // modes so drift is shared
    for _ in 0..3 {
        obs::set_tracing(false);
        drive(&engine, &lines);
        obs::set_tracing(true);
        drive(&engine, &lines);
    }
    let mut disabled = Vec::with_capacity(ROUNDS);
    let mut enabled = Vec::with_capacity(ROUNDS);
    for _ in 0..ROUNDS {
        obs::set_tracing(false);
        let start = Instant::now();
        drive(&engine, &lines);
        disabled.push(start.elapsed().as_secs_f64());

        obs::set_tracing(true);
        let start = Instant::now();
        drive(&engine, &lines);
        enabled.push(start.elapsed().as_secs_f64());
    }
    obs::set_tracing(false);
    // compare the best observed sample of each mode: the minimum is the
    // run least disturbed by scheduling noise, so the ratio reflects the
    // instrumentation cost rather than jitter
    let disabled = best(&disabled);
    let enabled = best(&enabled);
    let overhead = (enabled / disabled - 1.0) * 100.0;
    println!(
        "obs overhead ({CLAIMS_PER_SAMPLE} submit+suggest wire rounds/sample): \
         disabled {:.3}ms, enabled {:.3}ms ({overhead:+.2}%)",
        disabled * 1e3,
        enabled * 1e3,
    );
    assert!(
        enabled <= disabled * 1.05 + ABS_EPSILON,
        "tracing overhead must stay within 5% of the disabled path \
         (disabled {:.3}ms, enabled {:.3}ms = {overhead:+.2}%)",
        disabled * 1e3,
        enabled * 1e3,
    );

    let mut group = c.benchmark_group("obs");
    group.sample_size(10);
    group.bench_function("wire_suggest_tracing_disabled", |b| {
        obs::set_tracing(false);
        b.iter(|| drive(&engine, &lines))
    });
    group.bench_function("wire_suggest_tracing_enabled", |b| {
        obs::set_tracing(true);
        b.iter(|| drive(&engine, &lines));
        obs::set_tracing(false);
    });
    group.finish();
}

criterion_group!(benches, bench_obs);
criterion_main!(benches);
