//! Batch-selection planner benchmarks: what the parallel, warm-started,
//! incumbent-seeded solver and the incremental re-planner buy over the
//! seed's serial ILP path, swept from 100 to 10 000 unverified claims.
//!
//! * `planner_cold/*` — one cold batch selection per call:
//!   `seed_serial` is the pre-PR3 path (one cold 40-node branch & bound,
//!   greedy on failure, kept verbatim as
//!   [`select_batch_serial_baseline`]), `parallel_warm` the new solver
//!   (greedy-seeded incumbent, work-stealing search, dual-simplex LP warm
//!   starts), `greedy` the heuristic floor. Acceptance target: ≥ 3× at
//!   10 000 claims with equal or better objective.
//! * `planner_replan/*` — the re-plan after a retrain shifts utilities:
//!   `incremental_repair` reuses the cached batch through
//!   [`IncrementalPlanner`], `cold_resolve` solves from scratch.
//!   Acceptance target: ≥ 2×.
//!
//! Objective parity (ILP ≥ greedy, ILP ≥ serial baseline, repair within
//! the configured gap of a cold solve) is asserted before anything is
//! timed. The `--quick` smoke mode (used by CI) runs every routine once
//! just to prove the bench still drives the APIs — and still runs the
//! parity asserts.

use std::time::Instant;

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use scrutinizer_core::incremental::IncrementalPlanner;
use scrutinizer_core::ordering::{
    batch_utility, select_batch_detailed, select_batch_serial_baseline, ClaimChoice,
};
use scrutinizer_core::{OrderingStrategy, SystemConfig};
use scrutinizer_corpus::{Document, Section};

/// Deterministic pseudo-randomness; the bench must not depend on `rand`.
fn lcg(state: &mut u64) -> f64 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    ((*state >> 33) as f64) / ((1u64 << 31) as f64)
}

/// A synthetic document + per-claim planning input at the given scale,
/// shaped like the engine's: costs from the expected-cost model's range,
/// utilities from the retrained classifiers' range.
fn instance(n_claims: usize, n_sections: usize, seed: u64) -> (Document, Vec<ClaimChoice>) {
    let mut state = seed;
    let sections: Vec<Section> = (0..n_sections)
        .map(|id| Section {
            id,
            title: format!("Section {id}"),
            sentence_count: 40 + (lcg(&mut state) * 210.0) as usize,
            claim_ids: Vec::new(),
        })
        .collect();
    let mut document = Document {
        sections,
        total_sentences: 0,
    };
    document.total_sentences = document.sections.iter().map(|s| s.sentence_count).sum();
    let choices: Vec<ClaimChoice> = (0..n_claims)
        .map(|id| {
            let section = (lcg(&mut state) * n_sections as f64) as usize % n_sections;
            document.sections[section].claim_ids.push(id);
            ClaimChoice {
                id,
                section,
                cost: 30.0 + lcg(&mut state) * 90.0,
                utility: 0.5 + lcg(&mut state) * 5.5,
            }
        })
        .collect();
    (document, choices)
}

/// The engine's session budget formula.
fn budget_for(choices: &[ClaimChoice], config: &SystemConfig) -> f64 {
    let mean_cost = choices.iter().map(|c| c.cost).sum::<f64>() / choices.len().max(1) as f64;
    config.batch_size as f64 * mean_cost * 1.3 + 3.0 * config.read_seconds_per_sentence * 400.0
}

/// Utilities after a simulated retrain: a few percent of drift, the
/// Definition-7 re-estimate the mixed-initiative loop produces.
fn retrained(choices: &[ClaimChoice], seed: u64) -> Vec<ClaimChoice> {
    let mut state = seed;
    choices
        .iter()
        .map(|c| ClaimChoice {
            utility: c.utility * (0.95 + lcg(&mut state) * 0.1),
            ..c.clone()
        })
        .collect()
}

fn bench_planner(c: &mut Criterion) {
    let config = SystemConfig::default();
    let mut cold_group = c.benchmark_group("planner_cold");
    cold_group.sample_size(10);
    let mut summaries: Vec<(usize, f64, f64, f64, f64, f64)> = Vec::new();

    for n in [100usize, 1_000, 10_000] {
        let (document, choices) = instance(n, 8 + n / 250, 41 * n as u64 + 1);
        let budget = budget_for(&choices, &config);

        // ---- objective parity, asserted before anything is timed --------
        let ilp =
            select_batch_detailed(&choices, &document, OrderingStrategy::Ilp, budget, &config);
        let greedy = select_batch_detailed(
            &choices,
            &document,
            OrderingStrategy::Greedy,
            budget,
            &config,
        );
        let serial = select_batch_serial_baseline(&choices, &document, budget, &config);
        let serial_utility = batch_utility(&serial, &choices);
        // Ilp dominates Greedy unconditionally (the selection takes a
        // post-hoc max against the full-pool greedy), so this is exact
        assert!(
            ilp.utility >= greedy.utility - 1e-9,
            "{n} claims: ILP {} must match or beat greedy {}",
            ilp.utility,
            greedy.utility
        );
        // vs the serial baseline the guarantee is gap-relative: the
        // parallel solver trades up to its 1 % optimality gap for early
        // termination (on the shipped instances it wins outright — the
        // printed summary shows the margin)
        assert!(
            ilp.utility >= serial_utility * 0.99 - 1e-9,
            "{n} claims: ILP {} below the seed serial path {} beyond the gap",
            ilp.utility,
            serial_utility
        );

        // repair parity: after a utility shift, an accepted repair stays
        // within the configured gap of a cold solve on the same input
        let shifted = retrained(&choices, 7 * n as u64 + 3);
        let mut planner = IncrementalPlanner::new();
        planner.plan(&choices, &document, OrderingStrategy::Ilp, budget, &config);
        let repair = planner.plan(&shifted, &document, OrderingStrategy::Ilp, budget, &config);
        let cold_shifted =
            select_batch_detailed(&shifted, &document, OrderingStrategy::Ilp, budget, &config);
        assert!(
            repair.utility >= (1.0 - config.replan_gap) * cold_shifted.utility - 1e-9,
            "{n} claims: repair {} vs cold {} exceeds the {} gap",
            repair.utility,
            cold_shifted.utility,
            config.replan_gap
        );

        // ---- criterion timings ------------------------------------------
        cold_group.bench_with_input(BenchmarkId::new("seed_serial", n), &n, |b, _| {
            b.iter(|| {
                black_box(select_batch_serial_baseline(
                    black_box(&choices),
                    &document,
                    budget,
                    &config,
                ))
            })
        });
        cold_group.bench_with_input(BenchmarkId::new("parallel_warm", n), &n, |b, _| {
            b.iter(|| {
                black_box(select_batch_detailed(
                    black_box(&choices),
                    &document,
                    OrderingStrategy::Ilp,
                    budget,
                    &config,
                ))
            })
        });
        cold_group.bench_with_input(BenchmarkId::new("greedy", n), &n, |b, _| {
            b.iter(|| {
                black_box(select_batch_detailed(
                    black_box(&choices),
                    &document,
                    OrderingStrategy::Greedy,
                    budget,
                    &config,
                ))
            })
        });

        // ---- headline ratios (criterion lines do not compare) -----------
        let rounds = 3;
        let timed = |f: &mut dyn FnMut()| {
            let start = Instant::now();
            for _ in 0..rounds {
                f();
            }
            start.elapsed().as_secs_f64() / rounds as f64
        };
        let serial_s = timed(&mut || {
            black_box(select_batch_serial_baseline(
                &choices, &document, budget, &config,
            ));
        });
        let parallel_s = timed(&mut || {
            black_box(select_batch_detailed(
                &choices,
                &document,
                OrderingStrategy::Ilp,
                budget,
                &config,
            ));
        });
        let mut warm_planner = IncrementalPlanner::new();
        warm_planner.plan(&choices, &document, OrderingStrategy::Ilp, budget, &config);
        let variants = [
            retrained(&choices, 11 * n as u64 + 5),
            retrained(&choices, 13 * n as u64 + 7),
        ];
        let mut flip = 0usize;
        let replan_s = timed(&mut || {
            flip += 1;
            black_box(warm_planner.plan(
                &variants[flip % 2],
                &document,
                OrderingStrategy::Ilp,
                budget,
                &config,
            ));
        });
        let repairs = warm_planner.counters().incremental_repairs;
        assert!(
            repairs >= rounds as u64,
            "{n} claims: the timed re-plans must take the repair path ({repairs}/{rounds})"
        );
        summaries.push((
            n,
            serial_s,
            parallel_s,
            replan_s,
            ilp.utility,
            serial_utility,
        ));
    }
    cold_group.finish();

    println!("planner: cold solve vs seed serial baseline vs incremental re-plan");
    for (n, serial_s, parallel_s, replan_s, ilp_u, serial_u) in &summaries {
        println!(
            "  {n:>6} claims: serial {:>8.2} ms | parallel+warm {:>8.2} ms ({:.2}x) | \
             incremental re-plan {:>8.2} ms ({:.2}x vs cold) | objective {:.1} vs seed {:.1}",
            serial_s * 1e3,
            parallel_s * 1e3,
            serial_s / parallel_s,
            replan_s * 1e3,
            parallel_s / replan_s,
            ilp_u,
            serial_u,
        );
    }
}

fn bench_replan(c: &mut Criterion) {
    // the re-plan benches live in their own group so `planner_replan/...`
    // lines read as one comparison in criterion output
    let config = SystemConfig::default();
    let mut group = c.benchmark_group("planner_replan");
    group.sample_size(10);
    for n in [1_000usize, 10_000] {
        let (document, choices) = instance(n, 8 + n / 250, 17 * n as u64 + 9);
        let budget = budget_for(&choices, &config);
        let variants = [
            retrained(&choices, n as u64 + 1),
            retrained(&choices, n as u64 + 2),
        ];
        group.bench_with_input(BenchmarkId::new("incremental_repair", n), &n, |b, _| {
            let mut planner = IncrementalPlanner::new();
            planner.plan(&choices, &document, OrderingStrategy::Ilp, budget, &config);
            let mut flip = 0usize;
            b.iter(|| {
                flip += 1;
                black_box(planner.plan(
                    &variants[flip % 2],
                    &document,
                    OrderingStrategy::Ilp,
                    budget,
                    &config,
                ))
            })
        });
        group.bench_with_input(BenchmarkId::new("cold_resolve", n), &n, |b, _| {
            let mut flip = 0usize;
            b.iter(|| {
                flip += 1;
                black_box(select_batch_detailed(
                    &variants[flip % 2],
                    &document,
                    OrderingStrategy::Ilp,
                    budget,
                    &config,
                ))
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default();
    targets = bench_planner, bench_replan
}
criterion_main!(benches);
