//! The two latency claims of §6.1: classifier inference below 0.2 s per
//! claim and query generation below 0.5 s (0.35 s average), measured on the
//! paper-scale corpus.

use criterion::{criterion_group, criterion_main, Criterion};
use scrutinizer_core::{generate_queries, SystemConfig, SystemModels, Verifier};
use scrutinizer_corpus::{ClaimRecord, Corpus, CorpusConfig};
use scrutinizer_formula::parse_formula;
use scrutinizer_query::FunctionRegistry;
use std::hint::black_box;

fn paper_corpus() -> Corpus {
    Corpus::generate(CorpusConfig::paper_scale())
}

fn bench_predict_latency(c: &mut Criterion) {
    let corpus = paper_corpus();
    let config = SystemConfig::default();
    let mut models = SystemModels::bootstrap(&corpus, &config);
    let train: Vec<&ClaimRecord> = corpus.claims.iter().take(800).collect();
    models.retrain(&train);
    let claim = &corpus.claims[900];
    let features = models.features(claim);
    // paper: "testing a classifier took less than 0.2 seconds" — this runs
    // all four classifiers
    c.bench_function("predict_latency/all_four_classifiers", |b| {
        b.iter(|| black_box(models.translate(black_box(&features), 10)))
    });
    c.bench_function("predict_latency/featurize_claim", |b| {
        b.iter(|| black_box(models.features(black_box(claim))))
    });
}

fn bench_query_generation(c: &mut Criterion) {
    let corpus = paper_corpus();
    let config = SystemConfig::default();
    let registry = FunctionRegistry::standard();
    // a validated context as Algorithm 2 receives it: one relation, one key,
    // a handful of attributes, ten ranked formulas
    let claim = corpus
        .claims
        .iter()
        .find(|c| c.formula_text.contains("POWER"))
        .expect("growth claim exists");
    let relations = vec![claim.relation.clone()];
    let keys = vec![claim.key.clone()];
    let mut attributes = claim.attributes.clone();
    attributes.extend(["2015".to_string(), "2030".to_string(), "2040".to_string()]);
    let formulas: Vec<_> = corpus
        .formulas
        .iter()
        .take(10)
        .map(|s| (s.text.clone(), parse_formula(&s.text).expect("pool parses")))
        .collect();
    let parameter = Verifier::extract_parameter(&claim.claim_text);
    // paper: "query generation took less than half a second (0.35 s avg)"
    c.bench_function("query_generation/validated_context", |b| {
        b.iter(|| {
            black_box(generate_queries(
                &corpus.catalog,
                &registry,
                black_box(&relations),
                black_box(&keys),
                black_box(&attributes),
                black_box(&formulas),
                parameter,
                &config,
            ))
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_predict_latency, bench_query_generation
}
criterion_main!(benches);
