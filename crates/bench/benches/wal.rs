//! What the write-ahead log buys at restart: replaying the WAL must be
//! much cheaper than re-earning the same state by re-running the ops.
//!
//! The fixture verifies a batch of claims on a durable engine over a
//! real directory (`FsStorage`, per-record fsync, epoch checkpoints),
//! then measures two ways of getting that state back:
//!
//! * **`reexecute_ops`** — a fresh engine re-runs every verification
//!   end-to-end (planning, screening, verdicts, retrains): the cost a
//!   system without recovery pays after every restart;
//! * **`replay_wal`** — [`recover_parts`] loads the checkpoint image and
//!   epoch blob and replays the record tail, with no planning at all.
//!
//! Before anything is timed, parity is asserted: the recovered engine
//! reports exactly the durable stats the original earned. The headline
//! floor — replay ≥ 10× faster than re-execution — is asserted even
//! under `--quick` (the CI smoke run); only the criterion timing detail
//! is scoped to full runs.

use std::sync::Arc;
use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};
use scrutinizer_core::{FeatureStore, OrderingStrategy, SystemConfig, SystemModels};
use scrutinizer_corpus::{Corpus, CorpusConfig};
use scrutinizer_crowd::{Worker, WorkerConfig};
use scrutinizer_engine::engine::{Engine, EngineOptions};
use scrutinizer_engine::{recover_parts, DurableEnv, RecoveryReport};
use scrutinizer_sim::{FsStorage, SimEnv, Storage};
use scrutinizer_wal::WalOptions;

/// Claims verified into the log — enough verdicts for several published
/// epochs at [`RETRAIN_INTERVAL`], so recovery loads a checkpoint *and*
/// replays a tail.
const CLAIMS: usize = 32;
const RETRAIN_INTERVAL: usize = 4;

fn quick_mode() -> bool {
    std::env::args().any(|a| a == "--quick" || a == "--test")
}

fn median_secs(rounds: usize, mut routine: impl FnMut()) -> f64 {
    let mut samples: Vec<f64> = (0..rounds)
        .map(|_| {
            let start = Instant::now();
            routine();
            start.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    samples[samples.len() / 2]
}

/// The expensive once-per-process parts every engine incarnation shares:
/// corpus, features, pretrained weights. Re-execution and replay both
/// start from here, so the comparison isolates *state reconstruction*.
struct World {
    corpus: Arc<Corpus>,
    features: Arc<FeatureStore>,
    models: SystemModels,
    config: SystemConfig,
}

fn world() -> World {
    let bootstrap = Engine::with_options(
        Corpus::generate(CorpusConfig::small()),
        SystemConfig::test(),
        EngineOptions {
            retrain_interval: None,
            ordering: OrderingStrategy::Sequential,
            ..EngineOptions::default()
        },
    );
    bootstrap.pretrain(None);
    World {
        corpus: bootstrap.corpus_handle(),
        features: bootstrap.features_handle(),
        models: bootstrap.models_snapshot().models.clone(),
        config: SystemConfig::test(),
    }
}

fn options() -> EngineOptions {
    EngineOptions {
        retrain_interval: Some(RETRAIN_INTERVAL),
        ordering: OrderingStrategy::Sequential,
        threads: 2,
        ..EngineOptions::default()
    }
}

fn worker(seed: u64) -> Worker {
    Worker::new(
        format!("w{seed}"),
        WorkerConfig {
            accuracy: 1.0,
            skip_probability: 0.0,
            seed,
            ..WorkerConfig::default()
        },
    )
}

/// The re-execution baseline's workload: verify every claim end-to-end
/// and settle the background trainer.
fn drive(engine: &Arc<Engine>) {
    for claim_id in 0..CLAIMS {
        engine.verify_claim_with(claim_id, &mut worker(0x3A1 + claim_id as u64));
    }
    engine.flush_retrains();
}

/// A fresh *non-durable* engine re-running the whole workload — the
/// baseline deliberately pays no WAL appends or fsyncs, so the measured
/// gap understates what replay saves a durable deployment.
fn reexecute(world: &World) -> Arc<Engine> {
    let engine = Engine::from_parts(
        Arc::clone(&world.corpus),
        Arc::clone(&world.features),
        world.models.clone(),
        world.config,
        options(),
        SimEnv::production(),
    );
    drive(&engine);
    engine
}

/// Opens (or recovers) a durable engine over `dir` on the real fs.
fn recover_dir(world: &World, dir: &str) -> (Arc<Engine>, RecoveryReport) {
    recover_parts(
        Arc::clone(&world.corpus),
        Arc::clone(&world.features),
        world.models.clone(),
        world.config,
        options(),
        SimEnv::production(),
        DurableEnv {
            storage: Arc::new(FsStorage::new()) as Arc<dyn Storage>,
            dir: dir.to_string(),
            wal: WalOptions::default(),
        },
    )
    .expect("recovery over a healthy directory cannot fail")
}

/// The durable subset of the stats snapshot — what recovery promises to
/// restore exactly.
fn durable_subset(engine: &Engine) -> (u64, u64, u64, u64, u64, u64, u64, u64, u64) {
    let s = engine.stats();
    (
        s.sessions_opened,
        s.sessions_closed,
        s.claims_verified,
        s.answers_posted,
        s.retrains,
        s.background_retrains,
        s.examples_trained,
        s.model_epoch,
        s.pending_examples,
    )
}

fn bench_wal_recovery(c: &mut Criterion) {
    let world = world();
    let root = std::env::temp_dir().join(format!("scrutinizer-wal-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    std::fs::create_dir_all(&root).expect("create bench scratch dir");
    let dir = root.join("data").to_string_lossy().into_owned();

    // ---- write the log once: the state every restart strategy must
    // reproduce ----
    let (origin, fresh) = recover_dir(&world, &dir);
    assert_eq!(
        fresh,
        RecoveryReport::default(),
        "the directory starts empty"
    );
    drive(&origin);
    let expected = durable_subset(&origin);
    let epoch = origin.model_epoch();
    assert!(epoch >= 1, "the workload must publish at least one epoch");
    let wal = origin.wal_metrics().expect("durable engine has a WAL");
    drop(origin);

    // ---- parity before timing: recovery rebuilds the durable stats
    // exactly, resuming the published epoch ----
    let (recovered, report) = recover_dir(&world, &dir);
    assert_eq!(
        durable_subset(&recovered),
        expected,
        "recovery must restore the durable stats exactly (report: {report:?})"
    );
    assert_eq!(report.resumed_epoch, epoch, "the model epoch must resume");
    drop(recovered);

    let mut group = c.benchmark_group("wal_recovery");
    group.sample_size(10);
    group.bench_function("reexecute_ops", |b| {
        b.iter(|| reexecute(&world).stats().claims_verified)
    });
    group.bench_function("replay_wal", |b| {
        b.iter(|| recover_dir(&world, &dir).1.records_replayed)
    });
    group.finish();

    // ---- the headline floor, asserted in quick mode too: replaying the
    // log must beat re-earning the state by ≥ 10× ----
    let rounds = if quick_mode() { 3 } else { 9 };
    let reexec = median_secs(rounds, || {
        let engine = reexecute(&world);
        assert_eq!(engine.stats().claims_verified, CLAIMS as u64);
    });
    let replay = median_secs(rounds, || {
        let (engine, _) = recover_dir(&world, &dir);
        assert_eq!(durable_subset(&engine), expected);
    });
    println!(
        "wal recovery ({} records, {} bytes, epoch {}): re-execute {:.2}ms, \
         replay {:.2}ms ({:.1}x)",
        wal.appends,
        wal.bytes_written,
        epoch,
        reexec * 1e3,
        replay * 1e3,
        reexec / replay,
    );
    assert!(
        reexec / replay >= 10.0,
        "WAL replay must be ≥ 10x faster than re-executing the ops \
         (re-execute {:.2}ms vs replay {:.2}ms = {:.2}x)",
        reexec * 1e3,
        replay * 1e3,
        reexec / replay,
    );

    let _ = std::fs::remove_dir_all(&root);
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_wal_recovery
}
criterion_main!(benches);
