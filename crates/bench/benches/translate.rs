//! Learning-stack benchmarks: what epoch-versioned snapshots, warm-start
//! incremental retraining and the batched feature/scoring pipeline buy.
//!
//! * `retrain/*` — the mixed-initiative loop's `Retrain(N, A)` step as a
//!   stream of verified batches: `cold_replay` retrains from scratch on
//!   the growing union after every batch (the pre-PR4 engine behavior),
//!   `warm_incremental` warm-starts on just the new batch (plus bounded
//!   rehearsal) against the shared `FeatureStore`. Acceptance target:
//!   ≥ 3× for the whole stream at matching accuracy.
//! * `utility/*` — Definition 7 over 10 000 open claims: `per_claim` is
//!   the legacy one-at-a-time `training_utility` loop, `batched` the CSR
//!   `training_utilities` pass through the classifiers' feature-major
//!   layout, `batched_reference` the same fusion through the scalar
//!   reference kernel. Acceptance targets: batched ≥ 5× per-claim; the
//!   vectorized fused sweep (aligned CSR rows + `exp_approx` entropy)
//!   ≥ 1.35× its scalar twin (both kernels stream the same ~200 KB of
//!   weight columns per claim, so past the point where the sweep is
//!   L2-fill-bound the twin ratio compresses — the per-claim ratio is
//!   the headroom measure); and the classifier batch paths the aligned
//!   layout exists for (`entropy_batch_into` over the feature-major
//!   transpose) ≥ 2× the scalar per-row `predict_proba` + `Σ −p ln p`
//!   loop.
//! * the **retrain storm** — suggest latency on a live engine while a
//!   writer thread publishes back-to-back model epochs. With snapshot
//!   swaps readers never wait on the trainer; the p99 must stay near the
//!   idle p99 instead of absorbing whole retrain latencies.
//!
//! The warm≡cold model-equivalence assertion (accuracy parity on the full
//! stream) and the batched≡scalar utility parity run **before** anything
//! is timed, in `--quick` smoke mode too. The latency-ratio assertions
//! run only in full mode: a one-shot smoke iteration has no stable tail.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use scrutinizer_core::{FeatureStore, OrderingStrategy, PropertyKind, SystemConfig, SystemModels};
use scrutinizer_corpus::{ClaimRecord, Corpus, CorpusConfig};
use scrutinizer_engine::engine::{Engine, EngineOptions};
use scrutinizer_text::SparseVector;

/// The retrain stream's shape mirrors the paper's loop: a report's worth
/// of claims verified in interval-sized batches (§6.2 retrains every 100
/// verdicts out of 1539 claims — 15 growing replays for the old path).
const BATCHES: usize = 16;

fn quick_mode() -> bool {
    std::env::args().any(|a| a == "--quick" || a == "--test")
}

/// The retrain bench's corpus: `small()` label spaces, but enough claims
/// that the stream has [`BATCHES`] meaningful intervals.
fn retrain_corpus() -> CorpusConfig {
    CorpusConfig {
        n_claims: 320,
        n_sentences: 1600,
        ..CorpusConfig::small()
    }
}

/// The utility bench's corpus: label spaces scaled toward the paper's
/// (1791 relations / 830 keys / 87 attributes / 413 formulas); per-claim
/// scoring cost grows with the class count, which is exactly the regime
/// the batched pipeline exists for.
fn utility_corpus() -> CorpusConfig {
    CorpusConfig {
        n_claims: 160,
        n_sentences: 800,
        n_relations: 120,
        n_keys: 200,
        n_attributes: 60,
        n_formulas: 80,
        ..CorpusConfig::small()
    }
}

fn setup_scaled(config: CorpusConfig) -> (Corpus, SystemModels, FeatureStore) {
    let corpus = Corpus::generate(config);
    let models = SystemModels::bootstrap(&corpus, &SystemConfig::test());
    let store = FeatureStore::build(&corpus, &models);
    (corpus, models, store)
}

/// The pre-PR4 engine behavior: after each verified batch, retrain from
/// scratch on everything verified so far.
fn cold_replay_stream(base: &SystemModels, corpus: &Corpus, batches: &[&[usize]]) -> SystemModels {
    let mut models = base.clone();
    let mut union: Vec<usize> = Vec::new();
    for batch in batches {
        union.extend_from_slice(batch);
        let refs: Vec<&ClaimRecord> = union.iter().map(|&id| &corpus.claims[id]).collect();
        models.retrain(&refs);
    }
    models
}

/// The PR4 path: warm-start each batch against the feature store.
fn warm_incremental_stream(
    base: &SystemModels,
    corpus: &Corpus,
    store: &FeatureStore,
    batches: &[&[usize]],
) -> SystemModels {
    let mut models = base.clone();
    for batch in batches {
        models.retrain_incremental(store, &corpus.claims, batch);
    }
    models
}

fn bench_retrain(c: &mut Criterion) {
    let (corpus, base, store) = setup_scaled(retrain_corpus());
    let ids: Vec<usize> = (0..corpus.claims.len()).collect();
    let batch_size = ids.len().div_ceil(BATCHES);
    let batches: Vec<&[usize]> = ids.chunks(batch_size).collect();
    let refs: Vec<&ClaimRecord> = corpus.claims.iter().collect();

    // ---- warm ≡ cold model equivalence, asserted before timing ---------
    let cold = cold_replay_stream(&base, &corpus, &batches);
    let warm = warm_incremental_stream(&base, &corpus, &store, &batches);
    let cold_acc: f64 = cold.accuracy_on(&refs).iter().sum();
    let warm_acc: f64 = warm.accuracy_on(&refs).iter().sum();
    assert!(
        cold_acc > 1.5,
        "cold replay failed to learn its own training set: {cold_acc}"
    );
    assert!(
        warm_acc >= cold_acc - 0.25,
        "warm-start accuracy {warm_acc} fell beyond tolerance of cold {cold_acc}"
    );
    // and the streams genuinely reduced uncertainty the same way
    let probe = store.gather(&ids[..10.min(ids.len())]);
    let cold_u: f64 = cold.training_utilities(&probe).iter().sum();
    let warm_u: f64 = warm.training_utilities(&probe).iter().sum();
    let bootstrap_u: f64 = base.training_utilities(&probe).iter().sum();
    assert!(
        cold_u < bootstrap_u && warm_u < bootstrap_u,
        "training must reduce entropy: bootstrap {bootstrap_u}, cold {cold_u}, warm {warm_u}"
    );

    // ---- criterion timings ---------------------------------------------
    let mut group = c.benchmark_group("retrain");
    group.sample_size(10);
    group.bench_function("cold_replay", |b| {
        b.iter(|| black_box(cold_replay_stream(&base, &corpus, &batches)))
    });
    group.bench_function("warm_incremental", |b| {
        b.iter(|| black_box(warm_incremental_stream(&base, &corpus, &store, &batches)))
    });
    group.finish();

    // ---- headline ratio ------------------------------------------------
    let rounds = if quick_mode() { 1 } else { 3 };
    let timed = |f: &mut dyn FnMut()| {
        let start = Instant::now();
        for _ in 0..rounds {
            f();
        }
        start.elapsed().as_secs_f64() / rounds as f64
    };
    let cold_s = timed(&mut || {
        black_box(cold_replay_stream(&base, &corpus, &batches));
    });
    let warm_s = timed(&mut || {
        black_box(warm_incremental_stream(&base, &corpus, &store, &batches));
    });
    println!(
        "retrain stream ({} claims, {} batches): cold replay {:.1} ms | warm incremental {:.1} ms \
         ({:.2}x) | accuracy cold {:.2} vs warm {:.2}",
        ids.len(),
        batches.len(),
        cold_s * 1e3,
        warm_s * 1e3,
        cold_s / warm_s,
        cold_acc,
        warm_acc,
    );
    if !quick_mode() {
        assert!(
            cold_s >= 3.0 * warm_s,
            "warm-start retrain must be ≥3× the from-scratch replay: {:.1} ms vs {:.1} ms",
            warm_s * 1e3,
            cold_s * 1e3
        );
    }
}

fn bench_utilities(c: &mut Criterion) {
    let (corpus, mut models, store) = setup_scaled(utility_corpus());
    let refs: Vec<&ClaimRecord> = corpus.claims.iter().collect();
    models.retrain(&refs);

    // 10 000 open claims, cycling the corpus
    let n = if quick_mode() { 1_000 } else { 10_000 };
    let ids: Vec<usize> = (0..n).map(|i| i % corpus.claims.len()).collect();
    let rows = store.gather(&ids);
    // the legacy loop's input: one owned vector per claim, pre-featurized
    // (exactly what the engine's sessions used to hold)
    let vectors: Vec<SparseVector> = ids
        .iter()
        .map(|&id| store.features(id).to_owned_vector())
        .collect();

    // ---- batched ≡ per-claim parity, asserted before timing ------------
    let batched = models.training_utilities(&rows);
    assert_eq!(batched.len(), n);
    for (i, v) in vectors.iter().enumerate().step_by(97) {
        let scalar = models.training_utility(v);
        assert!(
            (scalar - batched[i]).abs() < 1e-4,
            "row {i}: scalar {scalar} vs batched {}",
            batched[i]
        );
    }
    // ---- fused vectorized ≡ scalar reference kernel, every row ---------
    let reference = models.training_utilities_reference(&rows);
    assert_eq!(reference.len(), n);
    for (i, (fast, slow)) in batched.iter().zip(&reference).enumerate() {
        assert!(
            (fast - slow).abs() < 1e-4,
            "row {i}: vectorized {fast} vs reference {slow}"
        );
    }

    // ---- criterion timings ---------------------------------------------
    let mut group = c.benchmark_group("utility");
    group.sample_size(10);
    group.bench_function("per_claim", |b| {
        b.iter(|| -> f64 {
            vectors
                .iter()
                .map(|v| models.training_utility(black_box(v)))
                .sum()
        })
    });
    group.bench_function("batched", |b| {
        b.iter(|| black_box(models.training_utilities(black_box(&rows))))
    });
    group.bench_function("batched_reference", |b| {
        b.iter(|| black_box(models.training_utilities_reference(black_box(&rows))))
    });
    group.finish();

    // ---- headline ratio ------------------------------------------------
    let rounds = if quick_mode() { 1 } else { 3 };
    let timed = |f: &mut dyn FnMut()| {
        let start = Instant::now();
        for _ in 0..rounds {
            f();
        }
        start.elapsed().as_secs_f64() / rounds as f64
    };
    let per_claim_s = timed(&mut || {
        let total: f64 = vectors
            .iter()
            .map(|v| models.training_utility(black_box(v)))
            .sum();
        black_box(total);
    });
    let batched_s = timed(&mut || {
        black_box(models.training_utilities(&rows));
    });
    let reference_s = timed(&mut || {
        black_box(models.training_utilities_reference(&rows));
    });
    println!(
        "utility scoring ({n} claims): per-claim {:.1} ms | scalar fused {:.1} ms | \
         vectorized fused {:.1} ms ({:.2}x per-claim, {:.2}x scalar)",
        per_claim_s * 1e3,
        reference_s * 1e3,
        batched_s * 1e3,
        per_claim_s / batched_s,
        reference_s / batched_s,
    );
    if !quick_mode() {
        assert!(
            per_claim_s >= 5.0 * batched_s,
            "batched utility scoring must be ≥5× the per-claim loop: {:.1} ms vs {:.1} ms",
            batched_s * 1e3,
            per_claim_s * 1e3
        );
        // the aligned-CSR + fast-entropy claim: the vectorized fused
        // kernel must beat its own scalar twin, same fusion, same rows.
        // The floor is 1.35×, not the 2× of the other ratios, on purpose:
        // at this corpus scale each claim streams ~114 weight columns ×
        // ~1.9 KB from L2/L3, so BOTH kernels are fill-bandwidth-bound
        // for most of the sweep and the twin ratio compresses (measured
        // 1.5–1.9× across machines; a hot-cache run of the vectorized
        // kernel sits at ~0.5× its streaming time, which is where the
        // remaining gap lives). The ≥ 5× per-claim floor above and the
        // ≥ 2× batch-entropy floor below carry the vectorization claim.
        assert!(
            reference_s >= 1.35 * batched_s,
            "the vectorized fused kernel must be ≥1.35× the scalar reference: \
             {:.1} ms vs {:.1} ms",
            batched_s * 1e3,
            reference_s * 1e3
        );
    }

    // ---- classifier batch paths: aligned transpose vs per-row scalar ----
    // `entropy_batch_into` is the kernel Definition 7 leans on when the
    // fusion is bypassed (single-classifier callers): feature-major
    // transpose, one reused scratch row, entropy folded out of raw scores
    // with one `ln` per row. The scalar baseline is what every caller did
    // before the batch path existed: `prediction_entropy` per row
    // (row-major dots, a fresh Vec of probabilities, libm softmax, then
    // `Σ −p ln p`).
    let clf = models.classifier(PropertyKind::Relation);
    let mut batch_entropy: Vec<f64> = Vec::new();
    clf.entropy_batch_into(&rows, &mut batch_entropy);
    for (i, v) in vectors.iter().enumerate().step_by(97) {
        let scalar = clf.prediction_entropy(v);
        assert!(
            (scalar - batch_entropy[i]).abs() < 1e-3,
            "row {i}: scalar entropy {scalar} vs batch {}",
            batch_entropy[i]
        );
    }
    let batch_entropy_s = timed(&mut || {
        batch_entropy.clear();
        clf.entropy_batch_into(&rows, &mut batch_entropy);
        black_box(&batch_entropy);
    });
    let scalar_entropy_s = timed(&mut || {
        let total: f64 = vectors
            .iter()
            .map(|v| clf.prediction_entropy(black_box(v)))
            .sum();
        black_box(total);
    });
    println!(
        "classifier entropy ({n} rows, {} classes): per-row {:.1} ms | batched {:.1} ms ({:.2}x)",
        clf.labels().len(),
        scalar_entropy_s * 1e3,
        batch_entropy_s * 1e3,
        scalar_entropy_s / batch_entropy_s,
    );
    if !quick_mode() {
        assert!(
            scalar_entropy_s >= 2.0 * batch_entropy_s,
            "batched classifier entropy must be ≥2× the per-row scalar loop: \
             {:.1} ms vs {:.1} ms",
            batch_entropy_s * 1e3,
            scalar_entropy_s * 1e3
        );
    }
}

/// p99 of a set of measured latencies, in microseconds.
fn p99_micros(mut samples: Vec<f64>) -> f64 {
    samples.sort_by(f64::total_cmp);
    let rank = ((samples.len() as f64) * 0.99).ceil() as usize;
    samples[rank.saturating_sub(1).min(samples.len() - 1)]
}

/// Times `suggest` for one claim through a fresh session (µs); the
/// submit/screens setup is outside the measured window.
fn timed_suggest(engine: &Arc<Engine>, claim_id: usize) -> f64 {
    let session = engine.open_session("bench");
    engine.submit_report(session, &[claim_id]).expect("submit");
    let start = Instant::now();
    let suggestions = engine.suggest(session, claim_id).expect("suggest");
    let elapsed = start.elapsed().as_secs_f64() * 1e6;
    black_box(suggestions);
    engine.close_session(session).expect("close");
    elapsed
}

fn bench_retrain_storm(_c: &mut Criterion) {
    let corpus = Corpus::generate(CorpusConfig::small());
    let engine = Engine::with_options(
        corpus,
        SystemConfig::test(),
        EngineOptions {
            retrain_interval: None,
            ordering: OrderingStrategy::Sequential,
            ..EngineOptions::default()
        },
    );
    engine.pretrain(None);

    let claims: Vec<usize> = (0..8).collect();
    let passes = if quick_mode() { 2 } else { 25 };
    // warm the query cache so idle and storm runs see the same cache state
    for &id in &claims {
        timed_suggest(&engine, id);
    }

    // ---- idle baseline --------------------------------------------------
    let mut idle: Vec<f64> = Vec::new();
    for _ in 0..passes {
        for &id in &claims {
            idle.push(timed_suggest(&engine, id));
        }
    }

    // ---- the storm: back-to-back epoch publishes ------------------------
    let epoch_before = engine.model_epoch();
    let stop = Arc::new(AtomicBool::new(false));
    let writer = {
        let engine = Arc::clone(&engine);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut published = 0u64;
            while !stop.load(Ordering::Acquire) {
                engine.pretrain(None);
                published += 1;
            }
            published
        })
    };
    let mut storm: Vec<f64> = Vec::new();
    for _ in 0..passes {
        for &id in &claims {
            storm.push(timed_suggest(&engine, id));
        }
    }
    stop.store(true, Ordering::Release);
    let published = writer.join().expect("storm writer");
    let epochs_advanced = engine.model_epoch() - epoch_before;

    let idle_p99 = p99_micros(idle);
    let storm_p99 = p99_micros(storm);
    let retrain_mean = engine.stats().retrain_latency.mean_micros();
    println!(
        "suggest under retrain storm: idle p99 {:.0} µs | storm p99 {:.0} µs ({:.2}x) | \
         {published} retrains published ({epochs_advanced} epochs), mean retrain {:.0} µs",
        idle_p99,
        storm_p99,
        storm_p99 / idle_p99,
        retrain_mean,
    );
    assert!(
        epochs_advanced >= published,
        "every storm retrain must publish an epoch"
    );
    if !quick_mode() {
        assert!(
            published >= 1,
            "the storm must actually have retrained while suggests ran"
        );
        // the non-blocking guarantee: the suggest tail never absorbs a
        // retrain stall. Pre-PR4 the models sat behind a RwLock and every
        // reader waited out the whole retrain — p99 would sit at or above
        // the mean retrain latency; with snapshots it must stay far below.
        assert!(
            storm_p99 < 0.5 * retrain_mean,
            "suggest p99 {storm_p99} µs absorbed a retrain stall (mean retrain {retrain_mean} µs)"
        );
        // and stays near the idle tail. With ≥ 2 cores the trainer runs on
        // its own core and the tail must hold the ~1.2× target; on one
        // core the OS timeslices reader and trainer (~2× wall time plus
        // scheduler jitter is physics, not lock contention — the stall
        // bound above is the load-bearing assertion there).
        let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
        let allowed = if cores >= 2 { 1.2 } else { 5.0 };
        assert!(
            storm_p99 <= allowed * idle_p99,
            "storm p99 {storm_p99} µs vs idle p99 {idle_p99} µs exceeds {allowed}x"
        );
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_retrain, bench_utilities, bench_retrain_storm
}
criterion_main!(benches);
