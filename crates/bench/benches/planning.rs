//! Question-planning and claim-ordering benches (§6.2's "15 minutes of
//! planning" budget) plus the solver ablation: the Definition 9 ILP vs the
//! greedy fallback vs the DP knapsack on knapsack-shaped instances.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use scrutinizer_core::ordering::ClaimChoice;
use scrutinizer_core::pruning::{greedy_select, PropertyCandidates};
use scrutinizer_core::{select_batch, OrderingStrategy, PropertyKind, SystemConfig};
use scrutinizer_corpus::{Corpus, CorpusConfig};
use scrutinizer_crowd::CostModel;
use scrutinizer_ilp::knapsack_01;
use std::hint::black_box;

fn choices(corpus: &Corpus) -> Vec<ClaimChoice> {
    corpus
        .claims
        .iter()
        .map(|c| ClaimChoice {
            id: c.id,
            section: c.section,
            cost: 30.0 + (c.id % 13) as f64 * 9.0,
            utility: 1.0 + ((c.id * 7) % 11) as f64,
        })
        .collect()
}

fn bench_batch_selection(c: &mut Criterion) {
    let corpus = Corpus::generate(CorpusConfig::paper_scale());
    let all = choices(&corpus);
    let config = SystemConfig::default();
    let budget = 100.0 * 60.0;
    let mut group = c.benchmark_group("batch_selection");
    group.sample_size(10);
    for strategy in [
        OrderingStrategy::Ilp,
        OrderingStrategy::Greedy,
        OrderingStrategy::Sequential,
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{strategy:?}")),
            &strategy,
            |b, &strategy| {
                b.iter(|| {
                    black_box(select_batch(
                        black_box(&all),
                        &corpus.document,
                        strategy,
                        budget,
                        &config,
                    ))
                })
            },
        );
    }
    group.finish();
}

fn bench_pruning_greedy(c: &mut Criterion) {
    // the per-claim greedy property selection, re-run for every claim on
    // every retrain — must be microseconds
    let candidates: Vec<PropertyCandidates> = [(10usize, 0.9f64), (10, 0.75), (10, 0.6)]
        .iter()
        .zip([
            PropertyKind::Relation,
            PropertyKind::Key,
            PropertyKind::Attribute,
        ])
        .map(|(&(count, mass), kind)| PropertyCandidates { kind, count, mass })
        .collect();
    c.bench_function("pruning/greedy_select_3_properties", |b| {
        b.iter(|| black_box(greedy_select(black_box(&candidates), 3)))
    });
}

fn bench_screen_cost_ordering(c: &mut Criterion) {
    // Corollary 2 ablation: probability-descending vs reversed option order.
    // Criterion measures the (identical) compute; the printed expected costs
    // demonstrate the modeled gap.
    let descending: Vec<f32> = vec![0.4, 0.2, 0.1, 0.08, 0.05, 0.04, 0.03, 0.02, 0.02, 0.01];
    let mut ascending = descending.clone();
    ascending.reverse();
    let model = CostModel::default();
    let down = CostModel::expected_list_cost(model.vp, &descending);
    let up = CostModel::expected_list_cost(model.vp, &ascending);
    println!("expected screen cost: descending {down:.2}s vs ascending {up:.2}s");
    assert!(down < up);
    c.bench_function("screen_cost/expected_cost_10_options", |b| {
        b.iter(|| {
            black_box(CostModel::expected_list_cost(
                model.vp,
                black_box(&descending),
            ))
        })
    });
}

fn bench_ilp_vs_knapsack(c: &mut Criterion) {
    // when every claim lives in its own section, batch selection IS a
    // knapsack (Theorem 7's reduction) — compare the general solver to DP
    let n = 60usize;
    let weights: Vec<u64> = (0..n).map(|i| 20 + (i as u64 * 13) % 50).collect();
    let values: Vec<f64> = (0..n).map(|i| 1.0 + ((i * 7) % 11) as f64).collect();
    let capacity: u64 = 600;
    let mut group = c.benchmark_group("ilp_vs_knapsack");
    group.sample_size(10);
    group.bench_function("dp_knapsack", |b| {
        b.iter(|| {
            black_box(knapsack_01(
                black_box(&weights),
                black_box(&values),
                capacity,
            ))
        })
    });
    group.bench_function("branch_and_bound", |b| {
        use scrutinizer_ilp::{solve_ilp, BranchConfig, Model, Sense};
        b.iter(|| {
            let mut m = Model::maximize();
            let vars: Vec<_> = values
                .iter()
                .enumerate()
                .map(|(i, &v)| m.add_binary(format!("x{i}"), v))
                .collect();
            let terms: Vec<_> = vars
                .iter()
                .zip(&weights)
                .map(|(&v, &w)| (v, w as f64))
                .collect();
            m.add_constraint(terms, Sense::Le, capacity as f64).unwrap();
            black_box(solve_ilp(&m, BranchConfig::default()))
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default();
    targets = bench_batch_selection, bench_pruning_greedy, bench_screen_cost_ordering,
              bench_ilp_vs_knapsack
}
criterion_main!(benches);
