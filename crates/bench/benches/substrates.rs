//! Substrate micro-benches: the building blocks whose speed the system
//! budget rests on — SQL parse/execute, formula evaluation, featurization,
//! classifier retraining, corpus generation.

use criterion::{criterion_group, criterion_main, Criterion};
use scrutinizer_core::{SystemConfig, SystemModels};
use scrutinizer_corpus::{ClaimRecord, Corpus, CorpusConfig};
use scrutinizer_formula::{eval_formula, parse_formula, Lookup};
use scrutinizer_query::{execute, parse, FunctionRegistry};
use std::hint::black_box;

fn bench_sql_pipeline(c: &mut Criterion) {
    let corpus = Corpus::generate(CorpusConfig::small());
    let table = corpus.catalog.tables().next().expect("table");
    let key = table.keys().next().expect("key").to_string();
    let sql = format!(
        "SELECT POWER(a.2017 / b.2016, 1 / (2017 - 2016)) - 1 \
         FROM {t} a, {t} b WHERE a.Index = '{key}' AND b.Index = '{key}'",
        t = table.name()
    );
    c.bench_function("sql/parse", |b| {
        b.iter(|| black_box(parse(black_box(&sql))))
    });
    let stmt = parse(&sql).expect("parses");
    c.bench_function("sql/execute_point_lookup_join", |b| {
        b.iter(|| black_box(execute(&corpus.catalog, black_box(&stmt))))
    });
    c.bench_function("sql/print", |b| b.iter(|| black_box(stmt.to_string())));
}

fn bench_formula_eval(c: &mut Criterion) {
    let corpus = Corpus::generate(CorpusConfig::small());
    let registry = FunctionRegistry::standard();
    let table = corpus.catalog.tables().next().expect("table");
    let key = table.keys().next().expect("key").to_string();
    let formula = parse_formula("POWER(a / b, 1 / (A1 - A2)) - 1").expect("formula");
    let lookups = vec![
        Lookup::new(table.name(), key.clone(), "2017"),
        Lookup::new(table.name(), key, "2016"),
    ];
    // Algorithm 2's inner loop — must be well under a microsecond to allow
    // tens of thousands of assignments inside the 0.5 s budget
    c.bench_function("formula/eval_growth", |b| {
        b.iter(|| black_box(eval_formula(&corpus.catalog, &registry, &formula, &lookups)))
    });
}

fn bench_featurize_and_retrain(c: &mut Criterion) {
    let corpus = Corpus::generate(CorpusConfig::small());
    let config = SystemConfig::default();
    let mut models = SystemModels::bootstrap(&corpus, &config);
    let refs: Vec<&ClaimRecord> = corpus.claims.iter().collect();
    let mut group = c.benchmark_group("learning");
    group.sample_size(10);
    // §6.2 attributes ~13 of 28 minutes to retraining across 15 batches
    group.bench_function("retrain_four_classifiers_80_claims", |b| {
        b.iter(|| models.retrain(black_box(&refs)))
    });
    group.finish();
}

fn bench_corpus_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("corpus");
    group.sample_size(10);
    group.bench_function("generate_small", |b| {
        b.iter(|| black_box(Corpus::generate(CorpusConfig::small())))
    });
    group.bench_function("generate_paper_scale", |b| {
        b.iter(|| black_box(Corpus::generate(CorpusConfig::paper_scale())))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default();
    targets = bench_sql_pipeline, bench_formula_eval, bench_featurize_and_retrain,
              bench_corpus_generation
}
criterion_main!(benches);
