//! Prepared-plan benchmarks: what the prepare-once/execute-many refactor
//! buys over the string path.
//!
//! * `suggestion_sweep/*` runs Algorithm 2 over the contexts of the same
//!   12 corpus claims — `string_path` is the pre-refactor implementation
//!   (per-assignment `Vec<Lookup>` clones + name-resolving evaluation,
//!   kept as [`generate_queries_unprepared`]), `prepared_path` the
//!   compiled-skeleton loop. Neither uses a result cache, so the ratio is
//!   the pure plan-layer speedup; the acceptance target is ≥ 2×.
//! * `execute_repeat/*` isolates the query executor: one statement run
//!   512 times, re-resolved from scratch each run vs. prepared once.
//!
//! The `--quick` smoke mode (also triggered by `cargo test`'s `--test`
//! flag, and used by CI) runs every routine once just to prove the bench
//! still drives the APIs.

use std::time::Instant;

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use scrutinizer_core::{generate_queries, generate_queries_unprepared, SystemConfig};
use scrutinizer_corpus::{ClaimRecord, Corpus, CorpusConfig};
use scrutinizer_formula::{parse_formula, Formula};
use scrutinizer_query::{parse, FunctionRegistry, PreparedQuery};

/// One claim's Algorithm 2 input, resolved from the corpus ground truth
/// the way the engine's suggestion path resolves validated contexts.
struct SweepContext {
    relations: Vec<String>,
    keys: Vec<String>,
    attributes: Vec<String>,
    formulas: Vec<(String, Formula)>,
    parameter: Option<f64>,
}

fn contexts(corpus: &Corpus, count: usize) -> Vec<SweepContext> {
    // a shared rank list of common formula shapes, claim's own first
    let shared = [
        "POWER(a / b, 1 / (A1 - A2)) - 1",
        "a / b",
        "(a - b) / b",
        "a - b",
    ];
    // classifier-style padding pools: the engine pads unvalidated
    // properties with top candidates, so Algorithm 2 sees several
    // relations/keys/attributes per claim — the hundreds-of-assignments
    // regime the paper describes
    let relation_pool: Vec<String> = corpus.catalog.table_names().map(str::to_string).collect();
    let key_pool = corpus.catalog.all_keys();
    let attribute_pool = corpus.catalog.all_attributes();
    let pad = |seed: &[String], pool: &[String], target: usize| -> Vec<String> {
        let mut out: Vec<String> = seed.to_vec();
        for candidate in pool {
            if out.len() >= target {
                break;
            }
            if !out.contains(candidate) {
                out.push(candidate.clone());
            }
        }
        out
    };
    corpus
        .claims
        .iter()
        .take(count)
        .map(|claim: &ClaimRecord| {
            let mut texts = vec![claim.formula_text.clone()];
            texts.extend(shared.iter().map(|s| s.to_string()));
            texts.dedup();
            let formulas = texts
                .into_iter()
                .filter_map(|t| parse_formula(&t).ok().map(|f| (t, f)))
                .collect();
            SweepContext {
                relations: pad(std::slice::from_ref(&claim.relation), &relation_pool, 3),
                keys: pad(std::slice::from_ref(&claim.key), &key_pool, 4),
                attributes: pad(&claim.attributes, &attribute_pool, 4),
                formulas,
                parameter: claim.stated_value,
            }
        })
        .collect()
}

fn sweep_string(
    corpus: &Corpus,
    registry: &FunctionRegistry,
    contexts: &[SweepContext],
    config: &SystemConfig,
) -> usize {
    contexts
        .iter()
        .map(|ctx| {
            generate_queries_unprepared(
                &corpus.catalog,
                registry,
                &ctx.relations,
                &ctx.keys,
                &ctx.attributes,
                &ctx.formulas,
                ctx.parameter,
                config,
            )
            .len()
        })
        .sum()
}

fn sweep_prepared(
    corpus: &Corpus,
    registry: &FunctionRegistry,
    contexts: &[SweepContext],
    config: &SystemConfig,
) -> usize {
    contexts
        .iter()
        .map(|ctx| {
            generate_queries(
                &corpus.catalog,
                registry,
                &ctx.relations,
                &ctx.keys,
                &ctx.attributes,
                &ctx.formulas,
                ctx.parameter,
                config,
            )
            .len()
        })
        .sum()
}

fn bench_suggestion_sweep(c: &mut Criterion) {
    let corpus = Corpus::generate(CorpusConfig::small());
    let registry = FunctionRegistry::standard();
    let config = SystemConfig::test();
    let contexts = contexts(&corpus, 12);
    // both paths must agree before we time them
    assert_eq!(
        sweep_string(&corpus, &registry, &contexts, &config),
        sweep_prepared(&corpus, &registry, &contexts, &config),
        "string and prepared sweeps must produce the same candidates"
    );

    let mut group = c.benchmark_group("suggestion_sweep");
    group.sample_size(20);
    group.bench_function("string_path", |b| {
        b.iter(|| sweep_string(&corpus, &registry, &contexts, &config))
    });
    group.bench_function("prepared_path", |b| {
        b.iter(|| sweep_prepared(&corpus, &registry, &contexts, &config))
    });
    group.finish();

    // headline ratio for the acceptance gate (criterion's per-line output
    // does not compare groups)
    let timed = |f: &dyn Fn() -> usize| {
        let rounds = 10;
        let start = Instant::now();
        for _ in 0..rounds {
            black_box(f());
        }
        start.elapsed().as_secs_f64() / rounds as f64
    };
    let string_path = timed(&|| sweep_string(&corpus, &registry, &contexts, &config));
    let prepared = timed(&|| sweep_prepared(&corpus, &registry, &contexts, &config));
    println!(
        "suggestion_sweep: string {:.3} ms vs prepared {:.3} ms → {:.2}x",
        string_path * 1e3,
        prepared * 1e3,
        string_path / prepared
    );
}

fn bench_execute_repeat(c: &mut Criterion) {
    let corpus = Corpus::generate(CorpusConfig::small());
    let registry = FunctionRegistry::standard();
    // a representative two-alias check against real corpus tables
    let claim = corpus
        .claims
        .iter()
        .find(|c| c.lookups.len() >= 2)
        .expect("small corpus has a two-lookup claim");
    let sql = format!(
        "SELECT a.{} / b.{} FROM {} a, {} b WHERE a.Index = '{}' AND b.Index = '{}'",
        claim.lookups[0].attribute,
        claim.lookups[1].attribute,
        claim.lookups[0].relation,
        claim.lookups[1].relation,
        claim.lookups[0].key,
        claim.lookups[1].key,
    );
    let stmt = parse(&sql).expect("generated SQL parses");
    let mut group = c.benchmark_group("execute_repeat");
    group.sample_size(20);
    group.bench_function("unprepared_512", |b| {
        b.iter(|| {
            let mut hits = 0usize;
            for _ in 0..512 {
                hits += scrutinizer_query::exec::execute_with_unprepared(
                    &corpus.catalog,
                    &stmt,
                    &registry,
                )
                .map(|r| r.len())
                .unwrap_or(0);
            }
            hits
        })
    });
    group.bench_function("prepare_once_512", |b| {
        b.iter(|| {
            let plan = PreparedQuery::prepare(&corpus.catalog, &stmt, &registry).expect("prepares");
            let mut hits = 0usize;
            for _ in 0..512 {
                hits += plan
                    .execute_all(&corpus.catalog)
                    .map(|r| r.len())
                    .unwrap_or(0);
            }
            hits
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_suggestion_sweep, bench_execute_repeat
}
criterion_main!(benches);
