//! Wire-protocol throughput over the real TCP server on loopback: the
//! same workload (32 raw-SQL requests) driven three ways —
//!
//! * `sequential`  — one request per round trip (the pre-v1 interaction
//!   pattern: write a line, wait for its response, repeat);
//! * `pipelined`   — all 32 lines written at once, responses matched
//!   back by their echoed `id`;
//! * `batch_op`    — one `batch` request carrying all 32 as
//!   sub-requests, one round trip total.
//!
//! Every mode must produce byte-for-byte the values the engine computes
//! in-process — parity is asserted before anything is timed — and the
//! pipelined/batch modes must beat the sequential baseline by ≥ 3×.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, Criterion};
use scrutinizer_core::{OrderingStrategy, SystemConfig};
use scrutinizer_corpus::{Corpus, CorpusConfig};
use scrutinizer_engine::engine::{Engine, EngineOptions};
use scrutinizer_engine::protocol::Json;
use scrutinizer_engine::server::{Server, ServerOptions};

const REQUESTS: usize = 32;

struct Wire {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Wire {
    fn connect(addr: SocketAddr) -> Wire {
        let stream = TcpStream::connect(addr).expect("connect to bench server");
        // a fair baseline: without NODELAY, Nagle + delayed ACK charge the
        // sequential client ~40ms per round trip and flatter the pipeline
        stream.set_nodelay(true).expect("nodelay");
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .expect("read timeout");
        let reader = BufReader::new(stream.try_clone().expect("clone stream"));
        Wire { stream, reader }
    }

    fn read_json(&mut self) -> Json {
        let mut line = String::new();
        self.reader.read_line(&mut line).expect("read response");
        Json::parse(line.trim()).expect("response is JSON")
    }
}

fn sql_line(id: usize, query: &str) -> Json {
    Json::Obj(vec![
        ("op".into(), Json::Str("sql".into())),
        ("id".into(), Json::Num(id as f64)),
        ("query".into(), Json::Str(query.to_string())),
    ])
}

/// One request per round trip: the latency-bound baseline.
fn drive_sequential(wire: &mut Wire, queries: &[String]) -> Vec<f64> {
    let mut values = vec![0.0; queries.len()];
    for (i, query) in queries.iter().enumerate() {
        writeln!(wire.stream, "{}", sql_line(i, query).render()).expect("write request");
        let response = wire.read_json();
        assert_eq!(response.get("ok").and_then(Json::as_bool), Some(true));
        values[i] = response.get("value").and_then(Json::as_f64).expect("value");
    }
    values
}

/// Every line in flight at once; responses matched by echoed id.
fn drive_pipelined(wire: &mut Wire, queries: &[String]) -> Vec<f64> {
    let mut blob = String::new();
    for (i, query) in queries.iter().enumerate() {
        blob.push_str(&sql_line(i, query).render());
        blob.push('\n');
    }
    wire.stream
        .write_all(blob.as_bytes())
        .expect("write pipeline");
    let mut values = vec![0.0; queries.len()];
    for _ in 0..queries.len() {
        let response = wire.read_json();
        assert_eq!(response.get("ok").and_then(Json::as_bool), Some(true));
        let id = response
            .get("id")
            .and_then(Json::as_usize)
            .expect("id echo");
        values[id] = response.get("value").and_then(Json::as_f64).expect("value");
    }
    values
}

/// One `batch` op carrying the whole workload: one round trip.
fn drive_batch(wire: &mut Wire, queries: &[String]) -> Vec<f64> {
    let request = Json::Obj(vec![
        ("op".into(), Json::Str("batch".into())),
        (
            "requests".into(),
            Json::Arr(
                queries
                    .iter()
                    .enumerate()
                    .map(|(i, q)| sql_line(i, q))
                    .collect(),
            ),
        ),
    ]);
    writeln!(wire.stream, "{}", request.render()).expect("write batch");
    let response = wire.read_json();
    assert_eq!(response.get("ok").and_then(Json::as_bool), Some(true));
    let results = response
        .get("results")
        .and_then(Json::as_arr)
        .expect("results");
    let mut values = vec![0.0; queries.len()];
    for item in results {
        assert_eq!(item.get("ok").and_then(Json::as_bool), Some(true));
        let id = item.get("id").and_then(Json::as_usize).expect("id echo");
        values[id] = item.get("value").and_then(Json::as_f64).expect("value");
    }
    values
}

fn median_secs(rounds: usize, mut routine: impl FnMut()) -> f64 {
    let mut samples: Vec<f64> = (0..rounds)
        .map(|_| {
            let start = Instant::now();
            routine();
            start.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    samples[samples.len() / 2]
}

fn bench_serve(c: &mut Criterion) {
    let engine = Engine::with_options(
        Corpus::generate(CorpusConfig::small()),
        SystemConfig::test(),
        EngineOptions {
            retrain_interval: None,
            ordering: OrderingStrategy::Sequential,
            ..EngineOptions::default()
        },
    );
    let queries: Vec<String> = (0..REQUESTS)
        .map(|i| {
            let lookup = &engine.corpus().claims[i].lookups[0];
            format!(
                "SELECT a.{} FROM {} a WHERE a.Index = '{}'",
                lookup.attribute, lookup.relation, lookup.key
            )
        })
        .collect();
    let expected: Vec<f64> = queries
        .iter()
        .map(|q| engine.run_sql(q).expect("lookup evaluates"))
        .collect();

    let server = Server::bind(Arc::clone(&engine), "127.0.0.1:0", ServerOptions::default())
        .expect("bind loopback");
    let addr = server.local_addr().expect("bound address");
    let handle = server.handle();
    let server_thread = std::thread::spawn(move || server.run());

    // ---- parity before timing: every mode reproduces the in-process
    // values exactly, over its own connection ----
    let mut wire = Wire::connect(addr);
    assert_eq!(drive_sequential(&mut wire, &queries), expected);
    assert_eq!(drive_pipelined(&mut wire, &queries), expected);
    assert_eq!(drive_batch(&mut wire, &queries), expected);

    let mut group = c.benchmark_group("serve");
    group.sample_size(10);
    group.bench_function("sequential_roundtrips", |b| {
        b.iter(|| drive_sequential(&mut wire, &queries).len())
    });
    group.bench_function("pipelined", |b| {
        b.iter(|| drive_pipelined(&mut wire, &queries).len())
    });
    group.bench_function("batch_op", |b| {
        b.iter(|| drive_batch(&mut wire, &queries).len())
    });
    group.finish();

    // ---- the wire-batching claim: pipelining or the batch op must beat
    // one-request-per-round-trip by ≥ 3× at equal results ----
    let rounds = 7;
    let sequential = median_secs(rounds, || {
        assert_eq!(drive_sequential(&mut wire, &queries), expected);
    });
    let pipelined = median_secs(rounds, || {
        assert_eq!(drive_pipelined(&mut wire, &queries), expected);
    });
    let batch = median_secs(rounds, || {
        assert_eq!(drive_batch(&mut wire, &queries), expected);
    });
    let best = pipelined.min(batch);
    println!(
        "serve throughput ({REQUESTS} sql requests/round): sequential {:.2}ms, \
         pipelined {:.2}ms ({:.1}x), batch op {:.2}ms ({:.1}x)",
        sequential * 1e3,
        pipelined * 1e3,
        sequential / pipelined,
        batch * 1e3,
        sequential / batch,
    );
    assert!(
        sequential / best >= 3.0,
        "wire batching must be ≥ 3x the per-round-trip baseline \
         (sequential {:.3}ms vs best {:.3}ms = {:.2}x)",
        sequential * 1e3,
        best * 1e3,
        sequential / best,
    );

    let stats = engine.stats();
    println!(
        "server saw pipeline depth {} with {} connection(s) open",
        stats.pipeline_depth, stats.connections_open
    );
    drop(wire);
    handle.shutdown();
    server_thread
        .join()
        .expect("server thread")
        .expect("clean shutdown");
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_serve
}
criterion_main!(benches);
