//! Wire-protocol throughput over the real TCP server on loopback.
//!
//! Two axes are measured on one shared port:
//!
//! * **batching** — the same 32-raw-SQL workload driven `sequential`
//!   (one request per round trip), `pipelined` (all lines in flight at
//!   once), and `batch_op` (one `batch` request). Pipelining or the
//!   batch op must beat the sequential baseline by ≥ 3×.
//! * **codec** — the same 32-suggest pipelined workload driven over
//!   JSON lines and over the `0x00`-negotiated binary framing, both
//!   over loopback TCP (end-to-end numbers) and through the production
//!   serving state machine on the in-memory transport (`service_conn` +
//!   `handle_payload`, the codec-bound measurement). On the latter the
//!   binary codec must beat JSON by ≥ 2×, and the warm binary suggest
//!   path must make **zero** per-request heap allocations (proved by
//!   the [`CountingAllocator`] global-allocator shim).
//!
//! Every mode must produce byte-for-byte the values the engine computes
//! in-process, and the two codecs must be byte-level interchangeable:
//! for the same request/id/trace, [`codec::decode_response`] on the
//! binary frame renders exactly the JSON line — parity is asserted
//! before anything is timed. `--quick` smoke-runs parity, negotiation,
//! and the allocation invariant without the timing floors.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, Criterion};
use scrutinizer_bench::{allocations, CountingAllocator};
use scrutinizer_core::{OrderingStrategy, PropertyKind, SystemConfig};
use scrutinizer_corpus::{Corpus, CorpusConfig};
use scrutinizer_engine::engine::{Engine, EngineOptions};
use scrutinizer_engine::protocol::{handle_payload, Json};
use scrutinizer_engine::server::{Server, ServerOptions};
use scrutinizer_engine::{
    codec, service_conn, wire, ConnState, Request, ServiceLimits, WireCodec, BINARY_MAGIC,
};
use scrutinizer_obs as obs;
use scrutinizer_sim::{sim_pair, SimEndpoint, SimStream};

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

const REQUESTS: usize = 32;

fn quick_mode() -> bool {
    std::env::args().any(|a| a == "--quick" || a == "--test")
}

struct Wire {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Wire {
    fn connect(addr: SocketAddr) -> Wire {
        let stream = TcpStream::connect(addr).expect("connect to bench server");
        // a fair baseline: without NODELAY, Nagle + delayed ACK charge the
        // sequential client ~40ms per round trip and flatter the pipeline
        stream.set_nodelay(true).expect("nodelay");
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .expect("read timeout");
        let reader = BufReader::new(stream.try_clone().expect("clone stream"));
        Wire { stream, reader }
    }

    fn read_raw(&mut self) -> String {
        let mut line = String::new();
        self.reader.read_line(&mut line).expect("read response");
        line.truncate(line.trim_end().len());
        line
    }

    fn read_json(&mut self) -> Json {
        Json::parse(&self.read_raw()).expect("response is JSON")
    }
}

/// A client on the binary codec: the `0x00` magic byte at connect, then
/// length-prefixed frames both ways.
struct BinWire {
    stream: TcpStream,
    /// Accumulated unread response bytes (partial trailing frame).
    recv: Vec<u8>,
    /// Reusable request-encoding buffer.
    send: Vec<u8>,
}

impl BinWire {
    fn connect(addr: SocketAddr) -> BinWire {
        let mut stream = TcpStream::connect(addr).expect("connect to bench server");
        stream.set_nodelay(true).expect("nodelay");
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .expect("read timeout");
        stream
            .write_all(&[BINARY_MAGIC])
            .expect("negotiate binary codec");
        BinWire {
            stream,
            recv: Vec::new(),
            send: Vec::new(),
        }
    }

    /// Reads exactly `n` response frames, handing each payload to `each`.
    fn read_frames(&mut self, n: usize, mut each: impl FnMut(&[u8])) {
        let mut scratch = [0u8; 16 * 1024];
        let mut seen = 0usize;
        let mut start = 0usize;
        while seen < n {
            while seen < n {
                match wire::split_frame(&self.recv[start..]) {
                    Some((payload, used)) => {
                        each(payload);
                        start += used;
                        seen += 1;
                    }
                    None => break,
                }
            }
            if seen == n {
                break;
            }
            let read = self.stream.read(&mut scratch).expect("read frames");
            assert!(read > 0, "server closed mid-pipeline");
            self.recv.extend_from_slice(&scratch[..read]);
        }
        self.recv.drain(..start);
    }
}

/// The production serving state machine over the in-memory transport:
/// the exact `service_conn` → `handle_payload` pass the TCP workers run,
/// minus kernel sockets and thread handoff — so a round measures codec,
/// framing, and dispatch cost rather than scheduler noise. This is where
/// the binary-vs-JSON floor is asserted; the loopback TCP drivers above
/// it keep the end-to-end numbers honest.
struct SimServer {
    engine: Arc<Engine>,
    conn: ConnState<SimStream>,
    client: SimEndpoint,
    limits: ServiceLimits,
    /// Reused response-encoding buffer (the worker-loop scratch).
    response: Vec<u8>,
    /// Reused request-encoding buffer (the client-side scratch).
    send: Vec<u8>,
}

impl SimServer {
    fn new(engine: &Arc<Engine>, binary: bool) -> SimServer {
        let (server, client) = sim_pair();
        let harness = SimServer {
            engine: Arc::clone(engine),
            conn: ConnState::new(server),
            client,
            limits: ServiceLimits {
                max_line_bytes: 1 << 20,
                write_buffer_limit: 1 << 20,
                max_pipeline: 128,
            },
            response: Vec::new(),
            send: Vec::new(),
        };
        if binary {
            harness.client.send(&[BINARY_MAGIC]);
        }
        harness
    }

    /// Runs the serving loop until the connection drains: each pass
    /// flushes, reads, and splits via `service_conn`, then executes the
    /// queued payloads exactly as the TCP worker does.
    fn pump(&mut self) {
        loop {
            let moved = service_conn(&mut self.conn, &self.limits, false, self.engine.stats_ref());
            let executed = !self.conn.queue.is_empty();
            while let Some(payload) = self.conn.queue.pop_front() {
                let codec = self.conn.codec.unwrap_or(WireCodec::Json);
                self.response.clear();
                handle_payload(&self.engine, codec, &payload, &mut self.response);
                self.conn.recycle(payload);
                self.conn.push_response_bytes(&self.response);
            }
            if !moved && !executed {
                break;
            }
        }
        assert!(self.conn.idle(), "pipelined round drains completely");
    }
}

/// The 32-suggest pipelined workload through the in-process serving
/// loop, on whichever codec the harness negotiated. Returns the total
/// suggestions seen; every response is verified the way a real client
/// of that codec would (full JSON parse vs envelope check).
fn drive_suggest_sim(srv: &mut SimServer, session: u64, binary: bool) -> usize {
    srv.send.clear();
    for claim in 0..REQUESTS {
        if binary {
            wire::request_frame(
                &mut srv.send,
                &Request::Suggest { session, claim },
                Some(claim as u64),
                None,
            );
        } else {
            let line = json_line(&Request::Suggest { session, claim }, claim as u64, None);
            srv.send.extend_from_slice(line.as_bytes());
            srv.send.push(b'\n');
        }
    }
    srv.client.send(&srv.send);
    srv.pump();
    let bytes = srv.client.recv();
    let mut responses = 0usize;
    let mut seen = 0usize;
    if binary {
        let mut rest = &bytes[..];
        while let Some((payload, used)) = wire::split_frame(rest) {
            let (ok, id) = response_head(payload);
            assert!(ok, "suggest succeeds");
            id.expect("id echo");
            seen += payload.len();
            responses += 1;
            rest = &rest[used..];
        }
        assert!(rest.is_empty(), "responses are whole frames");
    } else {
        for line in bytes.split(|&b| b == b'\n').filter(|l| !l.is_empty()) {
            let response =
                Json::parse(std::str::from_utf8(line).expect("UTF-8")).expect("response is JSON");
            assert_eq!(response.get("ok").and_then(Json::as_bool), Some(true));
            response
                .get("id")
                .and_then(Json::as_usize)
                .expect("id echo");
            seen += response
                .get("suggestions")
                .and_then(Json::as_arr)
                .expect("suggestions")
                .len();
            responses += 1;
        }
    }
    assert_eq!(responses, REQUESTS, "one response per pipelined request");
    seen
}

/// Reads `ok` and the echoed id straight off a binary response envelope,
/// without decoding the body — the client-side counterpart of the
/// server's zero-copy decode.
fn response_head(payload: &[u8]) -> (bool, Option<u64>) {
    assert!(payload.len() >= 2, "response envelope");
    let ok = payload[0] == 1;
    let id = (payload[1] & codec::FLAG_HAS_ID != 0)
        .then(|| u64::from_le_bytes(payload[2..10].try_into().expect("id bytes")));
    (ok, id)
}

/// The JSON-lines form of `request` with the `id`/`trace` envelope the
/// binary codec carries natively.
fn json_line(request: &Request, id: u64, trace: Option<u64>) -> String {
    let mut value = request.to_json();
    let Json::Obj(fields) = &mut value else {
        unreachable!("requests encode as objects")
    };
    fields.push(("id".to_string(), Json::Num(id as f64)));
    if let Some(trace) = trace {
        fields.push(("trace".to_string(), Json::Str(format!("{trace:016x}"))));
    }
    value.render()
}

fn sql_request(query: &str) -> Request {
    Request::Sql {
        query: query.to_string(),
    }
}

/// One request per round trip: the latency-bound baseline.
fn drive_sequential(wire: &mut Wire, queries: &[String]) -> Vec<f64> {
    let mut values = vec![0.0; queries.len()];
    for (i, query) in queries.iter().enumerate() {
        writeln!(
            wire.stream,
            "{}",
            json_line(&sql_request(query), i as u64, None)
        )
        .expect("write request");
        let response = wire.read_json();
        assert_eq!(response.get("ok").and_then(Json::as_bool), Some(true));
        values[i] = response.get("value").and_then(Json::as_f64).expect("value");
    }
    values
}

/// Every line in flight at once; responses matched by echoed id.
fn drive_pipelined(wire: &mut Wire, queries: &[String]) -> Vec<f64> {
    let mut blob = String::new();
    for (i, query) in queries.iter().enumerate() {
        blob.push_str(&json_line(&sql_request(query), i as u64, None));
        blob.push('\n');
    }
    wire.stream
        .write_all(blob.as_bytes())
        .expect("write pipeline");
    let mut values = vec![0.0; queries.len()];
    for _ in 0..queries.len() {
        let response = wire.read_json();
        assert_eq!(response.get("ok").and_then(Json::as_bool), Some(true));
        let id = response
            .get("id")
            .and_then(Json::as_usize)
            .expect("id echo");
        values[id] = response.get("value").and_then(Json::as_f64).expect("value");
    }
    values
}

/// One `batch` op carrying the whole workload: one round trip.
fn drive_batch(wire: &mut Wire, queries: &[String]) -> Vec<f64> {
    let request = Json::Obj(vec![
        ("op".into(), Json::Str("batch".into())),
        (
            "requests".into(),
            Json::Arr(
                queries
                    .iter()
                    .enumerate()
                    .map(|(i, q)| {
                        Json::parse(&json_line(&sql_request(q), i as u64, None))
                            .expect("round-trips")
                    })
                    .collect(),
            ),
        ),
    ]);
    writeln!(wire.stream, "{}", request.render()).expect("write batch");
    let response = wire.read_json();
    assert_eq!(response.get("ok").and_then(Json::as_bool), Some(true));
    let results = response
        .get("results")
        .and_then(Json::as_arr)
        .expect("results");
    let mut values = vec![0.0; queries.len()];
    for item in results {
        assert_eq!(item.get("ok").and_then(Json::as_bool), Some(true));
        let id = item.get("id").and_then(Json::as_usize).expect("id echo");
        values[id] = item.get("value").and_then(Json::as_f64).expect("value");
    }
    values
}

/// All 32 suggests in flight at once over JSON lines; every response is
/// parsed and its suggestion count folded in (the canonical JSON client
/// cannot skip the parse).
fn drive_suggest_json(wire: &mut Wire, session: u64) -> usize {
    let mut blob = String::new();
    for claim in 0..REQUESTS {
        blob.push_str(&json_line(
            &Request::Suggest { session, claim },
            claim as u64,
            None,
        ));
        blob.push('\n');
    }
    wire.stream
        .write_all(blob.as_bytes())
        .expect("write pipeline");
    let mut suggestions = 0usize;
    for _ in 0..REQUESTS {
        let response = wire.read_json();
        assert_eq!(response.get("ok").and_then(Json::as_bool), Some(true));
        response
            .get("id")
            .and_then(Json::as_usize)
            .expect("id echo");
        suggestions += response
            .get("suggestions")
            .and_then(Json::as_arr)
            .expect("suggestions")
            .len();
    }
    suggestions
}

/// The same 32 suggests over binary frames: requests encoded into one
/// reused buffer, responses checked off the envelope without a tree
/// decode — the framing makes the cheap read legitimate (byte-level
/// parity with the JSON responses is asserted before timing).
fn drive_suggest_binary(wire: &mut BinWire, session: u64) -> usize {
    wire.send.clear();
    for claim in 0..REQUESTS {
        wire::request_frame(
            &mut wire.send,
            &Request::Suggest { session, claim },
            Some(claim as u64),
            None,
        );
    }
    wire.stream.write_all(&wire.send).expect("write pipeline");
    let mut bytes = 0usize;
    wire.read_frames(REQUESTS, |payload| {
        let (ok, id) = response_head(payload);
        assert!(ok, "suggest succeeds");
        id.expect("id echo");
        bytes += payload.len();
    });
    bytes
}

/// Byte-level codec parity: the same request with the same `id` and
/// `trace` over both codecs must yield responses that render to exactly
/// the same JSON text.
fn assert_codec_parity(json: &mut Wire, bin: &mut BinWire, request: &Request, id: u64, trace: u64) {
    writeln!(json.stream, "{}", json_line(request, id, Some(trace))).expect("write JSON request");
    let json_response = json.read_raw();

    bin.send.clear();
    wire::request_frame(&mut bin.send, request, Some(id), Some(trace));
    bin.stream
        .write_all(&bin.send)
        .expect("write binary request");
    let mut binary_rendered = String::new();
    bin.read_frames(1, |payload| {
        binary_rendered = codec::decode_response(payload)
            .expect("binary response decodes")
            .render();
    });
    assert_eq!(
        binary_rendered, json_response,
        "codecs must agree byte-for-byte on {request:?}"
    );
}

/// The zero-allocation invariant: after warmup, one in-process binary
/// suggest (decode → dispatch → cache-hit `Arc` clone → encode into the
/// reused write buffer) performs no heap allocation at all. Tracing is
/// disabled for the measurement, as a tuned serving deployment would run.
fn assert_zero_alloc_suggest(engine: &Arc<Engine>, session: u64) {
    let mut frame = Vec::new();
    wire::request_frame(
        &mut frame,
        &Request::Suggest { session, claim: 0 },
        Some(7),
        Some(0x5EED),
    );
    let payload = wire::split_frame(&frame).expect("complete frame").0;
    let mut out = Vec::new();
    obs::set_tracing(false);
    for _ in 0..64 {
        out.clear();
        wire::handle_frame(engine, payload, &mut out);
        let (ok, id) = response_head(wire::split_frame(&out).expect("response frame").0);
        assert!(ok && id == Some(7), "warmup suggest succeeds");
    }
    let rounds = 1024u64;
    let before = allocations();
    for _ in 0..rounds {
        out.clear();
        wire::handle_frame(engine, payload, &mut out);
    }
    let allocated = allocations() - before;
    obs::set_tracing(true);
    println!(
        "binary suggest hot path: {allocated} heap allocations over {rounds} warm requests \
         ({} response bytes each)",
        out.len(),
    );
    assert_eq!(
        allocated, 0,
        "the warm binary suggest path must not touch the heap \
         ({allocated} allocations over {rounds} requests)"
    );
}

fn median_secs(rounds: usize, mut routine: impl FnMut()) -> f64 {
    let mut samples: Vec<f64> = (0..rounds)
        .map(|_| {
            let start = Instant::now();
            routine();
            start.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    samples[samples.len() / 2]
}

fn bench_serve(c: &mut Criterion) {
    let engine = Engine::with_options(
        Corpus::generate(CorpusConfig::small()),
        SystemConfig::test(),
        EngineOptions {
            retrain_interval: None,
            ordering: OrderingStrategy::Sequential,
            ..EngineOptions::default()
        },
    );
    let queries: Vec<String> = (0..REQUESTS)
        .map(|i| {
            let lookup = &engine.corpus().claims[i].lookups[0];
            format!(
                "SELECT a.{} FROM {} a WHERE a.Index = '{}'",
                lookup.attribute, lookup.relation, lookup.key
            )
        })
        .collect();
    let expected: Vec<f64> = queries
        .iter()
        .map(|q| engine.run_sql(q).expect("lookup evaluates"))
        .collect();

    // the suggest workload: one session with the first 32 corpus claims
    // submitted and their property screens answered with ground truth, so
    // every suggest returns a real ranked candidate list; the engine's
    // per-claim cache then makes the repeated rounds codec-bound rather
    // than scoring-bound.
    let session = engine.open_session("serve-bench");
    engine
        .submit_report(session, &(0..REQUESTS).collect::<Vec<_>>())
        .expect("submit bench claims");
    for claim_id in 0..REQUESTS {
        let claim = &engine.corpus().claims[claim_id];
        let screens = engine.screens(session, claim_id).expect("screens").screens;
        for screen in screens {
            let truth = match screen.kind {
                PropertyKind::Relation => claim.relation.clone(),
                PropertyKind::Key => claim.key.clone(),
                PropertyKind::Attribute => claim.attributes[0].clone(),
                PropertyKind::Formula => unreachable!("formula has no screen"),
            };
            engine
                .post_answer(session, claim_id, screen.kind, &truth)
                .expect("answer screen");
        }
        let ranked = engine.suggest(session, claim_id).expect("suggest");
        assert!(!ranked.is_empty(), "claim {claim_id} yields suggestions");
    }

    // ---- the allocation invariant, measured in-process before the
    // server's worker threads add unrelated heap traffic ----
    assert_zero_alloc_suggest(&engine, session.0);

    let server = Server::bind(Arc::clone(&engine), "127.0.0.1:0", ServerOptions::default())
        .expect("bind loopback");
    let addr = server.local_addr().expect("bound address");
    let handle = server.handle();
    let server_thread = std::thread::spawn(move || server.run());

    // ---- parity before timing: every mode reproduces the in-process
    // values exactly, over its own connection ----
    let mut wire = Wire::connect(addr);
    assert_eq!(drive_sequential(&mut wire, &queries), expected);
    assert_eq!(drive_pipelined(&mut wire, &queries), expected);
    assert_eq!(drive_batch(&mut wire, &queries), expected);

    // ---- codec parity before timing: for identical id/trace envelopes
    // the binary response renders byte-for-byte as the JSON line, on
    // every workload shape ----
    let mut bin = BinWire::connect(addr);
    for (i, query) in queries.iter().enumerate() {
        assert_codec_parity(
            &mut wire,
            &mut bin,
            &sql_request(query),
            i as u64,
            0x1000 + i as u64,
        );
    }
    for claim in 0..REQUESTS {
        assert_codec_parity(
            &mut wire,
            &mut bin,
            &Request::Suggest {
                session: session.0,
                claim,
            },
            claim as u64,
            0x2000 + claim as u64,
        );
    }

    let mut group = c.benchmark_group("serve");
    group.sample_size(10);
    group.bench_function("sequential_roundtrips", |b| {
        b.iter(|| drive_sequential(&mut wire, &queries).len())
    });
    group.bench_function("pipelined", |b| {
        b.iter(|| drive_pipelined(&mut wire, &queries).len())
    });
    group.bench_function("batch_op", |b| {
        b.iter(|| drive_batch(&mut wire, &queries).len())
    });
    group.bench_function("suggest_json", |b| {
        b.iter(|| drive_suggest_json(&mut wire, session.0))
    });
    group.bench_function("suggest_binary", |b| {
        b.iter(|| drive_suggest_binary(&mut bin, session.0))
    });
    group.finish();

    let rounds = if quick_mode() { 1 } else { 7 };

    // ---- the wire-batching claim: pipelining or the batch op must beat
    // one-request-per-round-trip by ≥ 3× at equal results ----
    let sequential = median_secs(rounds, || {
        assert_eq!(drive_sequential(&mut wire, &queries), expected);
    });
    let pipelined = median_secs(rounds, || {
        assert_eq!(drive_pipelined(&mut wire, &queries), expected);
    });
    let batch = median_secs(rounds, || {
        assert_eq!(drive_batch(&mut wire, &queries), expected);
    });
    let best = pipelined.min(batch);
    println!(
        "serve throughput ({REQUESTS} sql requests/round): sequential {:.2}ms, \
         pipelined {:.2}ms ({:.1}x), batch op {:.2}ms ({:.1}x)",
        sequential * 1e3,
        pipelined * 1e3,
        sequential / pipelined,
        batch * 1e3,
        sequential / batch,
    );
    if !quick_mode() {
        assert!(
            sequential / best >= 3.0,
            "wire batching must be ≥ 3x the per-round-trip baseline \
             (sequential {:.3}ms vs best {:.3}ms = {:.2}x)",
            sequential * 1e3,
            best * 1e3,
            sequential / best,
        );
    }

    // ---- the end-to-end codec numbers over loopback TCP (informational:
    // kernel sockets and worker handoff dominate both codecs there) ----
    let suggest_json = median_secs(rounds, || {
        drive_suggest_json(&mut wire, session.0);
    });
    let suggest_binary = median_secs(rounds, || {
        drive_suggest_binary(&mut bin, session.0);
    });
    println!(
        "suggest codecs over TCP ({REQUESTS} pipelined suggests/round): json {:.2}ms, \
         binary {:.2}ms ({:.1}x)",
        suggest_json * 1e3,
        suggest_binary * 1e3,
        suggest_json / suggest_binary,
    );

    // ---- the codec claim: through the production serving state machine
    // (in-memory transport, so the measurement is codec + framing +
    // dispatch, not scheduler noise) the binary codec must beat JSON
    // lines by ≥ 2× on the pipelined suggest workload ----
    let mut sim_json = SimServer::new(&engine, false);
    let mut sim_binary = SimServer::new(&engine, true);
    assert!(drive_suggest_sim(&mut sim_json, session.0, false) > 0);
    assert!(drive_suggest_sim(&mut sim_binary, session.0, true) > 0);
    let sim_rounds = if quick_mode() { 3 } else { 101 };
    let codec_json = median_secs(sim_rounds, || {
        drive_suggest_sim(&mut sim_json, session.0, false);
    });
    let codec_binary = median_secs(sim_rounds, || {
        drive_suggest_sim(&mut sim_binary, session.0, true);
    });
    println!(
        "suggest codecs in-process ({REQUESTS} pipelined suggests/round): json {:.0}µs, \
         binary {:.0}µs ({:.1}x)",
        codec_json * 1e6,
        codec_binary * 1e6,
        codec_json / codec_binary,
    );
    if !quick_mode() {
        assert!(
            codec_json / codec_binary >= 2.0,
            "the binary codec must be ≥ 2x JSON lines on the pipelined suggest \
             workload (json {:.1}µs vs binary {:.1}µs = {:.2}x)",
            codec_json * 1e6,
            codec_binary * 1e6,
            codec_json / codec_binary,
        );
    }

    let stats = engine.stats();
    println!(
        "server saw pipeline depth {} with {} connection(s) open; codec split {:?}",
        stats.pipeline_depth, stats.connections_open, stats.requests_by_codec
    );
    drop(wire);
    drop(bin);
    handle.shutdown();
    server_thread
        .join()
        .expect("server thread")
        .expect("clean shutdown");
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_serve
}
criterion_main!(benches);
