//! Engine benchmarks: what the query-result cache and the executor buy.
//!
//! `suggestion_pipeline/*` isolates Algorithm 2 — the same claim context
//! generated cold (cache cleared every iteration) vs. warm (cache kept) —
//! and `verify_throughput/*` measures end-to-end batch verification,
//! sequential vs. pooled and cold vs. warm.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};
use scrutinizer_core::{OrderingStrategy, SystemConfig};
use scrutinizer_corpus::{Corpus, CorpusConfig};
use scrutinizer_crowd::{Worker, WorkerConfig};
use scrutinizer_engine::engine::{Engine, EngineOptions};

fn engine() -> Arc<Engine> {
    let corpus = Corpus::generate(CorpusConfig::small());
    let engine = Engine::with_options(
        corpus,
        SystemConfig::test(),
        EngineOptions {
            retrain_interval: None,
            ordering: OrderingStrategy::Sequential,
            ..EngineOptions::default()
        },
    );
    engine.pretrain(None);
    engine
}

/// Drives `suggest` for a fixed slice of claims through fresh sessions.
fn suggest_all(engine: &Arc<Engine>, claims: &[usize]) -> usize {
    let session = engine.open_session("bench");
    let mut produced = 0;
    for &claim_id in claims {
        engine.submit_report(session, &[claim_id]).expect("submit");
        produced += engine.suggest(session, claim_id).expect("suggest").len();
    }
    engine.close_session(session).expect("close");
    produced
}

fn bench_suggestion_pipeline(c: &mut Criterion) {
    let engine = engine();
    let claims: Vec<usize> = (0..12).collect();
    let mut group = c.benchmark_group("suggestion_pipeline");
    group.sample_size(10);
    group.bench_function("cold_cache", |b| {
        b.iter(|| {
            engine.clear_cache();
            suggest_all(&engine, &claims)
        })
    });
    // warm the cache once, then measure steady-state
    suggest_all(&engine, &claims);
    group.bench_function("warm_cache", |b| b.iter(|| suggest_all(&engine, &claims)));
    group.finish();
}

fn bench_verify_throughput(c: &mut Criterion) {
    let engine = engine();
    let claims: Vec<usize> = (0..24).collect();
    let base = WorkerConfig {
        accuracy: 1.0,
        skip_probability: 0.0,
        seed: 3,
        ..Default::default()
    };
    let mut group = c.benchmark_group("verify_throughput");
    group.sample_size(10);
    group.bench_function("sequential_cold", |b| {
        b.iter(|| {
            engine.clear_cache();
            claims
                .iter()
                .map(|&id| {
                    let mut worker = Worker::new(
                        "seq",
                        WorkerConfig {
                            seed: base.seed ^ id as u64,
                            ..base
                        },
                    );
                    engine.verify_claim_with(id, &mut worker).crowd_seconds
                })
                .sum::<f64>()
        })
    });
    group.bench_function("pooled_cold", |b| {
        b.iter(|| {
            engine.clear_cache();
            engine
                .verify_batch(&claims, base)
                .expect("valid claims")
                .len()
        })
    });
    engine.verify_batch(&claims, base).expect("valid claims"); // warm
    group.bench_function("pooled_warm", |b| {
        b.iter(|| {
            engine
                .verify_batch(&claims, base)
                .expect("valid claims")
                .len()
        })
    });
    group.finish();
    let stats = engine.stats();
    println!(
        "engine cache: {} hits / {} misses (rate {:.3}), {} entries",
        stats.cache_hits, stats.cache_misses, stats.cache_hit_rate, stats.cache_entries
    );
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_suggestion_pipeline, bench_verify_throughput
}
criterion_main!(benches);
