//! Shared helpers for the Scrutinizer bench harness.
//!
//! The interesting code lives in `benches/` (criterion benchmarks:
//! `engine`, `prepared`, `planner`, `planning`, `latency`, `substrates`)
//! and `src/bin/` (paper-reproduction binaries). This library crate exists
//! so they share a package; it exports nothing.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
