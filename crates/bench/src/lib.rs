//! Shared helpers for the Scrutinizer bench harness.
//!
//! The interesting code lives in `benches/` (criterion benchmarks:
//! `engine`, `prepared`, `planner`, `planning`, `latency`, `substrates`)
//! and `src/bin/` (paper-reproduction binaries). This library crate
//! additionally provides [`CountingAllocator`], the global-allocator shim
//! the `serve` bench installs to prove the binary suggest hot path makes
//! zero per-request heap allocations after warmup.

#![deny(unsafe_op_in_unsafe_fn)]
#![warn(missing_docs)]

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// Allocation calls observed process-wide since startup (relaxed; the
/// counter is a measurement aid, not a synchronization point).
static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

/// A [`GlobalAlloc`] that forwards to [`System`] and counts every
/// allocation call (`alloc`, `alloc_zeroed`, and growing/moving
/// `realloc`s). Install it with
///
/// ```ignore
/// #[global_allocator]
/// static ALLOC: scrutinizer_bench::CountingAllocator = scrutinizer_bench::CountingAllocator;
/// ```
///
/// and read the counter with [`allocations`]. Deallocations are not
/// counted: the benches assert on *new* heap traffic per request, and a
/// free without a matching alloc can't occur on a steady-state path.
pub struct CountingAllocator;

/// Total allocation calls since process start. Subtract two readings
/// around a region to count its allocations; on a zero-alloc hot path the
/// difference is exactly 0.
pub fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

// SAFETY: defers every contract-relevant operation to `System`, which
// upholds the `GlobalAlloc` contract; the counter bump has no effect on
// allocation behavior.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: caller upholds `GlobalAlloc::alloc`'s contract.
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: caller upholds `GlobalAlloc::dealloc`'s contract.
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: caller upholds `GlobalAlloc::alloc_zeroed`'s contract.
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: caller upholds `GlobalAlloc::realloc`'s contract.
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}
