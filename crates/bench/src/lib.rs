//! Shared helpers for the Scrutinizer bench harness (see `benches/` and `src/bin/repro.rs`).
