//! Regenerates every table and figure of the paper's evaluation (§6).
//!
//! ```text
//! repro table1|fig5|fig6|table2|fig7|fig8|fig9|fig10|table3|all [--scale small|medium|paper]
//! ```
//!
//! Prints the same rows/series the paper reports, side by side with the
//! paper's published numbers where available. Absolute values differ (our
//! substrate is a simulator over a synthetic corpus; see DESIGN.md §3) —
//! the shape is what must hold.

use scrutinizer_core::sim::report::{run_report_simulation, ReportSimulation};
use scrutinizer_core::sim::topk::run_topk;
use scrutinizer_core::sim::user_study::{run_user_study, StudyConfig};
use scrutinizer_core::SystemConfig;
use scrutinizer_corpus::distributions::{percentiles, TABLE1_POINTS};
use scrutinizer_corpus::{ClaimKind, Corpus, CorpusConfig};
use scrutinizer_data::hash::FxHashMap;
use std::env;

fn corpus_config(scale: &str) -> CorpusConfig {
    match scale {
        "small" => CorpusConfig::small(),
        "medium" => CorpusConfig {
            n_claims: 400,
            n_sentences: 2000,
            n_relations: 300,
            n_keys: 200,
            n_attributes: 60,
            n_formulas: 100,
            n_sections: 16,
            ..CorpusConfig::paper_scale()
        },
        _ => CorpusConfig::paper_scale(),
    }
}

fn main() {
    let args: Vec<String> = env::args().skip(1).collect();
    let what = args.first().map(String::as_str).unwrap_or("all");
    let scale = args
        .iter()
        .position(|a| a == "--scale")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
        .unwrap_or(if matches!(what, "table2" | "fig7" | "fig8" | "fig9") {
            "medium"
        } else {
            "paper"
        })
        .to_string();

    match what {
        "table1" => table1(&scale),
        "fig5" => fig5(&scale),
        "fig6" => fig6(&scale),
        "table2" => {
            let sim = simulate(&scale);
            table2(&sim);
        }
        "fig7" => {
            let sim = simulate(&scale);
            fig7(&sim);
        }
        "fig8" => {
            let sim = simulate(&scale);
            fig8(&sim);
        }
        "fig9" => {
            let sim = simulate(&scale);
            fig9(&sim);
        }
        "fig10" => fig10(&scale),
        "table3" => table3(),
        "all" => {
            table1(&scale);
            fig5(&scale);
            fig6(&scale);
            let sim = simulate(if scale == "paper" { "paper" } else { "medium" });
            table2(&sim);
            fig7(&sim);
            fig8(&sim);
            fig9(&sim);
            fig10(&scale);
            table3();
        }
        other => {
            eprintln!("unknown target `{other}`");
            eprintln!("usage: repro table1|fig5|fig6|table2|fig7|fig8|fig9|fig10|table3|all [--scale small|medium|paper]");
            std::process::exit(2);
        }
    }
}

fn header(title: &str) {
    println!("\n==================================================================");
    println!("{title}");
    println!("==================================================================");
}

/// Table 1: percentiles of property value frequencies.
fn table1(scale: &str) {
    header(&format!(
        "Table 1 — Percentiles of property value frequencies ({scale} scale)"
    ));
    let corpus = Corpus::generate(corpus_config(scale));
    let mut rel: FxHashMap<&str, usize> = FxHashMap::default();
    let mut key: FxHashMap<&str, usize> = FxHashMap::default();
    let mut attr: FxHashMap<&str, usize> = FxHashMap::default();
    let mut form: FxHashMap<&str, usize> = FxHashMap::default();
    for c in &corpus.claims {
        *rel.entry(c.relation.as_str()).or_default() += 1;
        *key.entry(c.key.as_str()).or_default() += 1;
        for a in &c.attributes {
            *attr.entry(a.as_str()).or_default() += 1;
        }
        *form.entry(c.formula_text.as_str()).or_default() += 1;
    }
    println!(
        "corpus: {} claims ({} explicit), {} relations, {} keys, {} attributes, {} formulas",
        corpus.claims.len(),
        corpus
            .claims
            .iter()
            .filter(|c| c.kind == ClaimKind::Explicit)
            .count(),
        corpus.catalog.len(),
        corpus.catalog.all_keys().len(),
        corpus.catalog.all_attributes().len(),
        corpus.formulas.len()
    );
    println!(
        "\n{:<14}{:>6}{:>6}{:>6}{:>8}{:>8}",
        "Percentiles", "10%", "25%", "50%", "95%", "99%"
    );
    let paper: [(&str, [usize; 5]); 4] = [
        ("Relation", [2, 4, 10, 199, 532]),
        ("Primary Key", [2, 2, 4, 39, 107]),
        ("Attribute", [1, 2, 7, 127, 1400]),
        ("Formula", [1, 1, 1, 8, 55]),
    ];
    let maps: [&FxHashMap<&str, usize>; 4] = [&rel, &key, &attr, &form];
    for ((name, published), map) in paper.iter().zip(maps) {
        let freqs: Vec<usize> = map.values().copied().collect();
        let p = percentiles(&freqs, &TABLE1_POINTS);
        println!(
            "{:<14}{:>6}{:>6}{:>6}{:>8}{:>8}   (measured, {} distinct values)",
            name,
            p[0],
            p[1],
            p[2],
            p[3],
            p[4],
            map.len()
        );
        println!(
            "{:<14}{:>6}{:>6}{:>6}{:>8}{:>8}   (paper)",
            "", published[0], published[1], published[2], published[3], published[4]
        );
    }
    println!("\nshape check: heavy Zipf tail on every property; attributes most reused,");
    println!("formulas most concentrated at low counts — matches the paper's profile.");
}

fn study_corpus(scale: &str) -> Corpus {
    // user study: 25% injected errors (§6.1)
    let mut cfg = corpus_config(scale);
    cfg.error_rate = 0.25;
    if cfg.n_claims < 200 {
        cfg.n_claims = 200;
    }
    Corpus::generate(cfg)
}

/// Figure 5: claims verified in 20 minutes per checker.
fn fig5(scale: &str) {
    header("Figure 5 — Claims verified in 20 minutes per checker");
    let corpus = study_corpus(scale);
    let study = run_user_study(&corpus, SystemConfig::default(), StudyConfig::default());
    println!(
        "{:<6}{:>9}{:>11}{:>9}{:>8}",
        "", "Correct", "Incorrect", "Skipped", "Total"
    );
    let mut manual_total = 0.0;
    let mut system_total = 0.0;
    for c in &study.checkers {
        let total = c.correct + c.incorrect;
        println!(
            "{:<6}{:>9}{:>11}{:>9}{:>8}",
            c.name, c.correct, c.incorrect, c.skipped, total
        );
        if c.name.starts_with('M') {
            manual_total += total as f64 / 3.0;
        } else {
            system_total += total as f64 / 4.0;
        }
    }
    println!("\nmean claims / 20 min — Manual: {manual_total:.1}   System: {system_total:.1}");
    println!(
        "paper:                 Manual: 7      System: 23  (speedup ≈ 3.3×; ours {:.1}×)",
        system_total / manual_total.max(1e-9)
    );
}

/// Figure 6: verification time vs claim complexity.
fn fig6(scale: &str) {
    header("Figure 6 — Mean verification time (s) by claim complexity");
    let corpus = study_corpus(scale);
    let study = run_user_study(&corpus, SystemConfig::default(), StudyConfig::default());
    println!(
        "{:>11} | {:>16} | {:>16}",
        "complexity", "Manual mean±std", "System mean±std"
    );
    println!("{}", "-".repeat(52));
    let mut all: Vec<usize> = study
        .manual_by_complexity
        .iter()
        .map(|(c, ..)| *c)
        .chain(study.system_by_complexity.iter().map(|(c, ..)| *c))
        .collect();
    all.sort_unstable();
    all.dedup();
    for c in all {
        let m = study.manual_by_complexity.iter().find(|(k, ..)| *k == c);
        let s = study.system_by_complexity.iter().find(|(k, ..)| *k == c);
        let fmt = |x: Option<&(usize, f64, f64, usize)>| match x {
            Some((_, mean, std, _)) => format!("{mean:7.1} ± {std:5.1}"),
            None => "      —       ".to_string(),
        };
        println!("{c:>11} | {:>16} | {:>16}", fmt(m), fmt(s));
    }
    println!("\npaper shape: System under half of Manual at equal complexity; System at");
    println!("complexity 11 cheaper than Manual at 6.");
}

fn simulate(scale: &str) -> ReportSimulation {
    eprintln!("[simulating {scale}-scale report verification: Manual, Sequential, Scrutinizer…]");
    let corpus = Corpus::generate(corpus_config(scale));
    run_report_simulation(&corpus, SystemConfig::default())
}

/// Table 2: summary of simulation results.
fn table2(sim: &ReportSimulation) {
    header("Table 2 — Summary of simulation results");
    println!(
        "{:<16}{:>10}{:>12}{:>14}{:>14}{:>12}",
        "", "Weeks", "% Savings", "Avg Accuracy", "Max Accuracy", "Comp (min)"
    );
    for (i, run) in sim.runs.iter().enumerate() {
        println!(
            "{:<16}{:>10.2}{:>11.0}%{:>13.0}%{:>13.0}%{:>12.1}",
            run.name,
            run.weeks,
            100.0 * sim.savings_vs_manual(i),
            100.0 * run.avg_accuracy,
            100.0 * run.max_accuracy,
            run.computation_minutes
        );
    }
    println!("\npaper:           Weeks   %Sav   AvgAcc  MaxAcc  Comp");
    println!("  Manual          4.1      -       -       -      -");
    println!("  Sequential      2.1     49%     40%     46%    14");
    println!("  Scrutinizer     1.7     59%     47%     53%    28");
}

/// Figure 7: accumulated verification time.
fn fig7(sim: &ReportSimulation) {
    header("Figure 7 — Accumulated verification time (weeks) over verified claims");
    println!(
        "{:>9} | {:>9} | {:>11} | {:>12}",
        "#claims", "Manual", "Sequential", "Scrutinizer"
    );
    println!("{}", "-".repeat(50));
    let n = sim.runs[0].time_trace.len();
    let steps = 10usize.max(n / 10);
    let mut i = steps - 1;
    while i < n {
        let row: Vec<f64> = sim
            .runs
            .iter()
            .map(|r| {
                sim.calendar
                    .weeks(*r.time_trace.get(i).unwrap_or(&f64::NAN))
            })
            .collect();
        println!(
            "{:>9} | {:>9.2} | {:>11.2} | {:>12.2}",
            i + 1,
            row[0],
            row[1],
            row[2]
        );
        i += steps;
    }
    println!("\npaper shape: all three grow ~linearly; Scrutinizer flattest, Manual steepest,");
    println!("Scrutinizer and Sequential near-equivalent at the start, diverging later.");
}

/// Figure 8: average classifier accuracy evolution.
fn fig8(sim: &ReportSimulation) {
    header("Figure 8 — Average classifier accuracy over verified claims");
    println!(
        "{:>9} | {:>11} | {:>11}",
        "#claims", "Scrutinizer", "Sequential"
    );
    println!("{}", "-".repeat(38));
    let scrut = &sim.runs[2].accuracy_trace;
    let seq = &sim.runs[1].accuracy_trace;
    for (i, (n, acc)) in scrut.iter().enumerate() {
        let avg = acc.iter().sum::<f64>() / 4.0;
        let seq_avg = seq
            .get(i)
            .map(|(_, a)| a.iter().sum::<f64>() / 4.0)
            .unwrap_or(f64::NAN);
        println!(
            "{n:>9} | {:>10.1}% | {:>10.1}%",
            100.0 * avg,
            100.0 * seq_avg
        );
    }
    println!("\npaper shape: Scrutinizer dominates over most of the period (upfront");
    println!("uncertainty sampling), may dip at the very start and the very end.");
}

/// Figure 9: per-classifier accuracy evolution (Scrutinizer ordering).
fn fig9(sim: &ReportSimulation) {
    header("Figure 9 — Per-classifier accuracy over verified claims (Scrutinizer)");
    println!(
        "{:>9} | {:>9} | {:>9} | {:>9} | {:>9}",
        "#claims", "Relation", "RowIndex", "Attrib", "Formula"
    );
    println!("{}", "-".repeat(58));
    for (n, acc) in &sim.runs[2].accuracy_trace {
        println!(
            "{n:>9} | {:>8.1}% | {:>8.1}% | {:>8.1}% | {:>8.1}%",
            100.0 * acc[0],
            100.0 * acc[1],
            100.0 * acc[2],
            100.0 * acc[3]
        );
    }
    println!("\npaper shape: attributes easiest, row index hardest (largest label space,");
    println!("similar row structure across subsets); all rise then plateau/dip at the end.");
}

/// Figure 10: top-k accuracy per classifier.
fn fig10(scale: &str) {
    header(&format!(
        "Figure 10 — Top-k accuracy per classifier ({scale} scale)"
    ));
    let corpus = Corpus::generate(corpus_config(scale));
    let ks = [1usize, 5, 10, 15];
    let result = run_topk(&corpus, SystemConfig::default(), &ks, 99);
    println!(
        "{:>4} | {:>8} | {:>9} | {:>9} | {:>8} | {:>8}",
        "k", "Average", "Attribute", "Relations", "RowIdx", "Formula"
    );
    println!("{}", "-".repeat(62));
    for (i, k) in result.ks.iter().enumerate() {
        let row = result.per_classifier[i];
        println!(
            "{k:>4} | {:>7.1}% | {:>8.1}% | {:>8.1}% | {:>7.1}% | {:>7.1}%",
            100.0 * result.average[i],
            100.0 * row[2],
            100.0 * row[0],
            100.0 * row[1],
            100.0 * row[3]
        );
    }
    println!("\npaper shape: monotone in k, most of the potential reached by k = 10;");
    println!("attribute classifier strongest, row index weakest at k = 1.");
}

/// Table 3: qualitative system comparison (static properties).
fn table3() {
    header("Table 3 — Properties of the systems (qualitative, reprinted)");
    let rows = [
        ("Task", "check", "check", "check", "search"),
        ("", "n claims", "1 claim", "1 claim", "1 claim"),
        ("Claims", "general", "explicit", "explicit", "explicit"),
        (
            "Query",
            "SPA + 100s ops",
            "SPA + 9 ops",
            "SPA + 6 ops",
            "SP",
        ),
        ("User", "crowd", "single", "single", "single"),
        ("Dataset", "corpus", "single", "single", "corpus"),
    ];
    println!(
        "{:<10}{:>16}{:>16}{:>12}{:>14}",
        "", "Scrutinizer", "AggChecker[18]", "BriQ[16]", "StatSearch[4]"
    );
    for (label, a, b, c, d) in rows {
        println!("{label:<10}{a:>16}{b:>16}{c:>12}{d:>14}");
    }
    println!("\n(this row set is definitional — nothing to measure; our implementation");
    println!("realizes the Scrutinizer column: general claims, crowd, corpus, learned ops)");
}
