//! End-to-end ablations of the design choices DESIGN.md calls out.
//!
//! ```text
//! cargo run --release -p scrutinizer-bench --bin ablations
//! ```
//!
//! 1. **Ordering strategy**: ILP (Definition 9) vs utility-density greedy vs
//!    document order, on the same corpus and crowd.
//! 2. **Screen skipping**: §5.1's confident-translation shortcut on vs off.
//! 3. **Answer-option count**: 5 vs 10 vs 20 options per screen (Corollary 1
//!    bounds the sweet spot).
//! 4. **Feature blocks**: embeddings+TF-IDF vs TF-IDF-only classifier
//!    accuracy (Figure 4's design).

use scrutinizer_core::sim::topk::run_topk;
use scrutinizer_core::{OrderingStrategy, SystemConfig, Verifier};
use scrutinizer_corpus::{Corpus, CorpusConfig};
use scrutinizer_crowd::{Panel, WorkerConfig};

fn corpus() -> Corpus {
    let mut cfg = CorpusConfig::small();
    cfg.n_claims = 200;
    Corpus::generate(cfg)
}

fn run(corpus: &Corpus, config: SystemConfig, strategy: OrderingStrategy) -> (f64, f64, f64) {
    let mut verifier = Verifier::new(corpus, config);
    let mut panel = Panel::new(3, WorkerConfig::default(), 31);
    let report = verifier.run(corpus, &mut panel, strategy);
    (
        report.total_crowd_seconds / 3600.0,
        report.max_classifier_accuracy(),
        report.verdict_accuracy(),
    )
}

fn main() {
    let corpus = corpus();
    println!(
        "corpus: {} claims, {} sections\n",
        corpus.claims.len(),
        corpus.document.sections.len()
    );

    println!("── ablation 1: ordering strategy ──────────────────────────────");
    println!(
        "{:<12}{:>12}{:>14}{:>16}",
        "strategy", "crowd (h)", "max cls acc", "verdict acc"
    );
    for strategy in [
        OrderingStrategy::Ilp,
        OrderingStrategy::Greedy,
        OrderingStrategy::Sequential,
    ] {
        let (hours, max_acc, verdict) = run(&corpus, SystemConfig::default(), strategy);
        println!(
            "{:<12}{:>12.2}{:>13.0}%{:>15.1}%",
            format!("{strategy:?}"),
            hours,
            100.0 * max_acc,
            100.0 * verdict
        );
    }

    println!("\n── ablation 2: screen skipping at high confidence ─────────────");
    println!("{:<12}{:>12}{:>16}", "skip", "crowd (h)", "verdict acc");
    for (label, threshold) in [("on (0.85)", 0.85f32), ("off (>1)", 2.0)] {
        let config = SystemConfig {
            screen_skip_confidence: threshold,
            ..Default::default()
        };
        let (hours, _, verdict) = run(&corpus, config, OrderingStrategy::Ilp);
        println!("{:<12}{:>12.2}{:>15.1}%", label, hours, 100.0 * verdict);
    }

    println!("\n── ablation 3: answer options per screen (Corollary 1) ────────");
    println!("{:<12}{:>12}{:>16}", "options", "crowd (h)", "verdict acc");
    for nop in [5usize, 10, 20] {
        let config = SystemConfig {
            options_per_screen: nop,
            ..Default::default()
        };
        let (hours, _, verdict) = run(&corpus, config, OrderingStrategy::Ilp);
        println!("{:<12}{:>12.2}{:>15.1}%", nop, hours, 100.0 * verdict);
    }

    println!("\n── ablation 4: feature blocks (top-5 accuracy, holdout) ───────");
    // full features vs a degenerate embedding (dim stays, but min_df so high
    // the TF-IDF blocks vanish — isolating the embedding contribution)
    let full = run_topk(&corpus, SystemConfig::default(), &[1, 5], 7);
    let mut tfidf_starved = SystemConfig::default();
    tfidf_starved.featurizer.word_min_df = usize::MAX;
    tfidf_starved.featurizer.char_min_df = usize::MAX;
    let embed_only = run_topk(&corpus, tfidf_starved, &[1, 5], 7);
    println!("{:<22}{:>10}{:>10}", "features", "top-1", "top-5");
    println!(
        "{:<22}{:>9.1}%{:>9.1}%",
        "embedding + TF-IDF",
        100.0 * full.average[0],
        100.0 * full.average[1]
    );
    println!(
        "{:<22}{:>9.1}%{:>9.1}%",
        "embedding only",
        100.0 * embed_only.average[0],
        100.0 * embed_only.average[1]
    );
    println!("\n(the n-gram blocks carry most of the signal; embeddings add");
    println!("generalization across paraphrases — consistent with Figure 4's design)");
}
