//! Background-task spawning as an injected capability.
//!
//! The engine's trainer does not own a thread when it runs under
//! simulation. Instead, work it would have handed to its thread pool
//! goes through a [`Spawner`]: production spawners execute on real
//! threads (the engine adapts its own pool), while the simulated
//! [`SimScheduler`] just queues the closure and lets the *harness*
//! decide when — and whether — it runs, via
//! [`drive_one`](Spawner::drive_one). That turns "the trainer raced the
//! shutdown" from a once-in-a-thousand-runs flake into an explicitly
//! schedulable interleaving.

use std::collections::VecDeque;
use std::sync::Mutex;

/// A unit of background work.
pub type Task = Box<dyn FnOnce() + Send + 'static>;

/// Where background work goes.
///
/// `lane` is a stable label for the kind of work (e.g. `"trainer"`);
/// simulated runs use it for diagnostics and selective driving, real
/// spawners may ignore it.
pub trait Spawner: Send + Sync {
    /// Submit `task` for eventual execution.
    fn spawn(&self, lane: &'static str, task: Task);

    /// Run one queued task on the calling thread, if any is pending.
    ///
    /// Returns `true` if a task ran. Production spawners execute work on
    /// their own threads and have nothing to drive, so the default is a
    /// no-op returning `false`; code that waits for background work must
    /// treat that as "wait for the real thread" (sleep) rather than spin.
    fn drive_one(&self) -> bool {
        false
    }

    /// `true` when tasks only run via [`drive_one`](Spawner::drive_one).
    fn is_simulated(&self) -> bool {
        false
    }

    /// Number of queued-but-unrun tasks (simulated spawners only;
    /// production spawners report 0 because they cannot observe their
    /// pool's queue through this trait).
    fn pending(&self) -> usize {
        0
    }
}

/// The deterministic scheduler: a FIFO of queued tasks that run only
/// when the harness calls [`drive_one`](Spawner::drive_one). Single
/// queue, strict submission order — determinism comes from the harness
/// choosing *when* to interleave driving with foreground ops, not from
/// reordering.
#[derive(Default)]
pub struct SimScheduler {
    queue: Mutex<VecDeque<(&'static str, Task)>>,
}

impl SimScheduler {
    /// An empty scheduler.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Spawner for SimScheduler {
    fn spawn(&self, lane: &'static str, task: Task) {
        self.queue.lock().unwrap().push_back((lane, task));
    }

    fn drive_one(&self) -> bool {
        // Pop under the lock, run after releasing it: a task may itself
        // spawn (the trainer re-arms its backlog check), and must not
        // deadlock on the queue.
        let next = self.queue.lock().unwrap().pop_front();
        match next {
            Some((_lane, task)) => {
                task();
                true
            }
            None => false,
        }
    }

    fn is_simulated(&self) -> bool {
        true
    }

    fn pending(&self) -> usize {
        self.queue.lock().unwrap().len()
    }
}

impl std::fmt::Debug for SimScheduler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimScheduler")
            .field("pending", &self.pending())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn tasks_run_in_submission_order_when_driven() {
        let sched = SimScheduler::new();
        let log = Arc::new(Mutex::new(Vec::new()));
        for i in 0..3 {
            let log = Arc::clone(&log);
            sched.spawn("test", Box::new(move || log.lock().unwrap().push(i)));
        }
        assert_eq!(sched.pending(), 3);
        assert!(log.lock().unwrap().is_empty(), "nothing runs until driven");
        while sched.drive_one() {}
        assert_eq!(*log.lock().unwrap(), vec![0, 1, 2]);
        assert!(!sched.drive_one());
    }

    #[test]
    fn driven_task_may_respawn_without_deadlock() {
        let sched = Arc::new(SimScheduler::new());
        let ran = Arc::new(AtomicUsize::new(0));
        let (s2, r2) = (Arc::clone(&sched), Arc::clone(&ran));
        sched.spawn(
            "outer",
            Box::new(move || {
                r2.fetch_add(1, Ordering::SeqCst);
                let r3 = Arc::clone(&r2);
                s2.spawn(
                    "inner",
                    Box::new(move || {
                        r3.fetch_add(1, Ordering::SeqCst);
                    }),
                );
            }),
        );
        assert!(sched.drive_one());
        assert_eq!(ran.load(Ordering::SeqCst), 1);
        assert!(sched.drive_one());
        assert_eq!(ran.load(Ordering::SeqCst), 2);
    }
}
