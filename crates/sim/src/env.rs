//! The bundle the engine is constructed with: one clock, optionally a
//! deterministic scheduler, optionally an armed fault plan.
//!
//! [`SimEnv::production`] is the ambient-world configuration — real
//! clock, no scheduler override (the engine keeps its thread pools), no
//! faults — and is what every existing constructor uses, so production
//! behaviour is unchanged: the `Option`s are `None` and every check
//! folds to a branch on a null pointer. [`SimEnv::simulated`] is built
//! per schedule by the harness.

use std::sync::Arc;
use std::time::Duration;

use crate::clock::{Clock, SystemClock, VirtualClock};
use crate::fault::FaultPlan;
use crate::spawn::{SimScheduler, Spawner};

/// The injected environment: time, background scheduling, faults.
#[derive(Clone)]
pub struct SimEnv {
    clock: Arc<dyn Clock>,
    tasks: Option<Arc<SimScheduler>>,
    faults: Option<Arc<FaultPlan>>,
}

impl SimEnv {
    /// The real world: system clock, engine-owned threads, no faults.
    pub fn production() -> Self {
        SimEnv {
            clock: Arc::new(SystemClock),
            tasks: None,
            faults: None,
        }
    }

    /// A fresh simulated world: virtual clock at t = 0, deterministic
    /// scheduler, empty fault plan. The harness keeps clones of the
    /// parts to drive them.
    pub fn simulated() -> (Self, Arc<VirtualClock>, Arc<SimScheduler>, Arc<FaultPlan>) {
        let clock = Arc::new(VirtualClock::new());
        let tasks = Arc::new(SimScheduler::new());
        let faults = Arc::new(FaultPlan::new());
        let env = SimEnv {
            clock: Arc::clone(&clock) as Arc<dyn Clock>,
            tasks: Some(Arc::clone(&tasks)),
            faults: Some(Arc::clone(&faults)),
        };
        (env, clock, tasks, faults)
    }

    /// The environment's clock.
    pub fn clock(&self) -> &Arc<dyn Clock> {
        &self.clock
    }

    /// Elapsed time since the environment's origin (shorthand for
    /// `clock().now()`).
    pub fn now(&self) -> Duration {
        self.clock.now()
    }

    /// Sleep via the environment's clock (really, or virtually).
    pub fn sleep(&self, d: Duration) {
        self.clock.sleep(d);
    }

    /// The deterministic scheduler, when simulated.
    pub fn scheduler(&self) -> Option<&Arc<SimScheduler>> {
        self.tasks.as_ref()
    }

    /// `true` when background work is harness-driven.
    pub fn is_simulated(&self) -> bool {
        self.tasks.is_some()
    }

    /// Consult a named fault point. Constant `false` in production.
    #[inline]
    pub fn fault(&self, point: &str) -> bool {
        match &self.faults {
            Some(plan) => plan.fire(point),
            None => false,
        }
    }

    /// Run one queued background task if simulated; `false` otherwise
    /// (callers then wait for real threads instead).
    pub fn drive_one(&self) -> bool {
        match &self.tasks {
            Some(sched) => sched.drive_one(),
            None => false,
        }
    }
}

impl std::fmt::Debug for SimEnv {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimEnv")
            .field("simulated", &self.is_simulated())
            .field("faults", &self.faults)
            .finish()
    }
}

impl Default for SimEnv {
    fn default() -> Self {
        Self::production()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn production_env_is_passthrough() {
        let env = SimEnv::production();
        assert!(!env.is_simulated());
        assert!(!env.fault("anything"));
        assert!(!env.drive_one());
        let a = env.now();
        assert!(env.now() >= a);
    }

    #[test]
    fn simulated_env_wires_the_parts_together() {
        let (env, clock, sched, faults) = SimEnv::simulated();
        assert!(env.is_simulated());

        clock.advance(Duration::from_secs(5));
        assert_eq!(env.now(), Duration::from_secs(5));

        faults.arm("x", 1);
        assert!(env.fault("x"));
        assert!(!env.fault("x"));

        let hit = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let h = Arc::clone(&hit);
        sched.spawn(
            "t",
            Box::new(move || h.store(true, std::sync::atomic::Ordering::SeqCst)),
        );
        assert!(env.drive_one());
        assert!(hit.load(std::sync::atomic::Ordering::SeqCst));
    }
}
