//! Rare-path fault injection ("buggify" points).
//!
//! Production code sprinkles named fault points at the branches a test
//! could never hit on demand — `env.fault("trainer.crash")` right after
//! the trainer drains its batch, say. In production the plan is absent
//! and the call is a constant `false`; under simulation the schedule
//! arms specific points a specific number of times, so "the trainer dies
//! exactly between drain and publish" is one line of schedule, not a
//! prayer.

use std::collections::HashMap;
use std::sync::Mutex;

/// Armed fault points: a map from point name to remaining trigger count.
#[derive(Default)]
pub struct FaultPlan {
    armed: Mutex<HashMap<&'static str, u32>>,
}

impl FaultPlan {
    /// An empty (fully disarmed) plan.
    pub fn new() -> Self {
        Self::default()
    }

    /// Arm `point` to fire the next `times` times it is consulted.
    pub fn arm(&self, point: &'static str, times: u32) {
        if times == 0 {
            self.armed.lock().unwrap().remove(point);
        } else {
            self.armed.lock().unwrap().insert(point, times);
        }
    }

    /// Consult `point`: fires (returns `true`) while armed, decrementing
    /// the remaining count.
    pub fn fire(&self, point: &str) -> bool {
        let mut armed = self.armed.lock().unwrap();
        match armed.get_mut(point) {
            Some(n) => {
                *n -= 1;
                if *n == 0 {
                    armed.remove(point);
                }
                true
            }
            None => false,
        }
    }

    /// Remaining trigger count for `point` (0 when disarmed).
    pub fn remaining(&self, point: &str) -> u32 {
        self.armed.lock().unwrap().get(point).copied().unwrap_or(0)
    }
}

impl std::fmt::Debug for FaultPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let armed = self.armed.lock().unwrap();
        f.debug_struct("FaultPlan").field("armed", &*armed).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disarmed_points_never_fire() {
        let plan = FaultPlan::new();
        assert!(!plan.fire("trainer.crash"));
    }

    #[test]
    fn armed_point_fires_exactly_n_times() {
        let plan = FaultPlan::new();
        plan.arm("trainer.crash", 2);
        assert!(plan.fire("trainer.crash"));
        assert!(plan.fire("trainer.crash"));
        assert!(!plan.fire("trainer.crash"));
        assert_eq!(plan.remaining("trainer.crash"), 0);
    }

    #[test]
    fn arming_zero_disarms() {
        let plan = FaultPlan::new();
        plan.arm("p", 3);
        plan.arm("p", 0);
        assert!(!plan.fire("p"));
    }
}
