//! Monotonic time as an injected capability.
//!
//! The engine never calls `Instant::now()` or `thread::sleep` directly;
//! it asks its [`Clock`]. Production code gets [`SystemClock`], a thin
//! wrapper over `Instant` anchored at a process-wide epoch. Simulation
//! gets [`VirtualClock`], whose "now" is an atomic nanosecond counter
//! that only moves when the harness advances it — so a schedule that
//! jumps the clock forward three hours replays bit-for-bit, and a
//! `sleep` costs nothing but a counter bump.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::{Duration, Instant};

/// A monotonic clock. `now()` is elapsed time since an arbitrary but
/// fixed origin; only differences between readings are meaningful.
pub trait Clock: Send + Sync {
    /// Time elapsed since the clock's origin.
    fn now(&self) -> Duration;

    /// Block (or pretend to block) for `d`.
    ///
    /// [`SystemClock`] really sleeps the calling thread. [`VirtualClock`]
    /// advances virtual time and returns immediately — simulated code
    /// must never wedge the single simulation thread.
    fn sleep(&self, d: Duration);
}

/// Process epoch shared by every [`SystemClock`], so independently
/// constructed clocks agree on "now".
fn process_epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// The real monotonic clock: `Instant` readings relative to a fixed
/// process-wide origin, `sleep` = `thread::sleep`.
#[derive(Debug, Clone, Copy, Default)]
pub struct SystemClock;

impl Clock for SystemClock {
    fn now(&self) -> Duration {
        process_epoch().elapsed()
    }

    fn sleep(&self, d: Duration) {
        std::thread::sleep(d);
    }
}

/// A virtual clock for simulation: time is a nanosecond counter that
/// moves only via [`advance`](VirtualClock::advance) (harness-driven
/// jumps) or [`sleep`](Clock::sleep) (which advances instead of
/// blocking). Deterministic by construction.
#[derive(Debug, Default)]
pub struct VirtualClock {
    nanos: AtomicU64,
}

impl VirtualClock {
    /// A clock starting at t = 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Jump time forward by `d`.
    pub fn advance(&self, d: Duration) {
        let ns = u64::try_from(d.as_nanos()).unwrap_or(u64::MAX);
        self.nanos.fetch_add(ns, Ordering::SeqCst);
    }
}

impl Clock for VirtualClock {
    fn now(&self) -> Duration {
        Duration::from_nanos(self.nanos.load(Ordering::SeqCst))
    }

    fn sleep(&self, d: Duration) {
        // Sleeping in a simulation is just time passing.
        self.advance(d);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn system_clock_is_monotonic() {
        let c = SystemClock;
        let a = c.now();
        let b = c.now();
        assert!(b >= a);
    }

    #[test]
    fn virtual_clock_only_moves_on_advance() {
        let c = VirtualClock::new();
        assert_eq!(c.now(), Duration::ZERO);
        let before = c.now();
        assert_eq!(c.now(), before);
        c.advance(Duration::from_millis(250));
        assert_eq!(c.now(), before + Duration::from_millis(250));
    }

    #[test]
    fn virtual_sleep_advances_instead_of_blocking() {
        let c = VirtualClock::new();
        let start = std::time::Instant::now();
        c.sleep(Duration::from_secs(3600));
        assert!(start.elapsed() < Duration::from_secs(1));
        assert_eq!(c.now(), Duration::from_secs(3600));
    }
}
