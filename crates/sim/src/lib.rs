//! # scrutinizer-sim
//!
//! The deterministic-simulation substrate: every source of
//! nondeterminism the serving stack touches — **time**, **background
//! threads**, and the **network** — sits behind a small trait family, so
//! the whole service can run either on the real operating system or
//! inside a single-threaded, seeded, perfectly reproducible simulation
//! (the FoundationDB discipline: test the real code, simulate the
//! world around it).
//!
//! | ambient resource | trait | production (zero-cost passthrough) | simulation |
//! |------------------|-------------------------|------------------------------------|------------|
//! | monotonic time   | [`Clock`]               | [`SystemClock`] (`Instant`)        | [`VirtualClock`] (atomic nanos, jumps on demand) |
//! | background tasks | [`Spawner`]             | engine-owned thread pools          | [`SimScheduler`] (deterministic queue, driven by the harness) |
//! | byte streams     | [`ByteStream`]          | `std::net::TcpStream`              | [`SimStream`] (in-memory duplex with fault injection) |
//! | durable storage  | [`Storage`]             | [`FsStorage`] (`std::fs`)          | [`SimStorage`] (in-memory files with a durable/volatile split and crash faults) |
//! | rare-path faults | [`FaultPlan`] (buggify) | disarmed (`fault()` is `false`)    | armed per-point by the schedule |
//!
//! [`SimEnv`] bundles one choice of each and is what the engine is
//! constructed with. `SimEnv::production()` is the default everywhere;
//! the simulation harness (`crates/simcheck`) builds a simulated one per
//! schedule.
//!
//! Nothing here depends on the rest of the workspace: the engine depends
//! on this crate, never the reverse. The harness that drives schedules
//! and checks invariants lives above the engine, in `scrutinizer-simcheck`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod clock;
pub mod env;
pub mod fault;
pub mod net;
pub mod spawn;
pub mod storage;

pub use clock::{Clock, SystemClock, VirtualClock};
pub use env::SimEnv;
pub use fault::FaultPlan;
pub use net::{sim_pair, ByteStream, IoPoll, SimEndpoint, SimStream};
pub use spawn::{SimScheduler, Spawner, Task};
pub use storage::{FsStorage, SimStorage, Storage};
