//! Durable-storage seam: the file-system analog of [`ByteStream`](crate::ByteStream).
//!
//! The WAL never touches `std::fs` directly; it goes through the
//! [`Storage`] trait so the same recovery code runs against two
//! substrates:
//!
//! - [`FsStorage`] — the production implementation over real files,
//!   with cached append handles so the hot `append`/`sync` path does
//!   not reopen the file per record.
//! - [`SimStorage`] — a deterministic in-memory file system that
//!   models the *durable vs volatile* distinction real disks have:
//!   writes land in a volatile tail, `sync` promotes the tail to
//!   durable, and [`SimStorage::crash`] discards whatever was not
//!   promoted. Named fault points make the interesting crash shapes
//!   schedulable: torn writes (a prefix of the tail survives), lucky
//!   crashes (the tail survives even though `sync` never returned —
//!   the crash-after-fsync case), and short reads.
//!
//! Paths are plain `/`-separated strings relative to whatever root the
//! caller chose; `list` returns the file *names* directly under a
//! directory, sorted, so replay order is deterministic on both
//! substrates.

use std::collections::BTreeMap;
use std::collections::HashMap;
use std::io;
use std::sync::{Arc, Mutex};

use crate::fault::FaultPlan;

/// Fault point: `read` returns only a prefix of the file once.
pub const FAULT_SHORT_READ: &str = "storage.short_read";
/// Fault point: on `crash`, a file keeps a *torn prefix* of its
/// unsynced tail (the classic partially-persisted append).
pub const FAULT_CRASH_TORN: &str = "storage.crash.torn";
/// Fault point: on `crash`, a file keeps its entire unsynced tail —
/// the data reached the platter even though `sync` never acknowledged
/// (crash-after-fsync from the application's point of view).
pub const FAULT_CRASH_KEEP: &str = "storage.crash.keep";

/// Abstract durable byte storage: append-only files plus the handful of
/// whole-file operations a log manager needs.
///
/// The durability contract callers rely on:
/// - bytes passed to [`append`](Storage::append) are *not* durable
///   until a subsequent [`sync`](Storage::sync) on the same path
///   returns;
/// - [`write_atomic`](Storage::write_atomic) replaces the file's
///   contents all-or-nothing and is durable when it returns (the
///   write-to-temp / fsync / rename idiom).
pub trait Storage: Send + Sync {
    /// Creates `dir` (and parents) if missing.
    fn create_dir_all(&self, dir: &str) -> io::Result<()>;
    /// The file names (not paths) directly under `dir`, sorted.
    fn list(&self, dir: &str) -> io::Result<Vec<String>>;
    /// Reads the whole file. May return fewer bytes than the file holds
    /// under injected faults; callers that must see a stable tail
    /// should tolerate prefixes (the WAL replay does by design).
    fn read(&self, path: &str) -> io::Result<Vec<u8>>;
    /// Appends `bytes` to the file, creating it if absent. Not durable
    /// until [`sync`](Storage::sync).
    fn append(&self, path: &str, bytes: &[u8]) -> io::Result<()>;
    /// Forces all previously appended bytes on `path` to durable
    /// storage.
    fn sync(&self, path: &str) -> io::Result<()>;
    /// Truncates the file to `len` bytes and makes the truncation
    /// durable. Used to chop a torn tail off a recovered segment.
    fn truncate(&self, path: &str, len: u64) -> io::Result<()>;
    /// Replaces the file's contents atomically and durably.
    fn write_atomic(&self, path: &str, bytes: &[u8]) -> io::Result<()>;
    /// Removes the file. Missing files are not an error (removal is
    /// used for compaction, which must be idempotent across crashes).
    fn remove(&self, path: &str) -> io::Result<()>;
    /// Whether the file exists.
    fn exists(&self, path: &str) -> bool;
}

// ---------------------------------------------------------------------
// Production: std::fs
// ---------------------------------------------------------------------

/// Production [`Storage`] over the real file system, with a cache of
/// append-mode handles keyed by path so the per-record append/fsync
/// path costs no `open(2)`.
#[derive(Default)]
pub struct FsStorage {
    handles: Mutex<HashMap<String, std::fs::File>>,
}

impl FsStorage {
    /// A new production storage.
    pub fn new() -> Self {
        Self::default()
    }

    fn with_handle<T>(
        &self,
        path: &str,
        f: impl FnOnce(&mut std::fs::File) -> io::Result<T>,
    ) -> io::Result<T> {
        let mut handles = self.handles.lock().unwrap();
        if !handles.contains_key(path) {
            let file = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(path)?;
            handles.insert(path.to_string(), file);
        }
        f(handles.get_mut(path).expect("inserted above"))
    }
}

impl Storage for FsStorage {
    fn create_dir_all(&self, dir: &str) -> io::Result<()> {
        std::fs::create_dir_all(dir)
    }

    fn list(&self, dir: &str) -> io::Result<Vec<String>> {
        let mut names = Vec::new();
        for entry in std::fs::read_dir(dir)? {
            let entry = entry?;
            if entry.file_type()?.is_file() {
                names.push(entry.file_name().to_string_lossy().into_owned());
            }
        }
        names.sort();
        Ok(names)
    }

    fn read(&self, path: &str) -> io::Result<Vec<u8>> {
        std::fs::read(path)
    }

    fn append(&self, path: &str, bytes: &[u8]) -> io::Result<()> {
        use std::io::Write as _;
        self.with_handle(path, |file| file.write_all(bytes))
    }

    fn sync(&self, path: &str) -> io::Result<()> {
        self.with_handle(path, |file| file.sync_data())
    }

    fn truncate(&self, path: &str, len: u64) -> io::Result<()> {
        // drop any cached append handle first: append mode would keep
        // writing at the old end-of-file on some platforms
        self.handles.lock().unwrap().remove(path);
        let file = std::fs::OpenOptions::new().write(true).open(path)?;
        file.set_len(len)?;
        file.sync_data()
    }

    fn write_atomic(&self, path: &str, bytes: &[u8]) -> io::Result<()> {
        self.handles.lock().unwrap().remove(path);
        let tmp = format!("{path}.tmp");
        std::fs::write(&tmp, bytes)?;
        let file = std::fs::OpenOptions::new().append(true).open(&tmp)?;
        file.sync_data()?;
        drop(file);
        std::fs::rename(&tmp, path)?;
        // fsync the parent directory so the rename itself is durable
        if let Some(parent) = std::path::Path::new(path).parent() {
            if let Ok(dir) = std::fs::File::open(parent) {
                let _ = dir.sync_all();
            }
        }
        Ok(())
    }

    fn remove(&self, path: &str) -> io::Result<()> {
        self.handles.lock().unwrap().remove(path);
        match std::fs::remove_file(path) {
            Err(error) if error.kind() == io::ErrorKind::NotFound => Ok(()),
            other => other,
        }
    }

    fn exists(&self, path: &str) -> bool {
        std::path::Path::new(path).is_file()
    }
}

// ---------------------------------------------------------------------
// Simulation: in-memory files with a durable/volatile split
// ---------------------------------------------------------------------

#[derive(Default, Clone)]
struct SimFile {
    /// All bytes written, in order. The prefix `..durable_len` has been
    /// promoted by `sync`; the rest is the volatile tail a crash eats.
    data: Vec<u8>,
    durable_len: usize,
}

/// Deterministic in-memory [`Storage`] whose files survive
/// [`crash`](SimStorage::crash) only up to their last `sync` — except
/// where an armed fault point says otherwise.
#[derive(Default)]
pub struct SimStorage {
    files: Mutex<BTreeMap<String, SimFile>>,
    faults: Option<Arc<FaultPlan>>,
}

impl SimStorage {
    /// A new simulated storage with no fault plan (faults never fire).
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// A new simulated storage consulting `faults` at its named fault
    /// points.
    pub fn with_faults(faults: Arc<FaultPlan>) -> Arc<Self> {
        Arc::new(Self {
            files: Mutex::new(BTreeMap::new()),
            faults: Some(faults),
        })
    }

    fn fire(&self, point: &str) -> bool {
        self.faults.as_ref().is_some_and(|plan| plan.fire(point))
    }

    /// Simulates a process/machine crash: every file loses its volatile
    /// tail. Armed fault points bend the outcome per file, checked in
    /// this order:
    ///
    /// - [`FAULT_CRASH_KEEP`]: the tail survives intact (the fsync made
    ///   it to the platter before the power died);
    /// - [`FAULT_CRASH_TORN`]: half the tail survives — a torn write
    ///   recovery must detect via checksum and length framing.
    ///
    /// Files are visited in path order, so which file a single armed
    /// count applies to is deterministic.
    pub fn crash(&self) {
        let mut files = self.files.lock().unwrap();
        for file in files.values_mut() {
            let tail = file.data.len() - file.durable_len;
            if tail == 0 {
                continue;
            }
            if self.fire(FAULT_CRASH_KEEP) {
                file.durable_len = file.data.len();
            } else if self.fire(FAULT_CRASH_TORN) {
                file.durable_len += tail / 2;
            }
            file.data.truncate(file.durable_len);
        }
    }

    /// Total bytes currently held (durable + volatile), for tests.
    pub fn total_bytes(&self) -> usize {
        self.files
            .lock()
            .unwrap()
            .values()
            .map(|f| f.data.len())
            .sum()
    }

    /// Bytes a crash right now would preserve for `path` (0 if absent).
    pub fn durable_len(&self, path: &str) -> usize {
        self.files
            .lock()
            .unwrap()
            .get(path)
            .map_or(0, |f| f.durable_len)
    }
}

impl Storage for SimStorage {
    fn create_dir_all(&self, _dir: &str) -> io::Result<()> {
        Ok(())
    }

    fn list(&self, dir: &str) -> io::Result<Vec<String>> {
        let prefix = format!("{}/", dir.trim_end_matches('/'));
        let files = self.files.lock().unwrap();
        Ok(files
            .keys()
            .filter_map(|path| path.strip_prefix(&prefix))
            .filter(|rest| !rest.contains('/'))
            .map(str::to_string)
            .collect())
    }

    fn read(&self, path: &str) -> io::Result<Vec<u8>> {
        let files = self.files.lock().unwrap();
        let file = files
            .get(path)
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, path.to_string()))?;
        let mut data = file.data.clone();
        drop(files);
        if self.fire(FAULT_SHORT_READ) {
            data.truncate(data.len() / 2);
        }
        Ok(data)
    }

    fn append(&self, path: &str, bytes: &[u8]) -> io::Result<()> {
        let mut files = self.files.lock().unwrap();
        files
            .entry(path.to_string())
            .or_default()
            .data
            .extend_from_slice(bytes);
        Ok(())
    }

    fn sync(&self, path: &str) -> io::Result<()> {
        let mut files = self.files.lock().unwrap();
        if let Some(file) = files.get_mut(path) {
            file.durable_len = file.data.len();
        }
        Ok(())
    }

    fn truncate(&self, path: &str, len: u64) -> io::Result<()> {
        let mut files = self.files.lock().unwrap();
        let file = files
            .get_mut(path)
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, path.to_string()))?;
        file.data.truncate(len as usize);
        file.durable_len = file.durable_len.min(file.data.len());
        // a truncate in the durable path is followed by sync semantics
        file.durable_len = file.data.len();
        Ok(())
    }

    fn write_atomic(&self, path: &str, bytes: &[u8]) -> io::Result<()> {
        let mut files = self.files.lock().unwrap();
        files.insert(
            path.to_string(),
            SimFile {
                data: bytes.to_vec(),
                durable_len: bytes.len(),
            },
        );
        Ok(())
    }

    fn remove(&self, path: &str) -> io::Result<()> {
        self.files.lock().unwrap().remove(path);
        Ok(())
    }

    fn exists(&self, path: &str) -> bool {
        self.files.lock().unwrap().contains_key(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unsynced_bytes_die_in_a_crash() {
        let storage = SimStorage::new();
        storage.append("wal/a.log", b"durable").unwrap();
        storage.sync("wal/a.log").unwrap();
        storage.append("wal/a.log", b" volatile").unwrap();
        storage.crash();
        assert_eq!(storage.read("wal/a.log").unwrap(), b"durable");
    }

    #[test]
    fn torn_crash_keeps_half_the_tail() {
        let faults = Arc::new(FaultPlan::new());
        faults.arm(FAULT_CRASH_TORN, 1);
        let storage = SimStorage::with_faults(faults);
        storage.append("wal/a.log", b"durable!").unwrap();
        storage.sync("wal/a.log").unwrap();
        storage.append("wal/a.log", b"TAILTAIL").unwrap();
        storage.crash();
        assert_eq!(storage.read("wal/a.log").unwrap(), b"durable!TAIL");
    }

    #[test]
    fn lucky_crash_keeps_the_whole_tail() {
        let faults = Arc::new(FaultPlan::new());
        faults.arm(FAULT_CRASH_KEEP, 1);
        let storage = SimStorage::with_faults(faults);
        storage.append("wal/a.log", b"abc").unwrap();
        storage.crash();
        assert_eq!(storage.read("wal/a.log").unwrap(), b"abc");
    }

    #[test]
    fn short_read_returns_a_prefix_once() {
        let faults = Arc::new(FaultPlan::new());
        faults.arm(FAULT_SHORT_READ, 1);
        let storage = SimStorage::with_faults(faults);
        storage.append("wal/a.log", b"0123456789").unwrap();
        assert_eq!(storage.read("wal/a.log").unwrap(), b"01234");
        assert_eq!(storage.read("wal/a.log").unwrap(), b"0123456789");
    }

    #[test]
    fn write_atomic_is_durable_immediately() {
        let storage = SimStorage::new();
        storage.write_atomic("wal/CHECKPOINT", b"epoch 3").unwrap();
        storage.crash();
        assert_eq!(storage.read("wal/CHECKPOINT").unwrap(), b"epoch 3");
    }

    #[test]
    fn list_is_sorted_and_direct_children_only() {
        let storage = SimStorage::new();
        storage.append("wal/b.log", b"x").unwrap();
        storage.append("wal/a.log", b"x").unwrap();
        storage.append("wal/sub/c.log", b"x").unwrap();
        storage.append("other/d.log", b"x").unwrap();
        assert_eq!(storage.list("wal").unwrap(), vec!["a.log", "b.log"]);
    }

    #[test]
    fn truncate_chops_and_persists() {
        let storage = SimStorage::new();
        storage.append("wal/a.log", b"0123456789").unwrap();
        storage.sync("wal/a.log").unwrap();
        storage.truncate("wal/a.log", 4).unwrap();
        storage.crash();
        assert_eq!(storage.read("wal/a.log").unwrap(), b"0123");
    }

    #[test]
    fn fs_storage_round_trips_in_a_temp_dir() {
        let dir =
            std::env::temp_dir().join(format!("scrutinizer-sim-storage-{}", std::process::id()));
        let root = dir.to_string_lossy().into_owned();
        let storage = FsStorage::new();
        storage.create_dir_all(&root).unwrap();
        let path = format!("{root}/seg.log");
        storage.append(&path, b"hello ").unwrap();
        storage.append(&path, b"world").unwrap();
        storage.sync(&path).unwrap();
        assert_eq!(storage.read(&path).unwrap(), b"hello world");
        storage.truncate(&path, 5).unwrap();
        assert_eq!(storage.read(&path).unwrap(), b"hello");
        storage.append(&path, b"!").unwrap();
        storage.sync(&path).unwrap();
        assert_eq!(storage.read(&path).unwrap(), b"hello!");
        storage
            .write_atomic(&format!("{root}/CHECKPOINT"), b"meta")
            .unwrap();
        assert_eq!(
            storage.read(&format!("{root}/CHECKPOINT")).unwrap(),
            b"meta"
        );
        let names = storage.list(&root).unwrap();
        assert_eq!(names, vec!["CHECKPOINT", "seg.log"]);
        storage.remove(&path).unwrap();
        storage.remove(&path).unwrap(); // idempotent
        assert!(!storage.exists(&path));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
