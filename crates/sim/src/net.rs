//! Nonblocking byte streams as an injected capability.
//!
//! The server's readiness loop only ever needs two operations from a
//! connection: "read whatever is available without blocking" and "write
//! as much as fits without blocking". [`ByteStream`] captures exactly
//! that, with [`IoPoll`] standing in for the `io::Result` /
//! `ErrorKind::WouldBlock` dance. `std::net::TcpStream` (in nonblocking
//! mode) implements it for production; [`SimStream`] is an in-memory
//! duplex pipe whose far end the harness holds, with fault injection —
//! stalls, partial writes, hard drops — flipped per-connection by the
//! schedule.

use std::io::{Read, Write};
use std::sync::{Arc, Mutex};

/// Outcome of one nonblocking I/O attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoPoll {
    /// `n` bytes transferred. For reads, `Ready(0)` means orderly EOF.
    Ready(usize),
    /// Nothing transferable right now; try again later.
    WouldBlock,
    /// The peer is gone (reset / broken pipe); the connection is dead.
    Closed,
    /// Unrecoverable local error; the connection is dead.
    Err,
}

/// A nonblocking byte stream — the only view of a connection the serving
/// loop gets.
pub trait ByteStream {
    /// Read available bytes into `buf`. `Ready(0)` is EOF.
    fn read_nb(&mut self, buf: &mut [u8]) -> IoPoll;

    /// Write as much of `buf` as currently fits.
    fn write_nb(&mut self, buf: &[u8]) -> IoPoll;
}

impl ByteStream for std::net::TcpStream {
    fn read_nb(&mut self, buf: &mut [u8]) -> IoPoll {
        match self.read(buf) {
            Ok(n) => IoPoll::Ready(n),
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => IoPoll::WouldBlock,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => IoPoll::WouldBlock,
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::ConnectionReset
                        | std::io::ErrorKind::ConnectionAborted
                        | std::io::ErrorKind::BrokenPipe
                ) =>
            {
                IoPoll::Closed
            }
            Err(_) => IoPoll::Err,
        }
    }

    fn write_nb(&mut self, buf: &[u8]) -> IoPoll {
        match self.write(buf) {
            Ok(n) => IoPoll::Ready(n),
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => IoPoll::WouldBlock,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => IoPoll::WouldBlock,
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::ConnectionReset
                        | std::io::ErrorKind::ConnectionAborted
                        | std::io::ErrorKind::BrokenPipe
                ) =>
            {
                IoPoll::Closed
            }
            Err(_) => IoPoll::Err,
        }
    }
}

/// One direction of the duplex pipe.
#[derive(Default)]
struct Pipe {
    bytes: Vec<u8>,
    /// Writer hung up: the remaining bytes drain, then reads see EOF.
    closed: bool,
}

/// Shared state of a simulated connection.
#[derive(Default)]
struct Duplex {
    /// client → server direction.
    c2s: Pipe,
    /// server → client direction.
    s2c: Pipe,
    /// Stalled client: server-side reads report `WouldBlock` even when
    /// bytes are queued, until the schedule un-stalls it.
    stalled: bool,
    /// Partial-write cap: server-side writes transfer at most this many
    /// bytes per call (`None` = unlimited).
    write_cap: Option<usize>,
    /// Hard drop: both ends see `Closed` immediately, buffered bytes and
    /// all — the simulated RST.
    dropped: bool,
}

/// The server's end of a simulated connection. Implements
/// [`ByteStream`] so the real serving loop can run over it unchanged.
pub struct SimStream {
    state: Arc<Mutex<Duplex>>,
}

/// The harness's (client's) end of a simulated connection: push request
/// bytes in, pull response lines out, flip faults.
pub struct SimEndpoint {
    state: Arc<Mutex<Duplex>>,
}

/// A fresh connected pair: the server half and the client half.
pub fn sim_pair() -> (SimStream, SimEndpoint) {
    let state = Arc::new(Mutex::new(Duplex::default()));
    (
        SimStream {
            state: Arc::clone(&state),
        },
        SimEndpoint { state },
    )
}

impl ByteStream for SimStream {
    fn read_nb(&mut self, buf: &mut [u8]) -> IoPoll {
        let mut st = self.state.lock().unwrap();
        if st.dropped {
            return IoPoll::Closed;
        }
        if st.stalled {
            return IoPoll::WouldBlock;
        }
        if st.c2s.bytes.is_empty() {
            return if st.c2s.closed {
                IoPoll::Ready(0)
            } else {
                IoPoll::WouldBlock
            };
        }
        let n = buf.len().min(st.c2s.bytes.len());
        buf[..n].copy_from_slice(&st.c2s.bytes[..n]);
        st.c2s.bytes.drain(..n);
        IoPoll::Ready(n)
    }

    fn write_nb(&mut self, buf: &[u8]) -> IoPoll {
        let mut st = self.state.lock().unwrap();
        if st.dropped {
            return IoPoll::Closed;
        }
        if buf.is_empty() {
            return IoPoll::Ready(0);
        }
        let n = match st.write_cap {
            Some(0) => return IoPoll::WouldBlock,
            Some(cap) => buf.len().min(cap),
            None => buf.len(),
        };
        st.s2c.bytes.extend_from_slice(&buf[..n]);
        IoPoll::Ready(n)
    }
}

impl SimEndpoint {
    /// Queue request bytes for the server to read.
    pub fn send(&self, bytes: &[u8]) {
        let mut st = self.state.lock().unwrap();
        if !st.dropped && !st.c2s.closed {
            st.c2s.bytes.extend_from_slice(bytes);
        }
    }

    /// Drain everything the server has written so far.
    pub fn recv(&self) -> Vec<u8> {
        let mut st = self.state.lock().unwrap();
        std::mem::take(&mut st.s2c.bytes)
    }

    /// Orderly half-close of the client's write side: the server reads
    /// the remaining bytes, then EOF.
    pub fn close_write(&self) {
        self.state.lock().unwrap().c2s.closed = true;
    }

    /// Abrupt drop: both directions die instantly, buffers discarded.
    pub fn drop_hard(&self) {
        let mut st = self.state.lock().unwrap();
        st.dropped = true;
        st.c2s.bytes.clear();
        st.s2c.bytes.clear();
    }

    /// Stall or un-stall the client: while stalled, the server's reads
    /// see `WouldBlock` regardless of queued bytes.
    pub fn set_stalled(&self, stalled: bool) {
        self.state.lock().unwrap().stalled = stalled;
    }

    /// Cap server-side writes at `cap` bytes per call (`None` lifts the
    /// cap). `Some(0)` makes every write `WouldBlock` — a full socket.
    pub fn set_write_cap(&self, cap: Option<usize>) {
        self.state.lock().unwrap().write_cap = cap;
    }

    /// `true` once the connection has been hard-dropped.
    pub fn is_dropped(&self) -> bool {
        self.state.lock().unwrap().dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_and_eof() {
        let (mut server, client) = sim_pair();
        let mut buf = [0u8; 64];
        assert_eq!(server.read_nb(&mut buf), IoPoll::WouldBlock);

        client.send(b"hello\n");
        assert_eq!(server.read_nb(&mut buf), IoPoll::Ready(6));
        assert_eq!(&buf[..6], b"hello\n");

        assert_eq!(server.write_nb(b"ok\n"), IoPoll::Ready(3));
        assert_eq!(client.recv(), b"ok\n");

        client.close_write();
        assert_eq!(
            server.read_nb(&mut buf),
            IoPoll::Ready(0),
            "EOF after half-close"
        );
    }

    #[test]
    fn half_close_drains_buffered_bytes_first() {
        let (mut server, client) = sim_pair();
        client.send(b"tail");
        client.close_write();
        let mut buf = [0u8; 64];
        assert_eq!(server.read_nb(&mut buf), IoPoll::Ready(4));
        assert_eq!(server.read_nb(&mut buf), IoPoll::Ready(0));
    }

    #[test]
    fn stall_masks_queued_bytes() {
        let (mut server, client) = sim_pair();
        client.send(b"x");
        client.set_stalled(true);
        let mut buf = [0u8; 8];
        assert_eq!(server.read_nb(&mut buf), IoPoll::WouldBlock);
        client.set_stalled(false);
        assert_eq!(server.read_nb(&mut buf), IoPoll::Ready(1));
    }

    #[test]
    fn write_cap_forces_partial_writes() {
        let (mut server, client) = sim_pair();
        client.set_write_cap(Some(2));
        assert_eq!(server.write_nb(b"abcdef"), IoPoll::Ready(2));
        assert_eq!(server.write_nb(b"cdef"), IoPoll::Ready(2));
        client.set_write_cap(Some(0));
        assert_eq!(server.write_nb(b"ef"), IoPoll::WouldBlock);
        client.set_write_cap(None);
        assert_eq!(server.write_nb(b"ef"), IoPoll::Ready(2));
        assert_eq!(client.recv(), b"abcdef");
    }

    #[test]
    fn hard_drop_kills_both_directions() {
        let (mut server, client) = sim_pair();
        client.send(b"in flight");
        client.drop_hard();
        let mut buf = [0u8; 8];
        assert_eq!(server.read_nb(&mut buf), IoPoll::Closed);
        assert_eq!(server.write_nb(b"late"), IoPoll::Closed);
        assert!(client.recv().is_empty());
    }
}
