//! Incremental batch re-planning.
//!
//! The mixed-initiative loop re-plans after every retrain (Algorithm 1's
//! feedback edge): utilities shift a little (Definition 7 is re-estimated),
//! and verified claims leave the pool. Solving Definition 9 cold each time
//! wastes work — the previous batch is almost always still near-optimal.
//!
//! [`IncrementalPlanner`] caches the last accepted batch and, on the next
//! plan, **repairs** it instead of re-solving: claims that disappeared are
//! dropped, the rest re-priced under the new utilities, and the remaining
//! budget refilled greedily. The repair is accepted only while its utility
//! stays within [`SystemConfig::replan_gap`] of an optimistic upper bound
//! on the achievable optimum — past that, the planner falls back to a full
//! (warm-started) solve seeded with the cached batch as the incumbent.
//!
//! The bound is sound: it relaxes integrality, section skim costs and the
//! cardinality/budget interaction, so it always dominates the true optimum.
//! An accepted repair with utility `R ≥ (1 − gap) · bound` therefore
//! satisfies `R ≥ (1 − gap) · OPT` — the differential property test pins
//! this.

use crate::config::SystemConfig;
use crate::ordering::{
    batch_utility, greedy_fill, select_batch_detailed, select_batch_with_hint, window_lp_bound,
    BatchMethod, BatchSelection, ClaimChoice, OrderingStrategy,
};
use scrutinizer_corpus::Document;
use scrutinizer_ilp::IlpError;

/// Monotone counters describing a planner's lifetime, exported through the
/// engine's stats endpoint.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlannerCounters {
    /// Total plan requests.
    pub plans: u64,
    /// Full (cold or incumbent-seeded) ILP solves.
    pub cold_solves: u64,
    /// Plans answered by repairing the cached batch — no ILP solve at all.
    pub incremental_repairs: u64,
    /// Repairs rejected by the bound test (followed by a full solve).
    pub repair_rejections: u64,
    /// ILP failures that degraded to the greedy heuristic.
    pub fallbacks: u64,
    /// Branch & bound nodes explored across all solves.
    pub nodes_explored: u64,
    /// LP solves that reused a parent basis (phase 1 skipped).
    pub warm_start_hits: u64,
    /// Total LP relaxations solved.
    pub lp_solves: u64,
}

/// A caching planner that repairs its last solution instead of re-solving
/// Definition 9 from scratch on every re-plan.
///
/// One planner belongs to one re-planning stream (the engine keeps one per
/// session); it is deliberately not thread-safe — wrap it in the session's
/// existing lock.
#[derive(Debug, Default)]
pub struct IncrementalPlanner {
    /// The last accepted batch, reused as repair seed and solver incumbent.
    cached: Option<Vec<usize>>,
    counters: PlannerCounters,
    last_fallback: Option<IlpError>,
}

impl IncrementalPlanner {
    /// A fresh planner with no cached solution.
    pub fn new() -> Self {
        Self::default()
    }

    /// Lifetime counters.
    pub fn counters(&self) -> PlannerCounters {
        self.counters
    }

    /// The most recent ILP failure that forced a greedy fallback, if any.
    pub fn last_fallback(&self) -> Option<&IlpError> {
        self.last_fallback.as_ref()
    }

    /// Drops the cached solution; the next plan solves cold.
    pub fn invalidate(&mut self) {
        self.cached = None;
    }

    /// Plans the next batch. For [`OrderingStrategy::Ilp`] the cached
    /// solution is repaired when the bound test allows; other strategies
    /// pass straight through to [`select_batch_detailed`].
    pub fn plan(
        &mut self,
        choices: &[ClaimChoice],
        document: &Document,
        strategy: OrderingStrategy,
        budget_seconds: f64,
        config: &SystemConfig,
    ) -> BatchSelection {
        self.counters.plans += 1;
        if strategy != OrderingStrategy::Ilp {
            return select_batch_detailed(choices, document, strategy, budget_seconds, config);
        }
        if choices.is_empty() {
            self.cached = None;
            return select_batch_detailed(choices, document, strategy, budget_seconds, config);
        }

        // ---- repair path -------------------------------------------------
        if let Some(prior) = self.cached.clone() {
            let survivors: Vec<usize> = prior
                .iter()
                .copied()
                .filter(|id| choices.iter().any(|c| c.id == *id))
                .collect();
            // repair inside the same candidate window the ILP would use
            // (plus the survivors), so the greedy augmentation is O(window)
            // instead of O(all claims)
            let mut pool: Vec<ClaimChoice> = {
                let mut by_density: Vec<&ClaimChoice> = choices.iter().collect();
                by_density.sort_by(|a, b| crate::ordering::density_cmp(a, b));
                by_density
                    .iter()
                    .take(config.ordering_window)
                    .map(|c| (*c).clone())
                    .collect()
            };
            for id in &survivors {
                if !pool.iter().any(|c| c.id == *id) {
                    if let Some(c) = choices.iter().find(|c| c.id == *id) {
                        pool.push(c.clone());
                    }
                }
            }
            let repaired = greedy_fill(&survivors, &pool, document, budget_seconds, config);
            let utility = batch_utility(&repaired, &pool);
            // two-tier bound test, cheap first: the closed-form
            // knapsack/cardinality bound needs no LP; only when it is too
            // loose to accept does the (tighter) LP-relaxation bound run.
            // Both dominate OPT, so either acceptance is sound.
            let threshold = 1.0 - config.replan_gap;
            let loose = optimistic_bound(choices, document, budget_seconds, config);
            let accepted = !repaired.is_empty()
                && (utility >= threshold * loose || {
                    let tight = window_lp_bound(choices, document, budget_seconds, config)
                        .unwrap_or(f64::INFINITY)
                        .min(loose);
                    utility >= threshold * tight
                });
            if accepted {
                self.counters.incremental_repairs += 1;
                self.cached = Some(repaired.clone());
                return BatchSelection {
                    batch: repaired,
                    utility,
                    method: BatchMethod::IncrementalRepair,
                    fallback: None,
                    solver: None,
                };
            }
            self.counters.repair_rejections += 1;
        }

        // ---- full solve, seeded with the cached batch --------------------
        let selection = select_batch_with_hint(
            choices,
            document,
            strategy,
            budget_seconds,
            config,
            self.cached.as_deref(),
        );
        match selection.method {
            BatchMethod::GreedyFallback => {
                self.counters.fallbacks += 1;
                self.last_fallback = selection.fallback.clone();
                // a greedy answer is not worth repairing next round
                self.cached = None;
            }
            _ => {
                self.counters.cold_solves += 1;
                self.cached = Some(selection.batch.clone());
            }
        }
        if let Some(stats) = &selection.solver {
            self.counters.nodes_explored += stats.nodes_explored as u64;
            self.counters.warm_start_hits += stats.warm_start_hits as u64;
            self.counters.lp_solves += stats.lp_solves as u64;
        }
        selection
    }
}

/// An optimistic upper bound on the achievable batch utility: the smaller
/// of (a) the fractional knapsack over *amortized* claim costs — each claim
/// carries `cost + read(section)/n_section`, where `n_section` counts the
/// section's claims among `choices`; a batch selecting `k ≤ n_section` of
/// them pays the skim once, which is at least `k · read/n_section`, so the
/// amortized weights never overstate a feasible batch's cost — and (b) the
/// sum of the `batch_size` largest utilities (the cardinality bound). Both
/// relax the true ILP, so `bound ≥ OPT`.
pub fn optimistic_bound(
    choices: &[ClaimChoice],
    document: &Document,
    budget_seconds: f64,
    config: &SystemConfig,
) -> f64 {
    // claims per section, for read-cost amortization
    let mut section_counts: Vec<(usize, usize)> = Vec::new();
    for c in choices {
        match section_counts.binary_search_by_key(&c.section, |&(s, _)| s) {
            Ok(i) => section_counts[i].1 += 1,
            Err(i) => section_counts.insert(i, (c.section, 1)),
        }
    }
    let amortized = |c: &ClaimChoice| -> f64 {
        let n = section_counts
            .binary_search_by_key(&c.section, |&(s, _)| s)
            .map(|i| section_counts[i].1)
            .unwrap_or(1);
        let read = document
            .sections
            .get(c.section)
            .map(|s| s.read_cost(config.read_seconds_per_sentence))
            .unwrap_or(0.0);
        c.cost + read / n as f64
    };

    // (a) fractional knapsack by utility density over amortized costs
    let mut by_density: Vec<(&ClaimChoice, f64)> =
        choices.iter().map(|c| (c, amortized(c))).collect();
    by_density.sort_by(|(a, wa), (b, wb)| {
        let da = a.utility / wa.max(1e-9);
        let db = b.utility / wb.max(1e-9);
        db.total_cmp(&da).then(a.id.cmp(&b.id))
    });
    let mut knapsack = 0.0;
    let mut spent = 0.0;
    for (c, weight) in &by_density {
        if spent + weight <= budget_seconds {
            spent += weight;
            knapsack += c.utility;
        } else {
            let slack = (budget_seconds - spent).max(0.0);
            knapsack += c.utility * (slack / weight.max(1e-9));
            break;
        }
    }
    // (b) cardinality: the batch holds at most `batch_size` claims
    let mut utilities: Vec<f64> = choices.iter().map(|c| c.utility).collect();
    utilities.sort_by(|a, b| b.total_cmp(a));
    let cardinality: f64 = utilities.iter().take(config.batch_size).sum();
    knapsack.min(cardinality)
}

#[cfg(test)]
mod tests {
    use super::*;
    use scrutinizer_corpus::{Corpus, CorpusConfig};

    fn setup() -> (Document, Vec<ClaimChoice>, SystemConfig) {
        let corpus = Corpus::generate(CorpusConfig::small());
        let choices: Vec<ClaimChoice> = corpus
            .claims
            .iter()
            .map(|c| ClaimChoice {
                id: c.id,
                section: c.section,
                cost: 40.0 + (c.id % 7) as f64 * 10.0,
                utility: 1.0 + (c.id % 5) as f64,
            })
            .collect();
        (corpus.document, choices, SystemConfig::test())
    }

    #[test]
    fn first_plan_solves_cold_then_repairs() {
        let (document, mut choices, config) = setup();
        let mut planner = IncrementalPlanner::new();
        let budget = 900.0;
        let first = planner.plan(&choices, &document, OrderingStrategy::Ilp, budget, &config);
        assert_eq!(planner.counters().cold_solves, 1);
        assert!(!first.batch.is_empty());

        // a retrain shifts utilities slightly → the repair path answers
        for c in &mut choices {
            c.utility *= 1.02;
        }
        let second = planner.plan(&choices, &document, OrderingStrategy::Ilp, budget, &config);
        assert_eq!(second.method, BatchMethod::IncrementalRepair);
        assert_eq!(planner.counters().incremental_repairs, 1);
        assert!(second.utility > 0.0);
    }

    #[test]
    fn verdicts_remove_claims_from_the_repair() {
        let (document, choices, config) = setup();
        let mut planner = IncrementalPlanner::new();
        let budget = 900.0;
        let first = planner.plan(&choices, &document, OrderingStrategy::Ilp, budget, &config);
        let gone = first.batch[0];
        let remaining: Vec<ClaimChoice> =
            choices.iter().filter(|c| c.id != gone).cloned().collect();
        let second = planner.plan(
            &remaining,
            &document,
            OrderingStrategy::Ilp,
            budget,
            &config,
        );
        assert!(
            !second.batch.contains(&gone),
            "verified claim must leave the plan"
        );
    }

    #[test]
    fn repair_respects_configured_gap() {
        let (document, mut choices, config) = setup();
        let mut planner = IncrementalPlanner::new();
        let budget = 900.0;
        planner.plan(&choices, &document, OrderingStrategy::Ilp, budget, &config);
        for c in &mut choices {
            c.utility *= 0.97;
        }
        let second = planner.plan(&choices, &document, OrderingStrategy::Ilp, budget, &config);
        if second.method == BatchMethod::IncrementalRepair {
            let bound = crate::ordering::window_lp_bound(&choices, &document, budget, &config)
                .unwrap_or(f64::INFINITY)
                .min(optimistic_bound(&choices, &document, budget, &config));
            assert!(
                second.utility >= (1.0 - config.replan_gap) * bound - 1e-9,
                "accepted repair violates its own bound: {} < (1-gap)·{bound}",
                second.utility
            );
        }
    }

    #[test]
    fn drastic_shift_forces_cold_resolve() {
        let (document, mut choices, config) = setup();
        let mut planner = IncrementalPlanner::new();
        let budget = 900.0;
        let first = planner.plan(&choices, &document, OrderingStrategy::Ilp, budget, &config);
        // invert the utility landscape: everything the plan chose is now
        // worthless, everything else is precious
        for c in &mut choices {
            c.utility = if first.batch.contains(&c.id) {
                0.01
            } else {
                50.0
            };
        }
        let second = planner.plan(&choices, &document, OrderingStrategy::Ilp, budget, &config);
        assert_ne!(
            second.method,
            BatchMethod::IncrementalRepair,
            "a drastic utility shift must trigger a full solve"
        );
        assert_eq!(planner.counters().repair_rejections, 1);
        assert_eq!(planner.counters().cold_solves, 2);
    }

    #[test]
    fn invalidate_drops_the_cache() {
        let (document, choices, config) = setup();
        let mut planner = IncrementalPlanner::new();
        let budget = 900.0;
        planner.plan(&choices, &document, OrderingStrategy::Ilp, budget, &config);
        planner.invalidate();
        planner.plan(&choices, &document, OrderingStrategy::Ilp, budget, &config);
        assert_eq!(planner.counters().cold_solves, 2);
        assert_eq!(planner.counters().incremental_repairs, 0);
    }

    #[test]
    fn non_ilp_strategies_pass_through() {
        let (document, choices, config) = setup();
        let mut planner = IncrementalPlanner::new();
        let sequential = planner.plan(
            &choices,
            &document,
            OrderingStrategy::Sequential,
            900.0,
            &config,
        );
        assert_eq!(sequential.method, BatchMethod::Sequential);
        let greedy = planner.plan(
            &choices,
            &document,
            OrderingStrategy::Greedy,
            900.0,
            &config,
        );
        assert_eq!(greedy.method, BatchMethod::Greedy);
        assert_eq!(planner.counters().plans, 2);
        assert_eq!(planner.counters().cold_solves, 0);
    }

    #[test]
    fn bound_dominates_any_feasible_batch() {
        let (document, choices, config) = setup();
        let budget = 900.0;
        let bound = optimistic_bound(&choices, &document, budget, &config);
        for strategy in [OrderingStrategy::Ilp, OrderingStrategy::Greedy] {
            let selection = select_batch_detailed(&choices, &document, strategy, budget, &config);
            assert!(
                selection.utility <= bound + 1e-9,
                "{strategy:?} beat the 'upper' bound: {} > {bound}",
                selection.utility
            );
        }
    }
}
