//! Verification screens (§5.1).
//!
//! Each screen shows ranked answer options for one query property; the final
//! screen shows full candidate queries with their values (Figure 3). Options
//! are ordered by descending probability — Corollary 2 proves this order
//! minimizes expected verification cost.

use crate::models::PropertyKind;
use crate::qgen::QueryCandidate;

/// One property screen.
#[derive(Debug, Clone)]
pub struct Screen {
    /// Property this screen verifies.
    pub kind: PropertyKind,
    /// `(label, probability)` options, probability-descending, truncated to
    /// the option budget.
    pub options: Vec<(String, f32)>,
}

impl Screen {
    /// Builds a screen from classifier candidates (already ranked).
    pub fn new(kind: PropertyKind, mut options: Vec<(String, f32)>, budget: usize) -> Self {
        debug_assert!(
            options.windows(2).all(|w| w[0].1 >= w[1].1),
            "options must arrive probability-descending (Corollary 2)"
        );
        options.truncate(budget);
        Screen { kind, options }
    }

    /// Probabilities of the shown options (input to Theorem 2's cost).
    pub fn probabilities(&self) -> Vec<f32> {
        self.options.iter().map(|(_, p)| *p).collect()
    }

    /// Option labels only.
    pub fn labels(&self) -> Vec<String> {
        self.options.iter().map(|(l, _)| l.clone()).collect()
    }
}

/// The final screen: candidate queries with their evaluated results.
#[derive(Debug, Clone)]
pub struct FinalScreen {
    /// Candidates shown, best first.
    pub candidates: Vec<QueryCandidate>,
    /// Probability estimate per candidate (from the formula classifier,
    /// renormalized over the shown set).
    pub probabilities: Vec<f32>,
}

impl FinalScreen {
    /// Builds the final screen from generated queries and the formula
    /// classifier's distribution.
    pub fn new(
        candidates: Vec<QueryCandidate>,
        formula_probabilities: &[(String, f32)],
        budget: usize,
    ) -> Self {
        let mut scored: Vec<(QueryCandidate, f32)> = candidates
            .into_iter()
            .map(|c| {
                let p = formula_probabilities
                    .iter()
                    .find(|(text, _)| *text == c.formula_text)
                    .map(|(_, p)| *p)
                    .unwrap_or(0.0);
                (c, p)
            })
            .collect();
        // stable by descending probability, matching queries first
        scored.sort_by(|a, b| {
            b.0.matches_parameter
                .cmp(&a.0.matches_parameter)
                .then(b.1.total_cmp(&a.1))
        });
        scored.truncate(budget);
        let total: f32 = scored.iter().map(|(_, p)| *p).sum();
        let probabilities = scored
            .iter()
            .map(|(_, p)| {
                if total > 0.0 {
                    p / total
                } else {
                    1.0 / scored.len().max(1) as f32
                }
            })
            .collect();
        FinalScreen {
            candidates: scored.into_iter().map(|(c, _)| c).collect(),
            probabilities,
        }
    }

    /// Rendered rows "SQL → value" exactly as checkers see them (Figure 3).
    pub fn rendered(&self) -> Vec<String> {
        self.candidates
            .iter()
            .map(|c| format!("{} \u{2192} {:.4}", c.stmt, c.value))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scrutinizer_formula::{instantiate, parse_formula, Lookup};

    fn candidate(formula: &str, value: f64, matches: bool) -> QueryCandidate {
        let f = parse_formula(formula).unwrap();
        let lookups: Vec<Lookup> = (0..f.value_var_count())
            .map(|i| Lookup::new("T", format!("K{i}"), "2017"))
            .collect();
        QueryCandidate {
            stmt: instantiate(&f, &lookups).unwrap(),
            formula_text: formula.to_string(),
            lookups,
            value,
            matches_parameter: matches,
        }
    }

    #[test]
    fn screen_truncates_to_budget() {
        let screen = Screen::new(
            PropertyKind::Relation,
            vec![("A".into(), 0.6), ("B".into(), 0.3), ("C".into(), 0.1)],
            2,
        );
        assert_eq!(screen.labels(), vec!["A", "B"]);
        assert_eq!(screen.probabilities(), vec![0.6, 0.3]);
    }

    #[test]
    fn final_screen_prefers_matching_queries() {
        let screen = FinalScreen::new(
            vec![
                candidate("a + b", 5.0, false),
                candidate("a / b", 3.0, true),
            ],
            &[("a + b".into(), 0.9), ("a / b".into(), 0.1)],
            5,
        );
        assert!(
            screen.candidates[0].matches_parameter,
            "match outranks probability"
        );
    }

    #[test]
    fn final_screen_probabilities_normalized() {
        let screen = FinalScreen::new(
            vec![candidate("a", 1.0, true), candidate("a / b", 2.0, true)],
            &[("a".into(), 0.6), ("a / b".into(), 0.2)],
            5,
        );
        let total: f32 = screen.probabilities.iter().sum();
        assert!((total - 1.0).abs() < 1e-6);
        assert!(screen.probabilities[0] > screen.probabilities[1]);
    }

    #[test]
    fn unknown_formulas_get_uniform_fallback() {
        let screen = FinalScreen::new(
            vec![candidate("a", 1.0, false), candidate("a / b", 2.0, false)],
            &[],
            5,
        );
        assert!((screen.probabilities[0] - 0.5).abs() < 1e-6);
    }

    #[test]
    fn rendered_rows_contain_sql_and_value() {
        let screen = FinalScreen::new(vec![candidate("a / b", 0.0298, true)], &[], 5);
        let rows = screen.rendered();
        assert_eq!(rows.len(), 1);
        assert!(rows[0].contains("SELECT"));
        assert!(rows[0].contains("0.0298"));
    }
}
