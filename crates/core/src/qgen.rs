//! Query generation — Algorithm 2.
//!
//! Input: validated/predicted relations `R`, keys `K`, attributes `A`,
//! ranked formulas `F`, and the explicit parameter `p` when present. The
//! algorithm collects all data values for `R × K × A` (line 7), tries every
//! assignment of those values to each formula's variables (lines 9–20),
//! keeps assignments matching `p` for explicit claims (or all evaluating
//! assignments otherwise), and rewrites the survivors into SQL (lines
//! 23–29). The brute force stays sub-second thanks to the pruning power of
//! the validated context — exactly the paper's observation.
//!
//! ## Prepared skeletons
//!
//! The inner loop runs hundreds of assignments per claim, so everything
//! name-shaped is resolved **once** before enumeration:
//!
//! * every `(relation, key, attribute)` triple becomes a `ResolvedCell`
//!   — a numeric [`CellRef`] handle plus the cell's `f64`, materialized
//!   once from the catalog's cached numeric views;
//! * every formula is compiled once into a flat postfix program whose
//!   function calls hold resolved `fn` pointers — the shared *prepared
//!   skeleton* all of the formula's assignments instantiate;
//! * an assignment is then just a vector of indices into the resolved
//!   values: evaluating it swaps bound row ids, touching no strings,
//!   printing no SQL and parsing nothing (a test pins the SQL parse count
//!   of this loop at zero).
//!
//! Only surviving candidates (a match, or a bounded set of alternatives)
//! are rewritten into [`SelectStmt`]s. The serving engine plugs a
//! query-result cache into the loop through [`AssignmentCache`], keyed by
//! the same `(formula, cells)` structural fingerprint. The pre-refactor
//! string-resolving implementation survives as
//! [`generate_queries_unprepared`], the differential-testing and
//! benchmarking baseline.

use crate::config::SystemConfig;
use scrutinizer_data::value::approx_eq_f64;
use scrutinizer_data::{Catalog, CellRef};
use scrutinizer_formula::{eval_formula, instantiate, Formula, Lookup};
use scrutinizer_query::eval::apply_binop;
use scrutinizer_query::functions::FnImpl;
use scrutinizer_query::{BinOp, FunctionRegistry, SelectStmt, UnaryOp};

/// One generated candidate query.
#[derive(Debug, Clone)]
pub struct QueryCandidate {
    /// The executable, human-readable statement.
    pub stmt: SelectStmt,
    /// The formula it instantiates (class label).
    pub formula_text: String,
    /// The variable bindings.
    pub lookups: Vec<Lookup>,
    /// The value the query evaluates to.
    pub value: f64,
    /// Whether the value matches the explicit parameter (within tolerance).
    pub matches_parameter: bool,
}

/// Cache hook for Algorithm 2's assignment evaluations.
///
/// The serving engine implements this over its sharded query-result cache:
/// the `(formula token, resolved cells)` pair is the structural fingerprint
/// of one prepared-assignment evaluation, shared across claims and
/// sessions. The library path uses [`NoCache`].
pub trait AssignmentCache {
    /// Whether probes do anything; the no-op impl opts out so the loop can
    /// skip building cell keys entirely.
    const ENABLED: bool = true;

    /// Called once per formula before its assignments are enumerated;
    /// returns the token passed back on every probe.
    fn formula_token(&mut self, formula_text: &str) -> u64;

    /// Probes the cache: `Some(outcome)` on a hit (`outcome` is `None`
    /// for a remembered failing assignment), `None` on a miss.
    fn get(&mut self, token: u64, cells: &[CellRef]) -> Option<Option<f64>>;

    /// Records an evaluation outcome.
    fn put(&mut self, token: u64, cells: &[CellRef], value: Option<f64>);
}

/// The no-op cache used by the plain library path.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoCache;

impl AssignmentCache for NoCache {
    const ENABLED: bool = false;

    fn formula_token(&mut self, _formula_text: &str) -> u64 {
        0
    }

    fn get(&mut self, _token: u64, _cells: &[CellRef]) -> Option<Option<f64>> {
        None
    }

    fn put(&mut self, _token: u64, _cells: &[CellRef], _value: Option<f64>) {}
}

/// A context cell resolved once before enumeration: the textual lookup it
/// came from, its numeric handle, and its materialized value.
#[derive(Debug, Clone)]
struct ResolvedCell {
    lookup: Lookup,
    cell: CellRef,
    value: f64,
    /// The attribute label parsed as a number (`A1`-style variables), or
    /// `None` for non-numeric labels like `Total`.
    attr_value: Option<f64>,
}

/// One instruction of a compiled formula (postfix order).
#[derive(Debug, Clone)]
enum FInstr {
    Const(f64),
    /// Push the value bound to value variable `i`.
    Var(u16),
    /// Push the numeric attribute label bound to value variable `i`
    /// (skips the assignment when the label is not numeric).
    AttrVar(u16),
    Neg,
    Bin(BinOp),
    Call {
        imp: FnImpl,
        argc: u16,
    },
}

/// A formula compiled against a function registry — the prepared skeleton
/// shared by every assignment of that formula.
///
/// This VM deliberately parallels `scrutinizer_query::prepared`'s rather
/// than sharing it: its leaves are assignment-indexed cells (`Var` /
/// `AttrVar`) instead of `(alias, column)` loads, and *every* failure
/// skips (Algorithm 2 swallows even unknown functions), where the query
/// VM must surface hard errors. Both reuse `apply_binop`/`FnImpl` for the
/// arithmetic itself, and the differential property tests pin each
/// against the string-path semantics.
#[derive(Debug, Clone)]
struct FormulaProgram {
    instrs: Vec<FInstr>,
    /// Unknown function or arity mismatch at compile time: the string path
    /// fails every assignment of such a formula, so the program evaluates
    /// to `None` without running (budget is still consumed per assignment).
    dead: bool,
}

impl FormulaProgram {
    fn compile(formula: &Formula, registry: &FunctionRegistry) -> FormulaProgram {
        let mut program = FormulaProgram {
            instrs: Vec::new(),
            dead: false,
        };
        program.push(formula, registry);
        program
    }

    fn push(&mut self, formula: &Formula, registry: &FunctionRegistry) {
        match formula {
            Formula::Const(n) => self.instrs.push(FInstr::Const(*n)),
            Formula::Var(i) => self.instrs.push(FInstr::Var(*i as u16)),
            Formula::AttrVar(i) => self.instrs.push(FInstr::AttrVar(*i as u16)),
            Formula::Unary {
                op: UnaryOp::Neg,
                expr,
            } => {
                self.push(expr, registry);
                self.instrs.push(FInstr::Neg);
            }
            Formula::Binary { op, left, right } => {
                self.push(left, registry);
                self.push(right, registry);
                self.instrs.push(FInstr::Bin(*op));
            }
            Formula::Func { name, args } => {
                for arg in args {
                    self.push(arg, registry);
                }
                match registry.get(name) {
                    Some(function) if function.arity.accepts(args.len()) => {
                        self.instrs.push(FInstr::Call {
                            imp: function.imp,
                            argc: args.len() as u16,
                        });
                    }
                    _ => self.dead = true,
                }
            }
        }
    }

    /// Evaluates one assignment (`assignment[i]` is the index into
    /// `values` bound to value variable `i`). `None` mirrors every failure
    /// the string path swallows: missing/non-numeric data, arithmetic
    /// errors, NaN-producing calls, and a non-finite final value.
    fn eval(
        &self,
        values: &[ResolvedCell],
        assignment: &[usize],
        stack: &mut Vec<f64>,
    ) -> Option<f64> {
        if self.dead {
            return None;
        }
        stack.clear();
        for instr in &self.instrs {
            match instr {
                FInstr::Const(n) => stack.push(*n),
                FInstr::Var(i) => stack.push(values[assignment[*i as usize]].value),
                FInstr::AttrVar(i) => {
                    stack.push(values[assignment[*i as usize]].attr_value?);
                }
                FInstr::Neg => {
                    let v = stack.pop().expect("compiled formula is balanced");
                    stack.push(-v);
                }
                FInstr::Bin(op) => {
                    let r = stack.pop().expect("compiled formula is balanced");
                    let l = stack.pop().expect("compiled formula is balanced");
                    stack.push(apply_binop(*op, l, r).ok()?);
                }
                FInstr::Call { imp, argc } => {
                    let split = stack.len() - *argc as usize;
                    let value = imp(&stack[split..]).ok().filter(|v| !v.is_nan())?;
                    stack.truncate(split);
                    stack.push(value);
                }
            }
        }
        stack.pop().filter(|v| v.is_finite())
    }
}

/// Resolves the `R × K × A` context (Algorithm 2 lines 5–8) to numeric
/// cell handles, in the same deterministic nesting order as the string
/// path.
fn resolve_context(
    catalog: &Catalog,
    relations: &[String],
    keys: &[String],
    attributes: &[String],
) -> Vec<ResolvedCell> {
    let mut values = Vec::new();
    for relation in relations {
        let Some(table_id) = catalog.resolve(relation) else {
            continue;
        };
        let table = catalog.table(table_id);
        for key in keys {
            let Some(row) = table.key_row(key) else {
                continue;
            };
            for attribute in attributes {
                let Some(col) = table.schema().column_index(attribute) else {
                    continue;
                };
                let Some(value) = table.numeric_view(col).get(row as usize) else {
                    continue;
                };
                values.push(ResolvedCell {
                    lookup: Lookup::new(relation.clone(), key.clone(), attribute.clone()),
                    cell: CellRef {
                        table: table_id,
                        row,
                        col: col as u32,
                    },
                    value,
                    attr_value: attribute.parse().ok(),
                });
            }
        }
    }
    values
}

/// Runs Algorithm 2.
///
/// `formulas` are `(text, formula)` in rank order; `parameter` is the
/// explicit claim parameter in *formula scale* (e.g. `0.03` for a growth of
/// 3 %). Returns matching candidates if any exist, otherwise all evaluating
/// candidates (line 27's `QA`) ranked by formula order — these are the
/// alternatives shown to checkers, and the closest one backs the suggested
/// correction of Example 4.
#[allow(clippy::too_many_arguments)] // Algorithm 2's inputs, verbatim
pub fn generate_queries(
    catalog: &Catalog,
    registry: &FunctionRegistry,
    relations: &[String],
    keys: &[String],
    attributes: &[String],
    formulas: &[(String, Formula)],
    parameter: Option<f64>,
    config: &SystemConfig,
) -> Vec<QueryCandidate> {
    generate_queries_with(
        catalog,
        registry,
        relations,
        keys,
        attributes,
        formulas,
        parameter,
        config,
        &mut NoCache,
    )
}

/// Algorithm 2 over prepared skeletons, with a pluggable assignment cache.
///
/// Enumeration, budgeting and ranking are identical to
/// [`generate_queries`] (which plugs in [`NoCache`]); the serving engine
/// supplies its sharded query-result cache so near-duplicate
/// instantiations across claims and sessions cost a hash probe on the
/// `(formula, cells)` structural fingerprint instead of an evaluation.
#[allow(clippy::too_many_arguments)]
pub fn generate_queries_with<C>(
    catalog: &Catalog,
    registry: &FunctionRegistry,
    relations: &[String],
    keys: &[String],
    attributes: &[String],
    formulas: &[(String, Formula)],
    parameter: Option<f64>,
    config: &SystemConfig,
    cache: &mut C,
) -> Vec<QueryCandidate>
where
    C: AssignmentCache,
{
    // lines 5-8: collect and resolve the available data values V = R × K × A
    let values = resolve_context(catalog, relations, keys, attributes);
    if values.is_empty() {
        return Vec::new();
    }

    let mut matched: Vec<QueryCandidate> = Vec::new();
    let mut alternatives: Vec<QueryCandidate> = Vec::new();
    let mut budget = config.max_assignments;
    let mut stack: Vec<f64> = Vec::new();
    let mut cells: Vec<CellRef> = Vec::new();

    for (text, formula) in formulas {
        let n = formula.value_var_count(); // line 11: GetVars(f)
        if n == 0 {
            continue;
        }
        // the prepared skeleton every assignment of this formula shares
        let program = FormulaProgram::compile(formula, registry);
        let token = cache.formula_token(text);
        // line 12-13: iterate assignments (permutations with repetition)
        let mut assignment = vec![0usize; n];
        'assignments: loop {
            if budget == 0 {
                break;
            }
            budget -= 1;
            let value = if C::ENABLED {
                cells.clear();
                cells.extend(assignment.iter().map(|&i| values[i].cell));
                match cache.get(token, &cells) {
                    Some(cached) => cached,
                    None => {
                        let computed = program.eval(&values, &assignment, &mut stack);
                        cache.put(token, &cells, computed);
                        computed
                    }
                }
            } else {
                program.eval(&values, &assignment, &mut stack)
            };
            if let Some(value) = value {
                let matches = parameter
                    .map(|p| approx_eq_f64(value, p, config.tolerance))
                    .unwrap_or(false);
                if matches {
                    // line 15-16: owned lookups materialize only here
                    let lookups: Vec<Lookup> = assignment
                        .iter()
                        .map(|&i| values[i].lookup.clone())
                        .collect();
                    if let Ok(stmt) = instantiate(formula, &lookups) {
                        matched.push(QueryCandidate {
                            stmt,
                            formula_text: text.clone(),
                            lookups,
                            value,
                            matches_parameter: true,
                        });
                    }
                } else if matched.is_empty() && alternatives.len() < config.final_options * 4 {
                    // line 17-18 (bounded: we only ever show a handful)
                    let lookups: Vec<Lookup> = assignment
                        .iter()
                        .map(|&i| values[i].lookup.clone())
                        .collect();
                    if let Ok(stmt) = instantiate(formula, &lookups) {
                        alternatives.push(QueryCandidate {
                            stmt,
                            formula_text: text.clone(),
                            lookups,
                            value,
                            matches_parameter: false,
                        });
                    }
                }
            }
            // odometer over value indices
            let mut d = n;
            loop {
                if d == 0 {
                    break 'assignments;
                }
                d -= 1;
                assignment[d] += 1;
                if assignment[d] < values.len() {
                    break;
                }
                assignment[d] = 0;
            }
        }
        if budget == 0 {
            break;
        }
    }

    rank(matched, alternatives, parameter)
}

/// The pre-refactor Algorithm 2: per-assignment `Vec<Lookup>` clones and
/// string-resolving [`eval_formula`] calls.
///
/// Kept as the behavioral baseline: the property tests assert
/// [`generate_queries`] produces identical candidates, and
/// `crates/bench/benches/prepared.rs` measures the speedup.
#[allow(clippy::too_many_arguments)]
pub fn generate_queries_unprepared(
    catalog: &Catalog,
    registry: &FunctionRegistry,
    relations: &[String],
    keys: &[String],
    attributes: &[String],
    formulas: &[(String, Formula)],
    parameter: Option<f64>,
    config: &SystemConfig,
) -> Vec<QueryCandidate> {
    // line 5-8: collect the available data values V = R × K × A
    let mut values: Vec<Lookup> = Vec::new();
    for relation in relations {
        let Ok(table) = catalog.get(relation) else {
            continue;
        };
        for key in keys {
            if !table.contains_key(key) {
                continue;
            }
            for attribute in attributes {
                if let Ok(v) = table.get(key, attribute) {
                    if v.is_numeric() {
                        values.push(Lookup::new(
                            relation.clone(),
                            key.clone(),
                            attribute.clone(),
                        ));
                    }
                }
            }
        }
    }
    if values.is_empty() {
        return Vec::new();
    }

    let mut matched: Vec<QueryCandidate> = Vec::new();
    let mut alternatives: Vec<QueryCandidate> = Vec::new();
    let mut budget = config.max_assignments;

    for (text, formula) in formulas {
        let n = formula.value_var_count(); // line 11: GetVars(f)
        if n == 0 {
            continue;
        }
        // line 12-13: iterate assignments (permutations with repetition)
        let mut index = vec![0usize; n];
        'assignments: loop {
            if budget == 0 {
                break;
            }
            budget -= 1;
            let lookups: Vec<Lookup> = index.iter().map(|&i| values[i].clone()).collect();
            let value = eval_formula(catalog, registry, formula, &lookups)
                .ok()
                .filter(|v| v.is_finite());
            if let Some(value) = value {
                let matches = parameter
                    .map(|p| approx_eq_f64(value, p, config.tolerance))
                    .unwrap_or(false);
                if matches {
                    // line 15-16
                    if let Ok(stmt) = instantiate(formula, &lookups) {
                        matched.push(QueryCandidate {
                            stmt,
                            formula_text: text.clone(),
                            lookups,
                            value,
                            matches_parameter: true,
                        });
                    }
                } else if matched.is_empty() && alternatives.len() < config.final_options * 4 {
                    // line 17-18 (bounded: we only ever show a handful)
                    if let Ok(stmt) = instantiate(formula, &lookups) {
                        alternatives.push(QueryCandidate {
                            stmt,
                            formula_text: text.clone(),
                            lookups,
                            value,
                            matches_parameter: false,
                        });
                    }
                }
            }
            // odometer over value indices
            let mut d = n;
            loop {
                if d == 0 {
                    break 'assignments;
                }
                d -= 1;
                index[d] += 1;
                if index[d] < values.len() {
                    break;
                }
                index[d] = 0;
            }
        }
        if budget == 0 {
            break;
        }
    }

    rank(matched, alternatives, parameter)
}

/// Lines 23-29: matching queries win; otherwise the alternatives, ranked
/// by closeness to the parameter when explicit.
fn rank(
    matched: Vec<QueryCandidate>,
    mut alternatives: Vec<QueryCandidate>,
    parameter: Option<f64>,
) -> Vec<QueryCandidate> {
    if !matched.is_empty() {
        matched
    } else {
        if let Some(p) = parameter {
            alternatives.sort_by(|a, b| {
                let da = relative_distance(a.value, p);
                let db = relative_distance(b.value, p);
                da.total_cmp(&db)
            });
        }
        alternatives
    }
}

/// Builds one property's query-generation context: the crowd-validated
/// answer first (when present), padded with up to `extra` classifier
/// candidates, deduplicated. Shared by the one-shot verifier and the
/// serving engine so both build identical contexts.
pub fn padded_context(
    validated: Option<&str>,
    candidates: &[(String, f32)],
    extra: usize,
) -> Vec<String> {
    let mut values: Vec<String> = Vec::new();
    if let Some(v) = validated {
        values.push(v.to_string());
    }
    for (label, _) in candidates.iter().take(extra) {
        if !values.contains(label) {
            values.push(label.clone());
        }
    }
    values
}

fn relative_distance(value: f64, parameter: f64) -> f64 {
    (value - parameter).abs() / parameter.abs().max(1e-9)
}

#[cfg(test)]
mod tests {
    use super::*;
    use scrutinizer_data::TableBuilder;
    use scrutinizer_formula::parse_formula;

    fn catalog() -> Catalog {
        let mut cat = Catalog::new();
        cat.add(
            TableBuilder::new("GED", "Index", &["2000", "2016", "2017"])
                .row("PGElecDemand", &[15_000.0, 21_566.0, 22_209.0])
                .unwrap()
                .row("CapAddTotal_Wind", &[5.8, 30.0, 52.2])
                .unwrap()
                .build(),
        )
        .unwrap();
        cat
    }

    fn formulas(texts: &[&str]) -> Vec<(String, Formula)> {
        texts
            .iter()
            .map(|t| (t.to_string(), parse_formula(t).unwrap()))
            .collect()
    }

    fn strs(items: &[&str]) -> Vec<String> {
        items.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn example_10_finds_the_growth_query() {
        // context: GED / PGElecDemand / {2016, 2017}; formulas ranked with
        // the growth formula first; parameter 3% → one matching binding
        let cat = catalog();
        let registry = FunctionRegistry::standard();
        let out = generate_queries(
            &cat,
            &registry,
            &strs(&["GED"]),
            &strs(&["PGElecDemand"]),
            &strs(&["2016", "2017"]),
            &formulas(&["POWER(a / b, 1 / (A1 - A2)) - 1", "a + b > 0"]),
            Some(0.03),
            &SystemConfig::test(),
        );
        assert!(!out.is_empty());
        assert!(out.iter().all(|c| c.matches_parameter));
        let best = &out[0];
        assert!((best.value - 0.0298).abs() < 1e-3);
        assert!(best.stmt.to_string().contains("POWER"));
        // both (2017, 2016) and its algebraic mirror (2016, 2017) verify the
        // claim; the binding must use exactly those two attributes
        let mut attrs: Vec<&str> = best.lookups.iter().map(|l| l.attribute.as_str()).collect();
        attrs.sort_unstable();
        assert_eq!(attrs, vec!["2016", "2017"]);
    }

    #[test]
    fn false_claim_yields_alternatives_with_closest_first() {
        // Example 4: claim says 2.5% but the data says 3% — no match, and
        // the closest alternative carries the correct value
        let cat = catalog();
        let registry = FunctionRegistry::standard();
        let out = generate_queries(
            &cat,
            &registry,
            &strs(&["GED"]),
            &strs(&["PGElecDemand"]),
            &strs(&["2016", "2017"]),
            &formulas(&["POWER(a / b, 1 / (A1 - A2)) - 1"]),
            Some(0.025),
            &SystemConfig::test(),
        );
        assert!(!out.is_empty());
        assert!(out.iter().all(|c| !c.matches_parameter));
        assert!(
            (out[0].value - 0.0298).abs() < 1e-3,
            "closest alternative suggests the 3% correction, got {}",
            out[0].value
        );
    }

    #[test]
    fn ninefold_ratio_query() {
        let cat = catalog();
        let registry = FunctionRegistry::standard();
        let out = generate_queries(
            &cat,
            &registry,
            &strs(&["GED"]),
            &strs(&["CapAddTotal_Wind"]),
            &strs(&["2000", "2017"]),
            &formulas(&["a / b"]),
            Some(9.0),
            &SystemConfig::test(),
        );
        assert!(!out.is_empty());
        assert!((out[0].value - 9.0).abs() < 0.05);
    }

    #[test]
    fn general_claims_return_all_evaluating_bindings() {
        let cat = catalog();
        let registry = FunctionRegistry::standard();
        let out = generate_queries(
            &cat,
            &registry,
            &strs(&["GED"]),
            &strs(&["CapAddTotal_Wind"]),
            &strs(&["2000", "2017"]),
            &formulas(&["a / b > 1"]),
            None,
            &SystemConfig::test(),
        );
        assert!(!out.is_empty());
        assert!(out.iter().all(|c| !c.matches_parameter));
    }

    #[test]
    fn empty_context_produces_nothing() {
        let cat = catalog();
        let registry = FunctionRegistry::standard();
        let out = generate_queries(
            &cat,
            &registry,
            &strs(&["Missing"]),
            &strs(&["PGElecDemand"]),
            &strs(&["2017"]),
            &formulas(&["a"]),
            Some(1.0),
            &SystemConfig::test(),
        );
        assert!(out.is_empty());
    }

    #[test]
    fn assignment_budget_is_respected() {
        let cat = catalog();
        let registry = FunctionRegistry::standard();
        let mut config = SystemConfig::test();
        config.max_assignments = 3; // absurdly small
        let out = generate_queries(
            &cat,
            &registry,
            &strs(&["GED"]),
            &strs(&["PGElecDemand", "CapAddTotal_Wind"]),
            &strs(&["2000", "2016", "2017"]),
            &formulas(&["a / b"]),
            Some(1.0),
            &config,
        );
        // must terminate quickly; result may be incomplete but bounded
        assert!(out.len() <= 12);
    }

    #[test]
    fn cross_relation_bindings_work() {
        let mut cat = catalog();
        cat.add(
            TableBuilder::new("GED_EU", "Index", &["2017"])
                .row("PGElecDemand", &[3_350.0])
                .unwrap()
                .build(),
        )
        .unwrap();
        let registry = FunctionRegistry::standard();
        let out = generate_queries(
            &cat,
            &registry,
            &strs(&["GED", "GED_EU"]),
            &strs(&["PGElecDemand"]),
            &strs(&["2017"]),
            &formulas(&["a / b"]),
            Some(22_209.0 / 3_350.0),
            &SystemConfig::test(),
        );
        assert!(out.iter().any(|c| {
            c.matches_parameter
                && c.lookups[0].relation == "GED"
                && c.lookups[1].relation == "GED_EU"
        }));
    }

    /// A recording cache that remembers everything and replays on re-run.
    #[derive(Default)]
    struct MemoCache {
        tokens: Vec<String>,
        map: std::collections::HashMap<(u64, Vec<CellRef>), Option<f64>>,
        hits: usize,
        misses: usize,
    }

    impl AssignmentCache for MemoCache {
        fn formula_token(&mut self, text: &str) -> u64 {
            if let Some(i) = self.tokens.iter().position(|t| t == text) {
                i as u64
            } else {
                self.tokens.push(text.to_string());
                (self.tokens.len() - 1) as u64
            }
        }

        fn get(&mut self, token: u64, cells: &[CellRef]) -> Option<Option<f64>> {
            match self.map.get(&(token, cells.to_vec())) {
                Some(&cached) => {
                    self.hits += 1;
                    Some(cached)
                }
                None => {
                    self.misses += 1;
                    None
                }
            }
        }

        fn put(&mut self, token: u64, cells: &[CellRef], value: Option<f64>) {
            self.map.insert((token, cells.to_vec()), value);
        }
    }

    #[test]
    fn cached_path_is_identical_and_hits_on_rerun() {
        let cat = catalog();
        let registry = FunctionRegistry::standard();
        let config = SystemConfig::test();
        let args = (
            strs(&["GED"]),
            strs(&["PGElecDemand", "CapAddTotal_Wind"]),
            strs(&["2000", "2016", "2017"]),
            formulas(&["POWER(a / b, 1 / (A1 - A2)) - 1", "a / b"]),
        );
        let plain = generate_queries(
            &cat,
            &registry,
            &args.0,
            &args.1,
            &args.2,
            &args.3,
            Some(0.03),
            &config,
        );
        let mut memo = MemoCache::default();
        let cached = generate_queries_with(
            &cat,
            &registry,
            &args.0,
            &args.1,
            &args.2,
            &args.3,
            Some(0.03),
            &config,
            &mut memo,
        );
        assert_eq!(plain.len(), cached.len());
        for (a, b) in plain.iter().zip(&cached) {
            assert_eq!(a.stmt, b.stmt);
            assert_eq!(a.value, b.value);
        }
        assert_eq!(memo.hits, 0);
        let misses = memo.misses;
        let rerun = generate_queries_with(
            &cat,
            &registry,
            &args.0,
            &args.1,
            &args.2,
            &args.3,
            Some(0.03),
            &config,
            &mut memo,
        );
        assert_eq!(rerun.len(), cached.len());
        assert_eq!(memo.misses, misses, "re-run must be all hits");
        assert!(memo.hits > 0);
    }

    #[test]
    fn prepared_matches_unprepared_on_mixed_contexts() {
        let mut cat = catalog();
        cat.add(
            TableBuilder::new("Mixed", "Index", &["2017", "Total"])
                .row_opt("PGElecDemand", &[Some(7.0), None])
                .unwrap()
                .build(),
        )
        .unwrap();
        let registry = FunctionRegistry::standard();
        let config = SystemConfig::test();
        for (formulas, parameter) in [
            (formulas(&["a / b", "a - b"]), Some(1.5)),
            (formulas(&["POWER(a / b, 1 / (A1 - A2)) - 1"]), Some(0.03)),
            (formulas(&["NOPE(a)", "a / b"]), Some(9.0)), // dead formula consumes budget
            (formulas(&["a + A1"]), None),
        ] {
            let prepared = generate_queries(
                &cat,
                &registry,
                &strs(&["GED", "Mixed", "Missing"]),
                &strs(&["PGElecDemand", "CapAddTotal_Wind", "Nope"]),
                &strs(&["2000", "2016", "2017", "Total", "1999"]),
                &formulas,
                parameter,
                &config,
            );
            let legacy = generate_queries_unprepared(
                &cat,
                &registry,
                &strs(&["GED", "Mixed", "Missing"]),
                &strs(&["PGElecDemand", "CapAddTotal_Wind", "Nope"]),
                &strs(&["2000", "2016", "2017", "Total", "1999"]),
                &formulas,
                parameter,
                &config,
            );
            assert_eq!(prepared.len(), legacy.len());
            for (a, b) in prepared.iter().zip(&legacy) {
                assert_eq!(a.stmt, b.stmt);
                assert_eq!(a.lookups, b.lookups);
                assert_eq!(a.value, b.value);
                assert_eq!(a.matches_parameter, b.matches_parameter);
            }
        }
    }
}
