//! Query generation — Algorithm 2.
//!
//! Input: validated/predicted relations `R`, keys `K`, attributes `A`,
//! ranked formulas `F`, and the explicit parameter `p` when present. The
//! algorithm collects all data values for `R × K × A` (line 7), tries every
//! assignment of those values to each formula's variables (lines 9–20),
//! keeps assignments matching `p` for explicit claims (or all evaluating
//! assignments otherwise), and rewrites the survivors into SQL (lines
//! 23–29). The brute force stays sub-second thanks to the pruning power of
//! the validated context — exactly the paper's observation.

use crate::config::SystemConfig;
use scrutinizer_data::value::approx_eq_f64;
use scrutinizer_data::Catalog;
use scrutinizer_formula::{eval_formula, instantiate, Formula, Lookup};
use scrutinizer_query::{FunctionRegistry, SelectStmt};

/// One generated candidate query.
#[derive(Debug, Clone)]
pub struct QueryCandidate {
    /// The executable, human-readable statement.
    pub stmt: SelectStmt,
    /// The formula it instantiates (class label).
    pub formula_text: String,
    /// The variable bindings.
    pub lookups: Vec<Lookup>,
    /// The value the query evaluates to.
    pub value: f64,
    /// Whether the value matches the explicit parameter (within tolerance).
    pub matches_parameter: bool,
}

/// Runs Algorithm 2.
///
/// `formulas` are `(text, formula)` in rank order; `parameter` is the
/// explicit claim parameter in *formula scale* (e.g. `0.03` for a growth of
/// 3 %). Returns matching candidates if any exist, otherwise all evaluating
/// candidates (line 27's `QA`) ranked by formula order — these are the
/// alternatives shown to checkers, and the closest one backs the suggested
/// correction of Example 4.
#[allow(clippy::too_many_arguments)] // Algorithm 2's inputs, verbatim
pub fn generate_queries(
    catalog: &Catalog,
    registry: &FunctionRegistry,
    relations: &[String],
    keys: &[String],
    attributes: &[String],
    formulas: &[(String, Formula)],
    parameter: Option<f64>,
    config: &SystemConfig,
) -> Vec<QueryCandidate> {
    generate_queries_with(
        catalog,
        relations,
        keys,
        attributes,
        formulas,
        parameter,
        config,
        |_, formula, lookups| {
            eval_formula(catalog, registry, formula, lookups)
                .ok()
                .filter(|v| v.is_finite())
        },
    )
}

/// Algorithm 2 with a pluggable assignment evaluator.
///
/// `evaluate` receives `(formula_text, formula, lookups)` and returns the
/// assignment's finite value, or `None` when it does not evaluate. This is
/// the seam the serving engine uses to route every evaluation through its
/// query-result cache; [`generate_queries`] plugs in plain
/// [`eval_formula`]. Enumeration, budgeting and ranking are identical for
/// both callers by construction.
#[allow(clippy::too_many_arguments)]
pub fn generate_queries_with<E>(
    catalog: &Catalog,
    relations: &[String],
    keys: &[String],
    attributes: &[String],
    formulas: &[(String, Formula)],
    parameter: Option<f64>,
    config: &SystemConfig,
    mut evaluate: E,
) -> Vec<QueryCandidate>
where
    E: FnMut(&str, &Formula, &[Lookup]) -> Option<f64>,
{
    // line 5-8: collect the available data values V = R × K × A
    let mut values: Vec<Lookup> = Vec::new();
    for relation in relations {
        let Ok(table) = catalog.get(relation) else {
            continue;
        };
        for key in keys {
            if !table.contains_key(key) {
                continue;
            }
            for attribute in attributes {
                if let Ok(v) = table.get(key, attribute) {
                    if v.is_numeric() {
                        values.push(Lookup::new(
                            relation.clone(),
                            key.clone(),
                            attribute.clone(),
                        ));
                    }
                }
            }
        }
    }
    if values.is_empty() {
        return Vec::new();
    }

    let mut matched: Vec<QueryCandidate> = Vec::new();
    let mut alternatives: Vec<QueryCandidate> = Vec::new();
    let mut budget = config.max_assignments;

    for (text, formula) in formulas {
        let n = formula.value_var_count(); // line 11: GetVars(f)
        if n == 0 || values.len().pow(n as u32) == 0 {
            continue;
        }
        // line 12-13: iterate assignments (permutations with repetition)
        let mut index = vec![0usize; n];
        'assignments: loop {
            if budget == 0 {
                break;
            }
            budget -= 1;
            let lookups: Vec<Lookup> = index.iter().map(|&i| values[i].clone()).collect();
            if let Some(value) = evaluate(text, formula, &lookups) {
                let matches = parameter
                    .map(|p| approx_eq_f64(value, p, config.tolerance))
                    .unwrap_or(false);
                if matches {
                    // line 15-16
                    if let Ok(stmt) = instantiate(formula, &lookups) {
                        matched.push(QueryCandidate {
                            stmt,
                            formula_text: text.clone(),
                            lookups,
                            value,
                            matches_parameter: true,
                        });
                    }
                } else if matched.is_empty() && alternatives.len() < config.final_options * 4 {
                    // line 17-18 (bounded: we only ever show a handful)
                    if let Ok(stmt) = instantiate(formula, &lookups) {
                        alternatives.push(QueryCandidate {
                            stmt,
                            formula_text: text.clone(),
                            lookups,
                            value,
                            matches_parameter: false,
                        });
                    }
                }
            }
            // odometer over value indices
            let mut d = n;
            loop {
                if d == 0 {
                    break 'assignments;
                }
                d -= 1;
                index[d] += 1;
                if index[d] < values.len() {
                    break;
                }
                index[d] = 0;
            }
        }
        if budget == 0 {
            break;
        }
    }

    // lines 23-29: matching queries win; otherwise return the alternatives
    if !matched.is_empty() {
        matched
    } else {
        // rank alternatives by closeness to the parameter when explicit
        if let Some(p) = parameter {
            alternatives.sort_by(|a, b| {
                let da = relative_distance(a.value, p);
                let db = relative_distance(b.value, p);
                da.total_cmp(&db)
            });
        }
        alternatives
    }
}

/// Builds one property's query-generation context: the crowd-validated
/// answer first (when present), padded with up to `extra` classifier
/// candidates, deduplicated. Shared by the one-shot verifier and the
/// serving engine so both build identical contexts.
pub fn padded_context(
    validated: Option<&str>,
    candidates: &[(String, f32)],
    extra: usize,
) -> Vec<String> {
    let mut values: Vec<String> = Vec::new();
    if let Some(v) = validated {
        values.push(v.to_string());
    }
    for (label, _) in candidates.iter().take(extra) {
        if !values.contains(label) {
            values.push(label.clone());
        }
    }
    values
}

fn relative_distance(value: f64, parameter: f64) -> f64 {
    (value - parameter).abs() / parameter.abs().max(1e-9)
}

#[cfg(test)]
mod tests {
    use super::*;
    use scrutinizer_data::TableBuilder;
    use scrutinizer_formula::parse_formula;

    fn catalog() -> Catalog {
        let mut cat = Catalog::new();
        cat.add(
            TableBuilder::new("GED", "Index", &["2000", "2016", "2017"])
                .row("PGElecDemand", &[15_000.0, 21_566.0, 22_209.0])
                .unwrap()
                .row("CapAddTotal_Wind", &[5.8, 30.0, 52.2])
                .unwrap()
                .build(),
        )
        .unwrap();
        cat
    }

    fn formulas(texts: &[&str]) -> Vec<(String, Formula)> {
        texts
            .iter()
            .map(|t| (t.to_string(), parse_formula(t).unwrap()))
            .collect()
    }

    fn strs(items: &[&str]) -> Vec<String> {
        items.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn example_10_finds_the_growth_query() {
        // context: GED / PGElecDemand / {2016, 2017}; formulas ranked with
        // the growth formula first; parameter 3% → one matching binding
        let cat = catalog();
        let registry = FunctionRegistry::standard();
        let out = generate_queries(
            &cat,
            &registry,
            &strs(&["GED"]),
            &strs(&["PGElecDemand"]),
            &strs(&["2016", "2017"]),
            &formulas(&["POWER(a / b, 1 / (A1 - A2)) - 1", "a + b > 0"]),
            Some(0.03),
            &SystemConfig::test(),
        );
        assert!(!out.is_empty());
        assert!(out.iter().all(|c| c.matches_parameter));
        let best = &out[0];
        assert!((best.value - 0.0298).abs() < 1e-3);
        assert!(best.stmt.to_string().contains("POWER"));
        // both (2017, 2016) and its algebraic mirror (2016, 2017) verify the
        // claim; the binding must use exactly those two attributes
        let mut attrs: Vec<&str> = best.lookups.iter().map(|l| l.attribute.as_str()).collect();
        attrs.sort_unstable();
        assert_eq!(attrs, vec!["2016", "2017"]);
    }

    #[test]
    fn false_claim_yields_alternatives_with_closest_first() {
        // Example 4: claim says 2.5% but the data says 3% — no match, and
        // the closest alternative carries the correct value
        let cat = catalog();
        let registry = FunctionRegistry::standard();
        let out = generate_queries(
            &cat,
            &registry,
            &strs(&["GED"]),
            &strs(&["PGElecDemand"]),
            &strs(&["2016", "2017"]),
            &formulas(&["POWER(a / b, 1 / (A1 - A2)) - 1"]),
            Some(0.025),
            &SystemConfig::test(),
        );
        assert!(!out.is_empty());
        assert!(out.iter().all(|c| !c.matches_parameter));
        assert!(
            (out[0].value - 0.0298).abs() < 1e-3,
            "closest alternative suggests the 3% correction, got {}",
            out[0].value
        );
    }

    #[test]
    fn ninefold_ratio_query() {
        let cat = catalog();
        let registry = FunctionRegistry::standard();
        let out = generate_queries(
            &cat,
            &registry,
            &strs(&["GED"]),
            &strs(&["CapAddTotal_Wind"]),
            &strs(&["2000", "2017"]),
            &formulas(&["a / b"]),
            Some(9.0),
            &SystemConfig::test(),
        );
        assert!(!out.is_empty());
        assert!((out[0].value - 9.0).abs() < 0.05);
    }

    #[test]
    fn general_claims_return_all_evaluating_bindings() {
        let cat = catalog();
        let registry = FunctionRegistry::standard();
        let out = generate_queries(
            &cat,
            &registry,
            &strs(&["GED"]),
            &strs(&["CapAddTotal_Wind"]),
            &strs(&["2000", "2017"]),
            &formulas(&["a / b > 1"]),
            None,
            &SystemConfig::test(),
        );
        assert!(!out.is_empty());
        assert!(out.iter().all(|c| !c.matches_parameter));
    }

    #[test]
    fn empty_context_produces_nothing() {
        let cat = catalog();
        let registry = FunctionRegistry::standard();
        let out = generate_queries(
            &cat,
            &registry,
            &strs(&["Missing"]),
            &strs(&["PGElecDemand"]),
            &strs(&["2017"]),
            &formulas(&["a"]),
            Some(1.0),
            &SystemConfig::test(),
        );
        assert!(out.is_empty());
    }

    #[test]
    fn assignment_budget_is_respected() {
        let cat = catalog();
        let registry = FunctionRegistry::standard();
        let mut config = SystemConfig::test();
        config.max_assignments = 3; // absurdly small
        let out = generate_queries(
            &cat,
            &registry,
            &strs(&["GED"]),
            &strs(&["PGElecDemand", "CapAddTotal_Wind"]),
            &strs(&["2000", "2016", "2017"]),
            &formulas(&["a / b"]),
            Some(1.0),
            &config,
        );
        // must terminate quickly; result may be incomplete but bounded
        assert!(out.len() <= 12);
    }

    #[test]
    fn cross_relation_bindings_work() {
        let mut cat = catalog();
        cat.add(
            TableBuilder::new("GED_EU", "Index", &["2017"])
                .row("PGElecDemand", &[3_350.0])
                .unwrap()
                .build(),
        )
        .unwrap();
        let registry = FunctionRegistry::standard();
        let out = generate_queries(
            &cat,
            &registry,
            &strs(&["GED", "GED_EU"]),
            &strs(&["PGElecDemand"]),
            &strs(&["2017"]),
            &formulas(&["a / b"]),
            Some(22_209.0 / 3_350.0),
            &SystemConfig::test(),
        );
        assert!(out.iter().any(|c| {
            c.matches_parameter
                && c.lookups[0].relation == "GED"
                && c.lookups[1].relation == "GED_EU"
        }));
    }
}
