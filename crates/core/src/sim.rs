//! The paper's experiments as runnable simulations.

pub mod report;
pub mod topk;
pub mod user_study;
