//! System-wide configuration.

use scrutinizer_crowd::CostModel;
use scrutinizer_learn::TrainConfig;
use scrutinizer_text::FeaturizerConfig;

/// All the knobs of the Scrutinizer system, with the defaults the paper's
/// experiments use.
#[derive(Debug, Clone, Copy)]
pub struct SystemConfig {
    /// Crowd cost model (v_p, v_f, s_p, s_f).
    pub cost: CostModel,
    /// Claim featurizer parameters.
    pub featurizer: FeaturizerConfig,
    /// Classifier training parameters.
    pub training: TrainConfig,
    /// Answer options shown per property screen (§6.2 uses ten).
    pub options_per_screen: usize,
    /// Query candidates shown on the final screen.
    pub final_options: usize,
    /// Claims per batch between retrains (§6.2 uses 100).
    pub batch_size: usize,
    /// Admissible relative error `e` for explicit claims (Definition 2).
    pub tolerance: f64,
    /// Cap on value-assignment enumeration inside query generation —
    /// Algorithm 2's brute-force loop is bounded to keep the sub-second
    /// budget of §6.1.
    pub max_assignments: usize,
    /// Candidate window for batch selection: the ILP selects from this many
    /// highest-utility unverified claims (keeps the model at the size
    /// Theorem 8 promises while claims number in the thousands).
    pub ordering_window: usize,
    /// Skim cost per sentence when a checker reads a section (Definition 8).
    pub read_seconds_per_sentence: f64,
    /// Weight `w_u` of training utility against cost in the batch objective
    /// (Definition 9's weighted variant).
    pub utility_weight: f64,
    /// Skip a property screen when the classifier's top prediction exceeds
    /// this probability — §5.1's ideal case where "crowd workers only need
    /// to verify the proposed translation". The skipped property's top
    /// prediction enters the context unasked.
    pub screen_skip_confidence: f32,
    /// Relative gap at which the incremental planner accepts a repaired
    /// batch instead of re-solving cold: a repair is kept while its utility
    /// stays within `replan_gap` of an optimistic bound on the achievable
    /// optimum (see `incremental`).
    pub replan_gap: f64,
    /// Worker threads for the parallel batch-selection solver; `0` uses the
    /// machine's available parallelism.
    pub planner_threads: usize,
    /// Master seed for the crowd and any tie-breaking.
    pub seed: u64,
}

impl Default for SystemConfig {
    fn default() -> Self {
        SystemConfig {
            cost: CostModel::default(),
            featurizer: FeaturizerConfig::default(),
            training: TrainConfig::default(),
            options_per_screen: 10,
            final_options: 5,
            batch_size: 100,
            tolerance: 0.05,
            max_assignments: 50_000,
            ordering_window: 150,
            read_seconds_per_sentence: 1.5,
            utility_weight: 60.0,
            screen_skip_confidence: 0.85,
            replan_gap: 0.15,
            planner_threads: 0,
            seed: 17,
        }
    }
}

impl SystemConfig {
    /// Smaller, faster settings for unit tests.
    pub fn test() -> Self {
        SystemConfig {
            options_per_screen: 5,
            final_options: 3,
            batch_size: 20,
            ordering_window: 60,
            max_assignments: 10_000,
            ..Default::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = SystemConfig::default();
        assert_eq!(c.options_per_screen, 10, "§6.2: ten answer options");
        assert_eq!(c.batch_size, 100, "§6.2: batches of 100");
        assert!((c.tolerance - 0.05).abs() < 1e-12);
    }

    #[test]
    fn option_budget_within_corollary1() {
        let c = SystemConfig::default();
        // ten options per screen stays within Corollary 1's n_op = s_f/v_f
        assert!(c.options_per_screen <= c.cost.max_options() + 2);
    }
}
