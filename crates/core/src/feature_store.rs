//! The corpus-wide feature store: every claim featurized exactly once.
//!
//! Before PR 4, each subsystem re-featurized claims from raw text on its
//! own schedule — `retrain` re-ran tokenization over the whole verified
//! history on every threshold crossing, `accuracy_on` re-featurized its
//! batch, and the engine stored one owned `SparseVector` per live claim
//! task. The store materializes the whole corpus into one CSR
//! [`FeatureMatrix`] at bootstrap and hands out borrowed rows, so
//! translation, utility scoring, retraining and accuracy traces all share
//! the same bytes.
//!
//! The store is immutable after construction (claim text never changes),
//! which is what lets the engine share it between concurrent readers and
//! the background trainer without any locking.

use crate::models::SystemModels;
use scrutinizer_corpus::Corpus;
use scrutinizer_text::{FeatureMatrix, SparseView};

/// Immutable per-claim features for a whole corpus, row `i` holding the
/// features of claim id `i`.
#[derive(Debug, Clone)]
pub struct FeatureStore {
    matrix: FeatureMatrix,
}

impl FeatureStore {
    /// Featurizes every claim of the corpus once with the models' fitted
    /// featurizer.
    pub fn build(corpus: &Corpus, models: &SystemModels) -> Self {
        let matrix = models.featurizer().features_batch(
            corpus
                .claims
                .iter()
                .map(|c| (c.claim_text.as_str(), c.sentence_text.as_str())),
        );
        FeatureStore { matrix }
    }

    /// Borrowed features of one claim.
    ///
    /// # Panics
    /// Panics if `claim_id` is outside the corpus.
    pub fn features(&self, claim_id: usize) -> SparseView<'_> {
        self.matrix.row(claim_id)
    }

    /// Number of claims stored.
    pub fn len(&self) -> usize {
        self.matrix.rows()
    }

    /// True when the corpus had no claims.
    pub fn is_empty(&self) -> bool {
        self.matrix.is_empty()
    }

    /// The backing CSR matrix (all claims, id order).
    pub fn matrix(&self) -> &FeatureMatrix {
        &self.matrix
    }

    /// Copies the selected claims' rows into a batch matrix, in the given
    /// order — the input shape of
    /// [`SystemModels::training_utilities`].
    pub fn gather(&self, claim_ids: &[usize]) -> FeatureMatrix {
        self.matrix.gather(claim_ids)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SystemConfig;
    use scrutinizer_corpus::CorpusConfig;

    #[test]
    fn store_rows_match_one_at_a_time_featurization() {
        let corpus = Corpus::generate(CorpusConfig::small());
        let models = SystemModels::bootstrap(&corpus, &SystemConfig::test());
        let store = FeatureStore::build(&corpus, &models);
        assert_eq!(store.len(), corpus.claims.len());
        assert!(!store.is_empty());
        for id in [0, 1, corpus.claims.len() - 1] {
            let single = models.features(&corpus.claims[id]);
            assert_eq!(
                store.features(id).to_owned_vector(),
                single,
                "claim {id} differs from the one-shot featurizer"
            );
        }
    }

    #[test]
    fn gather_preserves_request_order() {
        let corpus = Corpus::generate(CorpusConfig::small());
        let models = SystemModels::bootstrap(&corpus, &SystemConfig::test());
        let store = FeatureStore::build(&corpus, &models);
        let ids = [3usize, 0, 3];
        let batch = store.gather(&ids);
        assert_eq!(batch.rows(), 3);
        for (row, &id) in ids.iter().enumerate() {
            assert_eq!(
                batch.row(row).to_owned_vector(),
                store.features(id).to_owned_vector()
            );
        }
    }
}
