//! # scrutinizer-core
//!
//! The Scrutinizer system (Algorithm 1): mixed-initiative verification of
//! statistical claims against relational data.
//!
//! ```text
//!            ┌────────────── claims C in document T ──────────────┐
//!            ▼                                                    │
//!   OptBatch (ordering, §5.2: ILP over utility/cost)              │
//!            ▼                                                    │
//!   OptQuestions (planner, §5.1: greedy sub-modular pruning)      │
//!            ▼                                                    │
//!   GetAnswers (crowd screens, Cor. 2 option ordering)            │
//!            ▼                                                    │
//!   Validate (query generation, Alg. 2 + execution)               │
//!            ▼                                                    │
//!   Retrain (classifiers on newly verified claims) ───────────────┘
//! ```
//!
//! * [`models`] — the four property classifiers over shared claim features,
//! * [`feature_store`] — every claim featurized exactly once (CSR rows
//!   shared by translation, utility scoring and retraining),
//! * [`qgen`] — Algorithm 2's query generation,
//! * [`screens`] / [`planner`] / [`pruning`] — single-claim question
//!   planning (Theorems 1–6),
//! * [`ordering`] — claim-batch selection (Definitions 7–9, ILP),
//! * [`incremental`] — cached re-planning: repair the last batch after a
//!   retrain instead of re-solving Definition 9 cold,
//! * [`verify`] — the main loop, producing a [`report::VerificationReport`],
//! * [`sim`] — the paper's experiments: user study (Figures 5–6), report
//!   simulation (Table 2, Figures 7–9), top-k accuracy (Figure 10).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod feature_store;
pub mod incremental;
pub mod models;
pub mod ordering;
pub mod planner;
pub mod pruning;
pub mod qgen;
pub mod report;
pub mod screens;
pub mod sim;
pub mod stats;
pub mod verify;

pub use config::SystemConfig;
pub use feature_store::FeatureStore;
pub use incremental::{IncrementalPlanner, PlannerCounters};
pub use models::{ModelsState, PropertyKind, SystemModels, Translation};
pub use ordering::{
    select_batch, select_batch_detailed, BatchMethod, BatchSelection, OrderingStrategy,
};
pub use planner::ClaimPlan;
pub use qgen::{
    generate_queries, generate_queries_unprepared, generate_queries_with, padded_context,
    AssignmentCache, NoCache, QueryCandidate,
};
pub use report::{ClaimOutcome, Verdict, VerificationReport};
pub use verify::Verifier;
