//! Pruning power and greedy question selection (Theorems 3–5).
//!
//! The candidate queries `Q` are represented as the Cartesian product of the
//! per-property candidate lists (the remark under Theorem 6), which makes
//! the pruning-power formula of Theorem 3 collapse into closed form:
//!
//! `P(S, Q, M) = Π_s n_s − (Π_{s∈S} m_s) · (Π_{s∉S} n_s)`
//!
//! where `n_s` is the number of candidates for property `s` and `m_s` their
//! total probability mass. The greedy selector of Theorem 5 operates on this
//! closed form; a naive enumerating evaluator is kept for cross-checking.

use crate::models::PropertyKind;

/// Candidate summary of one property: how many options would be shown, and
/// their total probability mass under the model.
#[derive(Debug, Clone, Copy)]
pub struct PropertyCandidates {
    /// Which property.
    pub kind: PropertyKind,
    /// Number of candidate values (`n_s`).
    pub count: usize,
    /// Σ probability of the candidates (`m_s ≤ 1`).
    pub mass: f64,
}

/// Pruning power of asking the properties in `selected` (closed form).
pub fn pruning_power(all: &[PropertyCandidates], selected: &[usize]) -> f64 {
    let mut total_queries = 1.0;
    let mut unpruned = 1.0;
    for (i, p) in all.iter().enumerate() {
        let n = p.count.max(1) as f64;
        total_queries *= n;
        if selected.contains(&i) {
            unpruned *= p.mass.min(1.0);
        } else {
            unpruned *= n;
        }
    }
    total_queries - unpruned
}

/// Naive evaluator enumerating the product space — O(Π n_s); used in tests
/// to validate the closed form on small instances.
pub fn pruning_power_naive(
    probabilities: &[Vec<f64>], // per property, per candidate
    selected: &[usize],
) -> f64 {
    let counts: Vec<usize> = probabilities.iter().map(Vec::len).collect();
    let mut index = vec![0usize; counts.len()];
    let mut power = 0.0;
    loop {
        // Pr(q not pruned) = Π_{s∈S} p_s(q_s)
        let mut not_pruned = 1.0;
        for &s in selected {
            not_pruned *= probabilities[s][index[s]];
        }
        power += 1.0 - not_pruned;
        let mut d = counts.len();
        loop {
            if d == 0 {
                return power;
            }
            d -= 1;
            index[d] += 1;
            if index[d] < counts[d] {
                break;
            }
            index[d] = 0;
        }
    }
}

/// Greedy property selection (Theorem 5): repeatedly add the property whose
/// addition maximizes pruning power, up to `budget` properties. Returns the
/// chosen indices in selection order. Guaranteed within `1 − 1/e` of the
/// optimum by sub-modularity (Theorem 4).
pub fn greedy_select(all: &[PropertyCandidates], budget: usize) -> Vec<usize> {
    let mut selected: Vec<usize> = Vec::with_capacity(budget.min(all.len()));
    while selected.len() < budget.min(all.len()) {
        let mut best: Option<(usize, f64)> = None;
        for i in 0..all.len() {
            if selected.contains(&i) {
                continue;
            }
            let mut trial = selected.clone();
            trial.push(i);
            let gain = pruning_power(all, &trial);
            if best.is_none() || gain > best.expect("set").1 + 1e-15 {
                best = Some((i, gain));
            }
        }
        match best {
            Some((i, _)) => selected.push(i),
            None => break,
        }
    }
    selected
}

#[cfg(test)]
mod tests {
    use super::*;

    fn candidates(specs: &[(usize, f64)]) -> Vec<PropertyCandidates> {
        specs
            .iter()
            .zip([
                PropertyKind::Relation,
                PropertyKind::Key,
                PropertyKind::Attribute,
                PropertyKind::Formula,
            ])
            .map(|(&(count, mass), kind)| PropertyCandidates { kind, count, mass })
            .collect()
    }

    #[test]
    fn closed_form_matches_naive() {
        // three properties with concrete per-candidate probabilities
        let probabilities = vec![
            vec![0.6, 0.3],      // mass 0.9
            vec![0.5, 0.2, 0.1], // mass 0.8
            vec![0.7],           // mass 0.7
        ];
        let all = candidates(&[(2, 0.9), (3, 0.8), (1, 0.7)]);
        for selected in [vec![], vec![0], vec![1], vec![0, 1], vec![0, 1, 2]] {
            let closed = pruning_power(&all, &selected);
            let naive = pruning_power_naive(&probabilities, &selected);
            assert!(
                (closed - naive).abs() < 1e-9,
                "selected {selected:?}: closed {closed} vs naive {naive}"
            );
        }
    }

    #[test]
    fn empty_selection_prunes_nothing() {
        let all = candidates(&[(5, 0.9), (4, 0.8)]);
        assert_eq!(pruning_power(&all, &[]), 0.0);
    }

    #[test]
    fn more_properties_prune_more() {
        // monotone non-decreasing (needed by Theorem 5's conditions)
        let all = candidates(&[(5, 0.9), (4, 0.8), (10, 0.5)]);
        let p0 = pruning_power(&all, &[]);
        let p1 = pruning_power(&all, &[0]);
        let p2 = pruning_power(&all, &[0, 1]);
        let p3 = pruning_power(&all, &[0, 1, 2]);
        assert!(p0 <= p1 && p1 <= p2 && p2 <= p3);
    }

    #[test]
    fn submodularity_diminishing_returns() {
        let all = candidates(&[(5, 0.9), (4, 0.8), (10, 0.5)]);
        // gain of adding property 2 to {} vs to {0}
        let gain_small = pruning_power(&all, &[2]) - pruning_power(&all, &[]);
        let gain_large = pruning_power(&all, &[0, 2]) - pruning_power(&all, &[0]);
        assert!(gain_small >= gain_large - 1e-12);
    }

    #[test]
    fn greedy_picks_highest_pruning_first() {
        // property 2 has huge candidate count and low mass → most pruning
        let all = candidates(&[(5, 0.95), (4, 0.9), (10, 0.4)]);
        let order = greedy_select(&all, 3);
        assert_eq!(order[0], 2);
        assert_eq!(order.len(), 3);
    }

    #[test]
    fn greedy_matches_exhaustive_on_small_instances() {
        let all = candidates(&[(3, 0.7), (6, 0.9), (2, 0.5), (8, 0.85)]);
        let budget = 2;
        let greedy = greedy_select(&all, budget);
        let greedy_power = pruning_power(&all, &greedy);
        // exhaustive best pair
        let mut best = 0.0f64;
        for i in 0..4 {
            for j in (i + 1)..4 {
                best = best.max(pruning_power(&all, &[i, j]));
            }
        }
        // greedy guarantee is 1-1/e ≈ 0.63, but on these instances it is optimal
        assert!(
            greedy_power >= (1.0 - 1.0 / std::f64::consts::E) * best - 1e-9,
            "greedy {greedy_power} vs best {best}"
        );
    }

    #[test]
    fn budget_respected() {
        let all = candidates(&[(3, 0.7), (6, 0.9), (2, 0.5)]);
        assert_eq!(greedy_select(&all, 0).len(), 0);
        assert_eq!(greedy_select(&all, 1).len(), 1);
        assert_eq!(greedy_select(&all, 99).len(), 3);
    }
}
