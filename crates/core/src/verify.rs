//! The main verification loop — Algorithm 1 — and single-claim verification
//! sessions against a (simulated) crowd.

use crate::config::SystemConfig;
use crate::feature_store::FeatureStore;
use crate::models::{PropertyKind, SystemModels};
use crate::ordering::{select_batch, ClaimChoice, OrderingStrategy};
use crate::planner::plan_claim;
use crate::qgen::generate_queries;
use crate::report::{ClaimOutcome, Verdict, VerificationReport};
use crate::screens::FinalScreen;
use crate::stats::mean;
use scrutinizer_corpus::{ClaimKind, ClaimRecord, Corpus};
use scrutinizer_crowd::{Panel, Worker};
use scrutinizer_formula::parse_formula;
use scrutinizer_query::FunctionRegistry;
use scrutinizer_text::{extract_parameters, ParameterKind, SparseView};

/// The Scrutinizer verifier: models + configuration + function registry.
pub struct Verifier {
    config: SystemConfig,
    registry: FunctionRegistry,
    models: SystemModels,
}

impl Verifier {
    /// Bootstraps a verifier for a corpus (cold start: classifiers are
    /// untrained until the first retrain).
    pub fn new(corpus: &Corpus, config: SystemConfig) -> Self {
        Verifier {
            config,
            registry: FunctionRegistry::standard(),
            models: SystemModels::bootstrap(corpus, &config),
        }
    }

    /// Access to the models (for evaluation).
    pub fn models(&self) -> &SystemModels {
        &self.models
    }

    /// Mutable access (pre-training in the user study).
    pub fn models_mut(&mut self) -> &mut SystemModels {
        &mut self.models
    }

    /// The configuration.
    pub fn config(&self) -> &SystemConfig {
        &self.config
    }

    /// Extracts the explicit parameter from a claim's text — the `p` of
    /// Definition 2, in formula scale. Years are ignored; percent and fold
    /// mentions are preferred over raw quantities; the last raw quantity
    /// wins otherwise (parameters close the sentence: "reaching 22 200 TWh").
    pub fn extract_parameter(text: &str) -> Option<f64> {
        let params = extract_parameters(text);
        let non_year: Vec<_> = params
            .iter()
            .filter(|p| {
                !(p.kind == ParameterKind::Absolute
                    && p.value.fract() == 0.0
                    && (1900.0..=2100.0).contains(&p.value))
            })
            .collect();
        non_year
            .iter()
            .find(|p| matches!(p.kind, ParameterKind::Percent | ParameterKind::Fold))
            .or_else(|| non_year.last())
            .map(|p| p.value)
    }

    /// Runs one claim-verification session with one worker. Ground truth
    /// from `claim` drives the simulated answers; the system itself only
    /// sees text, predictions and the crowd's replies.
    pub fn verify_claim(
        &self,
        corpus: &Corpus,
        claim: &ClaimRecord,
        features: SparseView<'_>,
        worker: &mut Worker,
    ) -> ClaimOutcome {
        if worker.skips() {
            return ClaimOutcome {
                claim_id: claim.id,
                verdict: Verdict::Skipped,
                crowd_seconds: 0.0,
                verdict_matches_truth: false,
            };
        }
        let cost = self.config.cost;
        let translation = self
            .models
            .translate_view(features, self.config.options_per_screen);
        let plan = plan_claim(&translation, &self.config);

        let mut seconds = 0.0;
        // property screens: crowd validates the context (§4.3)
        let mut validated: [Option<String>; 3] = [None, None, None];
        for screen in &plan.screens {
            let truth = match screen.kind {
                PropertyKind::Relation => claim.relation.as_str(),
                PropertyKind::Key => claim.key.as_str(),
                PropertyKind::Attribute => claim.attributes[0].as_str(),
                PropertyKind::Formula => unreachable!("formulas are not crowd-validated"),
            };
            let outcome = worker.answer_screen(&screen.labels(), truth, cost.vp, cost.sp);
            seconds += outcome.seconds;
            let slot = match screen.kind {
                PropertyKind::Relation => 0,
                PropertyKind::Key => 1,
                PropertyKind::Attribute => 2,
                PropertyKind::Formula => unreachable!(),
            };
            validated[slot] = Some(outcome.answer);
        }

        // context for query generation: validated answers, padded with
        // classifier candidates for properties that were not asked
        let context = |slot: usize, kind: PropertyKind, extra: usize| -> Vec<String> {
            crate::qgen::padded_context(validated[slot].as_deref(), translation.of(kind), extra)
        };
        let relations = context(
            0,
            PropertyKind::Relation,
            if validated[0].is_some() { 0 } else { 3 },
        );
        let keys = context(
            1,
            PropertyKind::Key,
            if validated[1].is_some() { 0 } else { 3 },
        );
        // attributes: claims use up to three; keep a handful of candidates
        let attributes = context(2, PropertyKind::Attribute, 4);

        // formula candidates in rank order
        let formulas: Vec<(String, scrutinizer_formula::Formula)> = translation
            .of(PropertyKind::Formula)
            .iter()
            .take(self.config.final_options * 3)
            .filter_map(|(text, _)| parse_formula(text).ok().map(|f| (text.clone(), f)))
            .collect();

        let parameter = match claim.kind {
            ClaimKind::Explicit => Self::extract_parameter(&claim.claim_text),
            ClaimKind::General => None,
        };

        let candidates = generate_queries(
            &corpus.catalog,
            &self.registry,
            &relations,
            &keys,
            &attributes,
            &formulas,
            parameter,
            &self.config,
        );
        let screen = FinalScreen::new(
            candidates,
            translation.of(PropertyKind::Formula),
            self.config.final_options,
        );

        // ---- final screen ----
        // A shown candidate is truth-equivalent when it either reproduces the
        // ground-truth check or (explicit claims) confirms the stated value.
        let truth_shown = screen.candidates.iter().position(|c| {
            (c.formula_text == claim.formula_text && c.lookups == claim.lookups)
                || (claim.is_correct && c.matches_parameter)
        });
        match truth_shown {
            Some(position) if claim.is_correct => {
                // worker reads down to the right query and confirms it
                let labels: Vec<String> =
                    screen.rendered().into_iter().take(position + 1).collect();
                let outcome = worker.answer_screen(&labels, &labels[position], cost.vf, cost.sf);
                seconds += outcome.seconds;
                let accepted = outcome.chosen.is_some();
                let verdict = if accepted {
                    Verdict::Correct {
                        query: screen.candidates[position].stmt.to_string(),
                    }
                } else {
                    // worker balked and re-derived the query manually
                    Verdict::Correct {
                        query: claim.formula_text.clone(),
                    }
                };
                ClaimOutcome {
                    claim_id: claim.id,
                    verdict,
                    crowd_seconds: seconds,
                    verdict_matches_truth: true,
                }
            }
            _ => {
                // No confirming query on screen: the worker examines the
                // evidence (Figure 3: formula, assignment, value) and judges
                // the claim against it. Tentative execution makes explicit
                // mismatches conclusive from the single closest value
                // ("claimed 2.5%, data says 3%"); general claims may need a
                // second look. The judgment itself is the first v_f read.
                let extra_scans = if parameter.is_some() {
                    0
                } else {
                    screen.candidates.len().saturating_sub(1).min(1)
                };
                seconds += cost.vf * extra_scans as f64;
                let (judged_correct, judge_seconds) = worker.judge_result(claim.is_correct, &cost);
                seconds += judge_seconds;
                if judged_correct {
                    // believes the claim. With evidence on screen (Figure 3:
                    // formula, assignment, value) the judgment itself settles
                    // it — e.g. deciding 0.012 matches "scarcely". Only with
                    // no evidence at all must the worker derive a query from
                    // scratch (suggestion cost s_f).
                    let query = match screen.candidates.first() {
                        Some(c) => c.stmt.to_string(),
                        None => {
                            seconds += cost.sf;
                            claim.formula_text.clone()
                        }
                    };
                    ClaimOutcome {
                        claim_id: claim.id,
                        verdict: Verdict::Correct { query },
                        crowd_seconds: seconds,
                        verdict_matches_truth: claim.is_correct,
                    }
                } else {
                    let closest = screen.candidates.first();
                    if closest.is_none() {
                        // declaring "no query exists" with no evidence at
                        // all requires a manual search of the data
                        seconds += cost.sf * 0.5;
                    }
                    ClaimOutcome {
                        claim_id: claim.id,
                        verdict: Verdict::Incorrect {
                            closest_query: closest.map(|c| c.stmt.to_string()),
                            suggested_value: closest.map(|c| c.value),
                        },
                        crowd_seconds: seconds,
                        verdict_matches_truth: !claim.is_correct,
                    }
                }
            }
        }
    }

    /// Runs Algorithm 1 over all claims of the corpus with a team of
    /// checkers. Every claim is verified by each panel member (IEA checks
    /// every claim three times); verdicts aggregate by majority.
    pub fn run(
        &mut self,
        corpus: &Corpus,
        panel: &mut Panel,
        strategy: OrderingStrategy,
    ) -> VerificationReport {
        let mut report = VerificationReport::default();
        let claims = &corpus.claims;
        // featurize the whole report once; everything below borrows rows
        let store = FeatureStore::build(corpus, &self.models);
        let mut remaining: Vec<usize> = (0..claims.len()).collect();
        let mut verified: Vec<usize> = Vec::new();

        while !remaining.is_empty() {
            // ---- OptBatch ----
            let planning_start = std::time::Instant::now();
            // utilities for the whole open pool in one batched pass
            let utilities = self.models.training_utilities(&store.gather(&remaining));
            let choices: Vec<ClaimChoice> = remaining
                .iter()
                .zip(&utilities)
                .map(|(&id, &utility)| {
                    let translation = self
                        .models
                        .translate_view(store.features(id), self.config.options_per_screen);
                    let plan = plan_claim(&translation, &self.config);
                    ClaimChoice {
                        id,
                        section: claims[id].section,
                        cost: plan.expected_cost,
                        utility,
                    }
                })
                .collect();
            let mean_cost = mean(&choices.iter().map(|c| c.cost).collect::<Vec<_>>());
            let budget = self.config.batch_size as f64 * mean_cost * 1.3
                + 3.0 * self.config.read_seconds_per_sentence * 400.0;
            let batch = select_batch(&choices, &corpus.document, strategy, budget, &self.config);
            let batch = if batch.is_empty() {
                vec![remaining[0]]
            } else {
                batch
            };
            report.computation_seconds += planning_start.elapsed().as_secs_f64();

            // ---- accuracy trace (measured on the upcoming batch) ----
            let batch_claims: Vec<&ClaimRecord> = batch.iter().map(|&id| &claims[id]).collect();
            report.accuracy_trace.push((
                verified.len(),
                self.models
                    .accuracy_on_rows(&store.gather(&batch), &batch_claims),
            ));

            // ---- section reading (each checker skims each touched section) ----
            let mut sections: Vec<usize> = batch.iter().map(|&id| claims[id].section).collect();
            sections.sort_unstable();
            sections.dedup();
            for &s in &sections {
                let read =
                    corpus.document.sections[s].read_cost(self.config.read_seconds_per_sentence);
                report.total_crowd_seconds += read * panel.len() as f64;
            }

            // ---- GetAnswers + Validate (every checker, majority verdict) ----
            for &id in &batch {
                let claim = &claims[id];
                let mut outcomes: Vec<ClaimOutcome> = Vec::with_capacity(panel.len());
                for worker in panel.workers_mut() {
                    outcomes.push(self.verify_claim(corpus, claim, store.features(id), worker));
                }
                let claim_seconds: f64 = outcomes.iter().map(|o| o.crowd_seconds).sum();
                report.total_crowd_seconds += claim_seconds;
                report.time_trace.push(report.total_crowd_seconds);
                // majority vote over "claim is correct"
                let votes: Vec<bool> = outcomes
                    .iter()
                    .filter(|o| !matches!(o.verdict, Verdict::Skipped))
                    .map(|o| matches!(o.verdict, Verdict::Correct { .. }))
                    .collect();
                let majority_correct = Panel::majority(&votes);
                let representative = outcomes
                    .into_iter()
                    .find(|o| {
                        matches!(o.verdict, Verdict::Correct { .. }) == majority_correct
                            && !matches!(o.verdict, Verdict::Skipped)
                    })
                    .unwrap_or(ClaimOutcome {
                        claim_id: id,
                        verdict: Verdict::Skipped,
                        crowd_seconds: 0.0,
                        verdict_matches_truth: false,
                    });
                report.outcomes.push(ClaimOutcome {
                    claim_id: id,
                    verdict: representative.verdict,
                    crowd_seconds: claim_seconds,
                    verdict_matches_truth: majority_correct == claim.is_correct,
                });
            }

            // ---- bookkeeping + Retrain ----
            remaining.retain(|id| !batch.contains(id));
            verified.extend(batch.iter().copied());
            let retrain_start = std::time::Instant::now();
            let training: Vec<&ClaimRecord> = verified.iter().map(|&id| &claims[id]).collect();
            self.models.retrain(&training);
            report.computation_seconds += retrain_start.elapsed().as_secs_f64();
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scrutinizer_corpus::CorpusConfig;
    use scrutinizer_crowd::WorkerConfig;

    fn setup() -> (Corpus, Verifier) {
        let corpus = Corpus::generate(CorpusConfig::small());
        let verifier = Verifier::new(&corpus, SystemConfig::test());
        (corpus, verifier)
    }

    #[test]
    fn parameter_extraction_prefers_rates_and_skips_years() {
        assert_eq!(
            Verifier::extract_parameter("In 2017, demand grew by 3%"),
            Some(0.03)
        );
        assert_eq!(
            Verifier::extract_parameter("increased nine-fold from 2000 to 2017"),
            Some(9.0)
        );
        assert_eq!(
            Verifier::extract_parameter("reached 22 200 TWh in 2017"),
            Some(22_200.0)
        );
        assert_eq!(Verifier::extract_parameter("expanded aggressively"), None);
    }

    #[test]
    fn trained_verifier_confirms_correct_claims_fast() {
        let (corpus, mut verifier) = setup();
        let refs: Vec<&ClaimRecord> = corpus.claims.iter().collect();
        verifier.models_mut().retrain(&refs);
        let mut worker = Worker::new(
            "S1",
            WorkerConfig {
                accuracy: 1.0,
                skip_probability: 0.0,
                seed: 3,
                ..Default::default()
            },
        );
        let mut matched = 0;
        let mut total_seconds = 0.0;
        let sample: Vec<&ClaimRecord> = corpus.claims.iter().take(20).collect();
        for claim in &sample {
            let features = verifier.models().features(claim);
            let outcome = verifier.verify_claim(&corpus, claim, features.view(), &mut worker);
            total_seconds += outcome.crowd_seconds;
            if outcome.verdict_matches_truth {
                matched += 1;
            }
        }
        // a perfect worker with trained models should match truth mostly
        assert!(matched >= 16, "only {matched}/20 verdicts matched truth");
        // and be far cheaper than manual verification (~complexity·18s each)
        let avg = total_seconds / sample.len() as f64;
        assert!(avg < 160.0, "avg {avg}s per claim is no better than manual");
    }

    #[test]
    fn full_run_resolves_every_claim() {
        let (corpus, mut verifier) = setup();
        let mut panel = Panel::new(3, WorkerConfig::default(), 5);
        let report = verifier.run(&corpus, &mut panel, OrderingStrategy::Ilp);
        assert_eq!(report.outcomes.len(), corpus.claims.len());
        assert!(report.total_crowd_seconds > 0.0);
        assert!(!report.accuracy_trace.is_empty());
        assert_eq!(report.time_trace.len(), corpus.claims.len());
        // majority verdicts over three decent checkers beat coin flips widely
        assert!(
            report.verdict_accuracy() > 0.7,
            "accuracy {}",
            report.verdict_accuracy()
        );
    }

    #[test]
    fn sequential_strategy_runs_in_document_order() {
        let (corpus, mut verifier) = setup();
        let mut panel = Panel::new(3, WorkerConfig::default(), 5);
        let report = verifier.run(&corpus, &mut panel, OrderingStrategy::Sequential);
        let first_batch: Vec<usize> = report.outcomes.iter().take(5).map(|o| o.claim_id).collect();
        assert_eq!(first_batch, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn incorrect_claims_get_suggestions() {
        let (corpus, mut verifier) = setup();
        let refs: Vec<&ClaimRecord> = corpus.claims.iter().collect();
        verifier.models_mut().retrain(&refs);
        let mut worker = Worker::new(
            "S1",
            WorkerConfig {
                accuracy: 1.0,
                skip_probability: 0.0,
                seed: 9,
                ..Default::default()
            },
        );
        let mut suggestions = 0;
        for claim in corpus.claims.iter().filter(|c| !c.is_correct).take(10) {
            let features = verifier.models().features(claim);
            let outcome = verifier.verify_claim(&corpus, claim, features.view(), &mut worker);
            if let Verdict::Incorrect {
                suggested_value, ..
            } = outcome.verdict
            {
                if suggested_value.is_some() {
                    suggestions += 1;
                }
            }
        }
        assert!(
            suggestions >= 5,
            "only {suggestions}/10 incorrect claims got suggestions"
        );
    }
}
