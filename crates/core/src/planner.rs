//! Single-claim question planning (§5.1).
//!
//! Chooses how many screens to show (Corollary 1 caps them; the crowd only
//! validates the context properties — relation, row, attribute — per §4.3),
//! which properties to ask about (greedy pruning-power, Theorems 3–5), and
//! prices the plan with the expected-cost model (Theorem 2).

use crate::config::SystemConfig;
use crate::models::{PropertyKind, Translation};
use crate::pruning::{greedy_select, PropertyCandidates};
use crate::screens::Screen;

/// The plan for verifying one claim.
#[derive(Debug, Clone)]
pub struct ClaimPlan {
    /// Property screens in the order they will be shown.
    pub screens: Vec<Screen>,
    /// Expected crowd cost of the property screens plus the final screen
    /// (seconds), per Theorem 2 and the suggestion-mass model.
    pub expected_cost: f64,
}

/// The context properties the crowd validates (formulas are filtered by
/// instantiation instead — §4.3).
pub const CROWD_PROPERTIES: [PropertyKind; 3] = [
    PropertyKind::Relation,
    PropertyKind::Key,
    PropertyKind::Attribute,
];

/// Builds the optimal plan for one claim from its translation.
///
/// ```
/// use scrutinizer_core::planner::plan_claim;
/// use scrutinizer_core::{SystemConfig, Translation};
///
/// // classifier output: (label, probability) per property, best first
/// let options = |base: f32| {
///     vec![
///         ("first".to_string(), base),
///         ("second".to_string(), base / 2.0),
///         ("third".to_string(), base / 4.0),
///     ]
/// };
/// let translation = Translation {
///     candidates: [options(0.6), options(0.5), options(0.55), options(0.4)],
/// };
/// let config = SystemConfig::test();
/// let plan = plan_claim(&translation, &config);
/// assert!(!plan.screens.is_empty(), "uncertain properties get screens");
/// assert!(plan.screens.len() <= config.cost.max_screens(), "Corollary 1");
/// assert!(plan.expected_cost > 0.0);
/// ```
pub fn plan_claim(translation: &Translation, config: &SystemConfig) -> ClaimPlan {
    // §5.1's ideal case: a property whose top prediction is near-certain
    // needs no screen — the worker only confirms the final query
    let asked: Vec<PropertyKind> = CROWD_PROPERTIES
        .iter()
        .copied()
        .filter(|&kind| {
            translation
                .of(kind)
                .first()
                .is_none_or(|(_, p)| *p < config.screen_skip_confidence)
        })
        .collect();

    // candidate summaries for the crowd-validated properties still in play
    let summaries: Vec<PropertyCandidates> = asked
        .iter()
        .map(|&kind| {
            let options = translation.of(kind);
            let shown = options.len().min(config.options_per_screen);
            PropertyCandidates {
                kind,
                count: shown.max(1),
                mass: options.iter().take(shown).map(|(_, p)| f64::from(*p)).sum(),
            }
        })
        .collect();

    // Corollary 1 bounds the number of screens; greedy picks which
    let budget = config.cost.max_screens().min(asked.len());
    let chosen = greedy_select(&summaries, budget);

    let screens: Vec<Screen> = chosen
        .iter()
        .map(|&i| {
            let kind = asked[i];
            Screen::new(
                kind,
                translation.of(kind).to_vec(),
                config.options_per_screen,
            )
        })
        .collect();

    // expected cost: property screens (Theorem 2 + suggestion mass) plus the
    // final query screen, whose option quality tracks the formula classifier
    let mut expected_cost = 0.0;
    for screen in &screens {
        expected_cost += config.cost.expected_screen_cost(&screen.probabilities());
    }
    let formula_probs: Vec<f32> = translation
        .of(PropertyKind::Formula)
        .iter()
        .take(config.final_options)
        .map(|(_, p)| *p)
        .collect();
    expected_cost += config.cost.expected_final_cost(&formula_probs);

    ClaimPlan {
        screens,
        expected_cost,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::Translation;

    fn translation(confidence: f32) -> Translation {
        let options = |base: f32| -> Vec<(String, f32)> {
            vec![
                ("first".to_string(), base),
                ("second".to_string(), base / 3.0),
                ("third".to_string(), base / 9.0),
            ]
        };
        Translation {
            candidates: [
                options(confidence),
                options(confidence * 0.8),
                options(confidence * 0.9),
                options(confidence * 0.7),
            ],
        }
    }

    #[test]
    fn plan_has_screens_and_positive_cost() {
        let config = SystemConfig::test();
        let plan = plan_claim(&translation(0.6), &config);
        assert!(!plan.screens.is_empty());
        assert!(plan.screens.len() <= 3);
        assert!(plan.expected_cost > 0.0);
    }

    #[test]
    fn confident_translations_cost_less() {
        let config = SystemConfig::test();
        let confident = plan_claim(&translation(0.7), &config);
        let uncertain = plan_claim(&translation(0.05), &config);
        assert!(
            confident.expected_cost < uncertain.expected_cost,
            "{} vs {}",
            confident.expected_cost,
            uncertain.expected_cost
        );
    }

    #[test]
    fn screens_ordered_descending_probability() {
        let config = SystemConfig::test();
        let plan = plan_claim(&translation(0.5), &config);
        for screen in &plan.screens {
            let probs = screen.probabilities();
            for w in probs.windows(2) {
                assert!(w[0] >= w[1]);
            }
        }
    }

    #[test]
    fn expected_cost_below_manual_baseline() {
        // a reasonable plan must cost less than suggesting the query cold
        // (s_f), otherwise the system adds no value at all
        let config = SystemConfig::test();
        let plan = plan_claim(&translation(0.8), &config);
        assert!(plan.expected_cost < 3.0 * config.cost.sf, "Theorem 1 bound");
    }

    #[test]
    fn screen_budget_respects_corollary1() {
        let config = SystemConfig::test();
        let plan = plan_claim(&translation(0.5), &config);
        assert!(plan.screens.len() <= config.cost.max_screens());
    }
}
