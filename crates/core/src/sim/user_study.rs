//! The user study of §6.1 (Figures 5 and 6), simulated.
//!
//! Seven checkers, 43 claims drawn from the ten most frequent formulas, 25 %
//! injected errors, three training claims, a 20-minute budget, fixed claim
//! order. M1–M3 verify manually; S1–S4 use the system (whose classifiers are
//! pre-trained on the rest of the corpus, as in the paper).

use crate::config::SystemConfig;
use crate::report::Verdict;
use crate::stats::grouped_mean;
use crate::verify::Verifier;
use scrutinizer_corpus::{ClaimRecord, Corpus};
use scrutinizer_crowd::{Worker, WorkerConfig};
use scrutinizer_data::hash::FxHashMap;

/// Per-checker tally (one bar of Figure 5).
#[derive(Debug, Clone)]
pub struct CheckerResult {
    /// Checker name (M1–M3, S1–S4).
    pub name: String,
    /// Claims labelled correctly within budget.
    pub correct: usize,
    /// Claims labelled incorrectly.
    pub incorrect: usize,
    /// Claims skipped.
    pub skipped: usize,
    /// `(complexity, seconds)` for every processed claim (Figure 6 input).
    pub times: Vec<(usize, f64)>,
}

/// Full study output.
#[derive(Debug, Clone)]
pub struct UserStudy {
    /// M1–M3 then S1–S4.
    pub checkers: Vec<CheckerResult>,
    /// Mean/std manual verification time per complexity (Figure 6, Manual).
    pub manual_by_complexity: Vec<(usize, f64, f64, usize)>,
    /// Mean/std system verification time per complexity (Figure 6, System).
    pub system_by_complexity: Vec<(usize, f64, f64, usize)>,
}

/// Study parameters.
#[derive(Debug, Clone, Copy)]
pub struct StudyConfig {
    /// Claims in the study (the paper uses 43: 3 training + 40 measured).
    pub n_claims: usize,
    /// Training claims excluded from measurement.
    pub n_training: usize,
    /// Time budget per checker, seconds (20 minutes).
    pub budget_seconds: f64,
    /// Number of manual checkers.
    pub manual_checkers: usize,
    /// Number of system checkers.
    pub system_checkers: usize,
    /// Seed.
    pub seed: u64,
}

impl Default for StudyConfig {
    fn default() -> Self {
        StudyConfig {
            n_claims: 43,
            n_training: 3,
            budget_seconds: 20.0 * 60.0,
            manual_checkers: 3,
            system_checkers: 4,
            seed: 61,
        }
    }
}

/// Selects study claims: drawn from the ten most frequent formulas, fixed
/// order, as in §6.1 ("claims with the 10 formulas that cover the majority
/// of the claims"). Among those, claims about frequently-checked subjects
/// (common relations and rows) are preferred — the study measured the
/// routine checks that dominate the real workload, not one-off exotica.
pub fn select_study_claims<'a>(corpus: &'a Corpus, study: &StudyConfig) -> Vec<&'a ClaimRecord> {
    let mut formula_counts: FxHashMap<&str, usize> = FxHashMap::default();
    let mut relation_counts: FxHashMap<&str, usize> = FxHashMap::default();
    let mut key_counts: FxHashMap<&str, usize> = FxHashMap::default();
    for claim in &corpus.claims {
        *formula_counts
            .entry(claim.formula_text.as_str())
            .or_insert(0) += 1;
        *relation_counts.entry(claim.relation.as_str()).or_insert(0) += 1;
        *key_counts.entry(claim.key.as_str()).or_insert(0) += 1;
    }
    let mut ranked: Vec<(&str, usize)> = formula_counts.into_iter().collect();
    ranked.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
    let top: Vec<&str> = ranked.iter().take(10).map(|(f, _)| *f).collect();
    let mut candidates: Vec<&ClaimRecord> = corpus
        .claims
        .iter()
        .filter(|c| top.contains(&c.formula_text.as_str()))
        .collect();
    candidates.sort_by(|a, b| {
        let fa = relation_counts[a.relation.as_str()] + key_counts[a.key.as_str()];
        let fb = relation_counts[b.relation.as_str()] + key_counts[b.key.as_str()];
        fb.cmp(&fa).then(a.id.cmp(&b.id))
    });
    candidates.truncate(study.n_claims);
    // fixed order across checkers (the study fixed the claim order)
    candidates.sort_by_key(|c| c.id);
    candidates
}

/// Runs the study.
pub fn run_user_study(corpus: &Corpus, config: SystemConfig, study: StudyConfig) -> UserStudy {
    let claims = select_study_claims(corpus, &study);
    let measured = &claims[study.n_training.min(claims.len())..];

    // pre-train on everything that is not in the study set
    let mut verifier = Verifier::new(corpus, config);
    let study_ids: Vec<usize> = claims.iter().map(|c| c.id).collect();
    let training: Vec<&ClaimRecord> = corpus
        .claims
        .iter()
        .filter(|c| !study_ids.contains(&c.id))
        .collect();
    verifier.models_mut().retrain(&training);

    let mut checkers = Vec::new();
    // ---- manual group ----
    for m in 0..study.manual_checkers {
        let mut worker = Worker::new(
            format!("M{}", m + 1),
            WorkerConfig {
                seed: study.seed + m as u64,
                ..Default::default()
            },
        );
        let mut result = CheckerResult {
            name: format!("M{}", m + 1),
            correct: 0,
            incorrect: 0,
            skipped: 0,
            times: Vec::new(),
        };
        let mut elapsed = 0.0;
        for claim in measured {
            if elapsed >= study.budget_seconds {
                break;
            }
            if worker.skips() {
                result.skipped += 1;
                continue;
            }
            let (judged_right, seconds) = worker.manual_verify(claim.complexity);
            elapsed += seconds;
            if elapsed > study.budget_seconds {
                break; // ran out of time mid-claim: claim does not count
            }
            result.times.push((claim.complexity, seconds));
            if judged_right {
                result.correct += 1;
            } else {
                result.incorrect += 1;
            }
        }
        checkers.push(result);
    }
    // ---- system group ----
    for s in 0..study.system_checkers {
        let mut worker = Worker::new(
            format!("S{}", s + 1),
            WorkerConfig {
                seed: study.seed + 100 + s as u64,
                ..Default::default()
            },
        );
        let mut result = CheckerResult {
            name: format!("S{}", s + 1),
            correct: 0,
            incorrect: 0,
            skipped: 0,
            times: Vec::new(),
        };
        let mut elapsed = 0.0;
        for claim in measured {
            if elapsed >= study.budget_seconds {
                break;
            }
            let features = verifier.models().features(claim);
            let outcome = verifier.verify_claim(corpus, claim, features.view(), &mut worker);
            if matches!(outcome.verdict, Verdict::Skipped) {
                result.skipped += 1;
                continue;
            }
            elapsed += outcome.crowd_seconds;
            if elapsed > study.budget_seconds {
                break;
            }
            result.times.push((claim.complexity, outcome.crowd_seconds));
            if outcome.verdict_matches_truth {
                result.correct += 1;
            } else {
                result.incorrect += 1;
            }
        }
        checkers.push(result);
    }

    let manual_times: Vec<(usize, f64)> = checkers
        .iter()
        .filter(|c| c.name.starts_with('M'))
        .flat_map(|c| c.times.iter().copied())
        .collect();
    let system_times: Vec<(usize, f64)> = checkers
        .iter()
        .filter(|c| c.name.starts_with('S'))
        .flat_map(|c| c.times.iter().copied())
        .collect();

    UserStudy {
        checkers,
        manual_by_complexity: grouped_mean(&manual_times),
        system_by_complexity: grouped_mean(&system_times),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scrutinizer_corpus::CorpusConfig;

    fn study_corpus() -> Corpus {
        // the paper pre-trains on the full annotated corpus (~1.5k claims);
        // give the simulated study enough training data for the classifiers
        // to reach useful confidence
        let mut cfg = CorpusConfig::small();
        cfg.n_claims = 400;
        cfg.error_rate = 0.25;
        Corpus::generate(cfg)
    }

    #[test]
    fn study_selects_frequent_formula_claims() {
        let corpus = study_corpus();
        let claims = select_study_claims(&corpus, &StudyConfig::default());
        assert!(
            claims.len() >= 40,
            "need enough study claims, got {}",
            claims.len()
        );
        let mut formulas: Vec<&str> = claims.iter().map(|c| c.formula_text.as_str()).collect();
        formulas.sort_unstable();
        formulas.dedup();
        assert!(formulas.len() <= 10);
    }

    #[test]
    fn system_checkers_process_more_claims_than_manual() {
        let corpus = study_corpus();
        let study = run_user_study(&corpus, SystemConfig::test(), StudyConfig::default());
        assert_eq!(study.checkers.len(), 7);
        let manual_avg: f64 = study
            .checkers
            .iter()
            .filter(|c| c.name.starts_with('M'))
            .map(|c| (c.correct + c.incorrect) as f64)
            .sum::<f64>()
            / 3.0;
        let system_avg: f64 = study
            .checkers
            .iter()
            .filter(|c| c.name.starts_with('S'))
            .map(|c| (c.correct + c.incorrect) as f64)
            .sum::<f64>()
            / 4.0;
        // the headline result: the system substantially raises throughput
        // (the paper sees 7 → 23; our simulated study must at least double)
        assert!(
            system_avg >= 2.0 * manual_avg,
            "system {system_avg} vs manual {manual_avg} claims per 20 min"
        );
        // all seven checkers did real work
        for c in &study.checkers {
            assert!(c.correct + c.incorrect + c.skipped > 0, "{} idle", c.name);
        }
    }

    #[test]
    fn system_is_faster_at_equal_complexity() {
        let corpus = study_corpus();
        let study = run_user_study(&corpus, SystemConfig::test(), StudyConfig::default());
        // compare complexities present in both groups (Figure 6 plots the
        // range 4–11; below that manual lookup is trivially fast and the
        // system's fixed screen overhead can win out)
        let mut compared = 0;
        for (c, manual_mean, _, _) in &study.manual_by_complexity {
            if *c < 4 {
                continue;
            }
            if let Some((_, system_mean, _, _)) =
                study.system_by_complexity.iter().find(|(sc, ..)| sc == c)
            {
                compared += 1;
                assert!(
                    system_mean < manual_mean,
                    "complexity {c}: system {system_mean} ≥ manual {manual_mean}"
                );
            }
        }
        assert!(compared >= 2, "need overlapping complexity buckets");
    }
}
