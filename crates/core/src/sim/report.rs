//! The full-report simulation of §6.2 (Table 2, Figures 7–9).
//!
//! Cold start: classifiers begin untrained and learn only from claims the
//! simulated crowd verifies. Three baselines:
//!
//! * **Manual** — every claim verified from scratch by all three checkers,
//!   incorrect claims re-derived (the 40 % first-draft update rate makes
//!   those cost roughly double), sections skimmed once per checker;
//! * **Sequential** — Scrutinizer without claim ordering;
//! * **Scrutinizer** — the full system with ILP batch selection.

use crate::config::SystemConfig;
use crate::ordering::OrderingStrategy;
use crate::report::VerificationReport;
use crate::verify::Verifier;
use scrutinizer_corpus::Corpus;
use scrutinizer_crowd::{Panel, WorkCalendar, Worker, WorkerConfig};

/// One system's row of Table 2 plus its traces.
#[derive(Debug, Clone)]
pub struct SystemRun {
    /// "Manual" / "Sequential" / "Scrutinizer".
    pub name: String,
    /// Total crowd person-seconds.
    pub crowd_seconds: f64,
    /// Calendar weeks for the three-checker team.
    pub weeks: f64,
    /// Computation minutes (planning + ILP + retraining).
    pub computation_minutes: f64,
    /// Average classifier accuracy over the verification period.
    pub avg_accuracy: f64,
    /// Maximum classifier accuracy reached.
    pub max_accuracy: f64,
    /// Accumulated crowd seconds after each verified claim (Figure 7).
    pub time_trace: Vec<f64>,
    /// `(verified_count, [acc; 4])` trace (Figures 8–9).
    pub accuracy_trace: Vec<(usize, [f64; 4])>,
}

/// The three rows of Table 2.
#[derive(Debug, Clone)]
pub struct ReportSimulation {
    /// Manual, Sequential, Scrutinizer in that order.
    pub runs: Vec<SystemRun>,
    /// The calendar used for the weeks conversion.
    pub calendar: WorkCalendar,
}

impl ReportSimulation {
    /// Savings of run `i` relative to Manual (Table 2's "% Savings").
    pub fn savings_vs_manual(&self, i: usize) -> f64 {
        let manual = self.runs[0].crowd_seconds;
        if manual <= 0.0 {
            return 0.0;
        }
        1.0 - self.runs[i].crowd_seconds / manual
    }
}

/// Simulates the Manual baseline.
fn run_manual(corpus: &Corpus, config: &SystemConfig, calendar: &WorkCalendar) -> SystemRun {
    let mut total = 0.0;
    let mut time_trace = Vec::with_capacity(corpus.claims.len());
    // every checker reads the whole report once
    for section in &corpus.document.sections {
        total += section.read_cost(config.read_seconds_per_sentence) * calendar.checkers as f64;
    }
    let mut workers: Vec<Worker> = (0..calendar.checkers)
        .map(|i| {
            Worker::new(
                format!("M{}", i + 1),
                WorkerConfig {
                    seed: config.seed + 900 + i as u64,
                    ..Default::default()
                },
            )
        })
        .collect();
    for claim in &corpus.claims {
        for worker in &mut workers {
            let (_, seconds) = worker.manual_verify(claim.complexity);
            // incorrect claims must be re-derived and updated: ~double work
            let factor = if claim.is_correct { 1.0 } else { 2.0 };
            total += seconds * factor;
        }
        time_trace.push(total);
    }
    SystemRun {
        name: "Manual".into(),
        crowd_seconds: total,
        weeks: calendar.weeks(total),
        computation_minutes: 0.0,
        avg_accuracy: 0.0,
        max_accuracy: 0.0,
        time_trace,
        accuracy_trace: Vec::new(),
    }
}

fn run_system(
    name: &str,
    corpus: &Corpus,
    config: &SystemConfig,
    calendar: &WorkCalendar,
    strategy: OrderingStrategy,
) -> SystemRun {
    let mut verifier = Verifier::new(corpus, *config);
    let mut panel = Panel::new(calendar.checkers, WorkerConfig::default(), config.seed);
    let report: VerificationReport = verifier.run(corpus, &mut panel, strategy);
    SystemRun {
        name: name.into(),
        crowd_seconds: report.total_crowd_seconds,
        weeks: calendar.weeks(report.total_crowd_seconds),
        computation_minutes: report.computation_seconds / 60.0,
        avg_accuracy: report.average_classifier_accuracy(),
        max_accuracy: report.max_classifier_accuracy(),
        time_trace: report.time_trace.clone(),
        accuracy_trace: report.accuracy_trace,
    }
}

/// Runs all three systems on the corpus.
pub fn run_report_simulation(corpus: &Corpus, config: SystemConfig) -> ReportSimulation {
    let calendar = WorkCalendar::default();
    let runs = vec![
        run_manual(corpus, &config, &calendar),
        run_system(
            "Sequential",
            corpus,
            &config,
            &calendar,
            OrderingStrategy::Sequential,
        ),
        run_system(
            "Scrutinizer",
            corpus,
            &config,
            &calendar,
            OrderingStrategy::Ilp,
        ),
    ];
    ReportSimulation { runs, calendar }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scrutinizer_corpus::CorpusConfig;

    #[test]
    fn simulation_reproduces_table2_shape() {
        let corpus = Corpus::generate(CorpusConfig::small());
        let sim = run_report_simulation(&corpus, SystemConfig::test());
        assert_eq!(sim.runs.len(), 3);
        let manual = &sim.runs[0];
        let sequential = &sim.runs[1];
        let scrutinizer = &sim.runs[2];
        // headline: both system variants save vs manual. On this tiny test
        // corpus (80 claims) the cold-start warmup dominates, so the margin
        // is thinner than the paper-scale factor two — the full-scale shape
        // is asserted by the repro harness (EXPERIMENTS.md).
        assert!(
            sequential.crowd_seconds < manual.crowd_seconds,
            "sequential {} vs manual {}",
            sequential.crowd_seconds,
            manual.crowd_seconds
        );
        assert!(
            scrutinizer.crowd_seconds < manual.crowd_seconds * 0.9,
            "scrutinizer {} vs manual {}",
            scrutinizer.crowd_seconds,
            manual.crowd_seconds
        );
        // savings helper consistent
        assert!(sim.savings_vs_manual(2) > 0.1);
        // accuracy traces exist for the learning systems only
        assert!(manual.accuracy_trace.is_empty());
        assert!(!scrutinizer.accuracy_trace.is_empty());
        // classifiers end up better than they start (cold start learning)
        let first = scrutinizer.accuracy_trace.first().unwrap().1;
        let max = scrutinizer.max_accuracy;
        let first_avg = first.iter().sum::<f64>() / 4.0;
        assert!(max > first_avg, "no learning visible: {first_avg} → {max}");
    }

    #[test]
    fn time_traces_are_monotone() {
        let corpus = Corpus::generate(CorpusConfig::small());
        let sim = run_report_simulation(&corpus, SystemConfig::test());
        for run in &sim.runs {
            for w in run.time_trace.windows(2) {
                assert!(w[0] <= w[1] + 1e-9, "{}: trace not monotone", run.name);
            }
            assert_eq!(run.time_trace.len(), corpus.claims.len());
        }
    }
}
