//! Top-k accuracy of the classifiers (Figure 10).

use crate::config::SystemConfig;
use crate::models::{PropertyKind, SystemModels};
use scrutinizer_corpus::{ClaimRecord, Corpus};
use scrutinizer_learn::split::train_test_split;

/// Top-k accuracy per classifier and for their average.
#[derive(Debug, Clone)]
pub struct TopKAccuracy {
    /// The k values evaluated (the paper plots 1..15).
    pub ks: Vec<usize>,
    /// `[relation, key, attribute, formula]` accuracy per k.
    pub per_classifier: Vec<[f64; 4]>,
    /// Mean of the four per k.
    pub average: Vec<f64>,
}

/// Trains on a holdout split and evaluates top-k accuracy on the rest.
pub fn run_topk(corpus: &Corpus, config: SystemConfig, ks: &[usize], seed: u64) -> TopKAccuracy {
    let (train_idx, test_idx) = train_test_split(corpus.claims.len(), 0.25, seed);
    let mut models = SystemModels::bootstrap(corpus, &config);
    let train: Vec<&ClaimRecord> = train_idx.iter().map(|&i| &corpus.claims[i]).collect();
    models.retrain(&train);

    let max_k = ks.iter().copied().max().unwrap_or(1);
    let mut per_classifier = vec![[0.0f64; 4]; ks.len()];
    let test: Vec<&ClaimRecord> = test_idx.iter().map(|&i| &corpus.claims[i]).collect();
    if test.is_empty() {
        return TopKAccuracy {
            ks: ks.to_vec(),
            per_classifier,
            average: vec![0.0; ks.len()],
        };
    }
    for claim in &test {
        let features = models.features(claim);
        let translation = models.translate(&features, max_k);
        let truths: [&dyn Fn(&str) -> bool; 4] = [
            &|l: &str| l == claim.relation,
            &|l: &str| l == claim.key,
            &|l: &str| claim.attributes.iter().any(|a| a == l),
            &|l: &str| l == claim.formula_text,
        ];
        for (p, kind) in PropertyKind::ALL.iter().enumerate() {
            let ranked = translation.of(*kind);
            for (ki, &k) in ks.iter().enumerate() {
                if ranked.iter().take(k).any(|(l, _)| truths[p](l)) {
                    per_classifier[ki][p] += 1.0;
                }
            }
        }
    }
    let n = test.len() as f64;
    for row in &mut per_classifier {
        for v in row.iter_mut() {
            *v /= n;
        }
    }
    let average = per_classifier
        .iter()
        .map(|row| row.iter().sum::<f64>() / 4.0)
        .collect();
    TopKAccuracy {
        ks: ks.to_vec(),
        per_classifier,
        average,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scrutinizer_corpus::CorpusConfig;

    #[test]
    fn topk_accuracy_is_monotone_in_k() {
        let corpus = Corpus::generate(CorpusConfig::small());
        let result = run_topk(&corpus, SystemConfig::test(), &[1, 5, 10], 3);
        assert_eq!(result.ks, vec![1, 5, 10]);
        for p in 0..4 {
            for w in result.per_classifier.windows(2) {
                assert!(
                    w[0][p] <= w[1][p] + 1e-12,
                    "classifier {p} not monotone: {:?}",
                    result.per_classifier
                );
            }
        }
        for w in result.average.windows(2) {
            assert!(w[0] <= w[1] + 1e-12);
        }
    }

    #[test]
    fn topk_beats_chance_on_held_out_claims() {
        let corpus = Corpus::generate(CorpusConfig::small());
        let result = run_topk(&corpus, SystemConfig::test(), &[1, 5], 3);
        // k=5 average accuracy should be clearly above a random guess over
        // dozens-to-hundreds of labels
        assert!(
            result.average[1] > 0.2,
            "top-5 average {:?}",
            result.average
        );
    }
}
