//! The verification report: the system's output artifact.

use std::fmt;

/// The system's verdict on one claim.
#[derive(Debug, Clone, PartialEq)]
pub enum Verdict {
    /// A verifying query was found and confirmed.
    Correct {
        /// The confirming SQL.
        query: String,
    },
    /// No verifying query exists; the claim is erroneous.
    Incorrect {
        /// The closest query's SQL (evidence).
        closest_query: Option<String>,
        /// Suggested replacement value (Example 4: "we suggest 3%").
        suggested_value: Option<f64>,
    },
    /// The checker skipped the claim.
    Skipped,
}

/// Outcome of verifying one claim.
#[derive(Debug, Clone)]
pub struct ClaimOutcome {
    /// Claim id.
    pub claim_id: usize,
    /// Verdict.
    pub verdict: Verdict,
    /// Crowd seconds spent.
    pub crowd_seconds: f64,
    /// Whether the verdict agrees with ground truth (simulation only).
    pub verdict_matches_truth: bool,
}

/// A complete verification report for a document.
#[derive(Debug, Clone, Default)]
pub struct VerificationReport {
    /// Per-claim outcomes in verification order.
    pub outcomes: Vec<ClaimOutcome>,
    /// Total crowd time (person-seconds) including section reading.
    pub total_crowd_seconds: f64,
    /// Total computation time (planning + ILP + retraining), seconds.
    pub computation_seconds: f64,
    /// Classifier accuracy trace: `(claims_verified_so_far, [acc; 4])`
    /// measured on each upcoming batch before verification.
    pub accuracy_trace: Vec<(usize, [f64; 4])>,
    /// Accumulated crowd seconds after each verified claim (Figure 7).
    pub time_trace: Vec<f64>,
}

impl VerificationReport {
    /// Number of claims the system judged erroneous.
    pub fn incorrect_count(&self) -> usize {
        self.outcomes
            .iter()
            .filter(|o| matches!(o.verdict, Verdict::Incorrect { .. }))
            .count()
    }

    /// Fraction of verdicts agreeing with ground truth.
    pub fn verdict_accuracy(&self) -> f64 {
        let judged: Vec<&ClaimOutcome> = self
            .outcomes
            .iter()
            .filter(|o| !matches!(o.verdict, Verdict::Skipped))
            .collect();
        if judged.is_empty() {
            return 0.0;
        }
        judged.iter().filter(|o| o.verdict_matches_truth).count() as f64 / judged.len() as f64
    }

    /// Mean over the accuracy trace of the average classifier accuracy —
    /// Table 2's "Avg. Accuracy".
    pub fn average_classifier_accuracy(&self) -> f64 {
        if self.accuracy_trace.is_empty() {
            return 0.0;
        }
        self.accuracy_trace
            .iter()
            .map(|(_, a)| a.iter().sum::<f64>() / 4.0)
            .sum::<f64>()
            / self.accuracy_trace.len() as f64
    }

    /// Max over the accuracy trace — Table 2's "Max Accuracy".
    pub fn max_classifier_accuracy(&self) -> f64 {
        self.accuracy_trace
            .iter()
            .map(|(_, a)| a.iter().sum::<f64>() / 4.0)
            .fold(0.0, f64::max)
    }
}

impl fmt::Display for VerificationReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "verification report: {} claims", self.outcomes.len())?;
        writeln!(
            f,
            "  crowd time: {:.1} h | computation: {:.1} min | verdict accuracy: {:.1}%",
            self.total_crowd_seconds / 3600.0,
            self.computation_seconds / 60.0,
            100.0 * self.verdict_accuracy()
        )?;
        writeln!(f, "  claims judged erroneous: {}", self.incorrect_count())?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(id: usize, verdict: Verdict, matches: bool) -> ClaimOutcome {
        ClaimOutcome {
            claim_id: id,
            verdict,
            crowd_seconds: 30.0,
            verdict_matches_truth: matches,
        }
    }

    #[test]
    fn counters() {
        let report = VerificationReport {
            outcomes: vec![
                outcome(
                    0,
                    Verdict::Correct {
                        query: "SELECT ...".into(),
                    },
                    true,
                ),
                outcome(
                    1,
                    Verdict::Incorrect {
                        closest_query: None,
                        suggested_value: Some(3.0),
                    },
                    true,
                ),
                outcome(2, Verdict::Skipped, false),
                outcome(
                    3,
                    Verdict::Correct {
                        query: "SELECT ...".into(),
                    },
                    false,
                ),
            ],
            ..Default::default()
        };
        assert_eq!(report.incorrect_count(), 1);
        // skipped excluded: 2 of 3 judged match truth
        assert!((report.verdict_accuracy() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn accuracy_aggregates() {
        let report = VerificationReport {
            accuracy_trace: vec![(0, [0.2; 4]), (100, [0.4; 4]), (200, [0.6; 4])],
            ..Default::default()
        };
        assert!((report.average_classifier_accuracy() - 0.4).abs() < 1e-12);
        assert!((report.max_classifier_accuracy() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn empty_report_is_sane() {
        let report = VerificationReport::default();
        assert_eq!(report.verdict_accuracy(), 0.0);
        assert_eq!(report.average_classifier_accuracy(), 0.0);
        assert!(report.to_string().contains("0 claims"));
    }
}
