//! Claim ordering: batch selection across the document (§5.2).
//!
//! Picks the next batch of claims to verify, trading off expected
//! verification cost (including section skim costs, Definition 8) against
//! training utility (Definition 7). The selection ILP (Definition 9) is
//! solved with `scrutinizer-ilp`; a utility-density greedy serves as the
//! fallback when branch & bound hits its node budget and as an ablation
//! baseline.

use crate::config::SystemConfig;
use scrutinizer_corpus::Document;
use scrutinizer_ilp::{solve_ilp, BranchConfig, IlpError, Model, Sense};

/// How the next batch is chosen.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OrderingStrategy {
    /// Document order — the "Sequential" baseline of §6.2.
    Sequential,
    /// The ILP of Definition 9.
    Ilp,
    /// Greedy utility-per-cost (ablation / fallback).
    Greedy,
}

/// Per-claim input to batch selection.
#[derive(Debug, Clone)]
pub struct ClaimChoice {
    /// Claim id.
    pub id: usize,
    /// Section the claim lives in.
    pub section: usize,
    /// Expected verification cost `v(c)` (seconds).
    pub cost: f64,
    /// Training utility `u(c)`.
    pub utility: f64,
}

/// Selects the next batch of claim ids.
///
/// `budget_seconds` is `t_m` of Definition 9; the batch size is bounded by
/// `[1, config.batch_size]`.
pub fn select_batch(
    choices: &[ClaimChoice],
    document: &Document,
    strategy: OrderingStrategy,
    budget_seconds: f64,
    config: &SystemConfig,
) -> Vec<usize> {
    if choices.is_empty() {
        return Vec::new();
    }
    match strategy {
        OrderingStrategy::Sequential => {
            let mut ordered: Vec<&ClaimChoice> = choices.iter().collect();
            ordered.sort_by_key(|c| c.id);
            ordered
                .iter()
                .take(config.batch_size)
                .map(|c| c.id)
                .collect()
        }
        OrderingStrategy::Greedy => greedy_batch(choices, document, budget_seconds, config),
        OrderingStrategy::Ilp => ilp_batch(choices, document, budget_seconds, config)
            .unwrap_or_else(|| greedy_batch(choices, document, budget_seconds, config)),
    }
}

/// Greedy: repeatedly take the claim with the best utility-per-marginal-cost
/// ratio, where marginal cost includes the section skim the first time a
/// section is touched.
fn greedy_batch(
    choices: &[ClaimChoice],
    document: &Document,
    budget_seconds: f64,
    config: &SystemConfig,
) -> Vec<usize> {
    let mut remaining: Vec<&ClaimChoice> = choices.iter().collect();
    let mut touched_sections: Vec<usize> = Vec::new();
    let mut batch = Vec::new();
    let mut spent = 0.0;
    while batch.len() < config.batch_size && !remaining.is_empty() {
        let mut best: Option<(usize, f64, f64)> = None; // (idx, density, marginal)
        for (i, c) in remaining.iter().enumerate() {
            let read = if touched_sections.contains(&c.section) {
                0.0
            } else {
                section_read_cost(document, c.section, config)
            };
            let marginal = c.cost + read;
            let density = (c.utility + 1e-9) / marginal.max(1e-9);
            if best.is_none() || density > best.expect("set").1 {
                best = Some((i, density, marginal));
            }
        }
        let Some((i, _, marginal)) = best else { break };
        if spent + marginal > budget_seconds && !batch.is_empty() {
            break;
        }
        let chosen = remaining.remove(i);
        spent += marginal;
        if !touched_sections.contains(&chosen.section) {
            touched_sections.push(chosen.section);
        }
        batch.push(chosen.id);
    }
    batch
}

/// The ILP of Definition 9: binary `cs_i` per claim, binary `sr_j` per
/// section, `sr_j ≥ cs_i` coverage constraints, the budget
/// `Σ cs·v + Σ sr·r ≤ t_m`, cardinality `1 ≤ Σ cs ≤ b_u`, objective
/// `max Σ u·cs` (the paper minimizes `−Σ u·cs`).
///
/// To keep the instance at the size Theorem 8 promises even with thousands
/// of unverified claims, selection runs over the `ordering_window` claims
/// with the highest utility density (documented in DESIGN.md).
fn ilp_batch(
    choices: &[ClaimChoice],
    document: &Document,
    budget_seconds: f64,
    config: &SystemConfig,
) -> Option<Vec<usize>> {
    // candidate window
    let mut window: Vec<&ClaimChoice> = choices.iter().collect();
    window.sort_by(|a, b| {
        let da = a.utility / a.cost.max(1e-9);
        let db = b.utility / b.cost.max(1e-9);
        db.total_cmp(&da).then(a.id.cmp(&b.id))
    });
    window.truncate(config.ordering_window);

    let mut model = Model::maximize();
    let claim_vars: Vec<_> = window
        .iter()
        .map(|c| model.add_binary(format!("cs{}", c.id), c.utility))
        .collect();
    // one sr per touched section
    let mut sections: Vec<usize> = window.iter().map(|c| c.section).collect();
    sections.sort_unstable();
    sections.dedup();
    let section_vars: Vec<_> = sections
        .iter()
        .map(|s| model.add_binary(format!("sr{s}"), 0.0))
        .collect();

    // coverage: sr_j − cs_i ≥ 0 for claim i in section j
    for (c, &cv) in window.iter().zip(&claim_vars) {
        let j = sections.binary_search(&c.section).expect("section present");
        model
            .add_constraint(vec![(section_vars[j], 1.0), (cv, -1.0)], Sense::Ge, 0.0)
            .ok()?;
    }
    // budget
    let mut budget_terms: Vec<_> = window
        .iter()
        .zip(&claim_vars)
        .map(|(c, &v)| (v, c.cost))
        .collect();
    for (&s, &sv) in sections.iter().zip(&section_vars) {
        budget_terms.push((sv, section_read_cost(document, s, config)));
    }
    model
        .add_constraint(budget_terms, Sense::Le, budget_seconds)
        .ok()?;
    // cardinality
    let cardinality: Vec<_> = claim_vars.iter().map(|&v| (v, 1.0)).collect();
    model
        .add_constraint(cardinality.clone(), Sense::Le, config.batch_size as f64)
        .ok()?;
    model.add_constraint(cardinality, Sense::Ge, 1.0).ok()?;

    // Definition 9 instances are knapsack-like: their LP relaxations are
    // near-integral and the incumbent after a few dozen nodes is optimal or
    // indistinguishable from it, so a small node budget keeps planning well
    // inside the paper's 15-minute total
    let solution = match solve_ilp(
        &model,
        BranchConfig {
            node_limit: 40,
            ..Default::default()
        },
    ) {
        Ok(s) => s,
        Err(IlpError::NodeLimit(Some(s))) => s,
        Err(_) => return None,
    };
    let batch: Vec<usize> = window
        .iter()
        .zip(&claim_vars)
        .filter(|(_, &v)| solution.is_set(v))
        .map(|(c, _)| c.id)
        .collect();
    if batch.is_empty() {
        None
    } else {
        Some(batch)
    }
}

fn section_read_cost(document: &Document, section: usize, config: &SystemConfig) -> f64 {
    document
        .sections
        .get(section)
        .map(|s| s.read_cost(config.read_seconds_per_sentence))
        .unwrap_or(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use scrutinizer_corpus::{Corpus, CorpusConfig};

    fn setup() -> (Document, Vec<ClaimChoice>, SystemConfig) {
        let corpus = Corpus::generate(CorpusConfig::small());
        let choices: Vec<ClaimChoice> = corpus
            .claims
            .iter()
            .map(|c| ClaimChoice {
                id: c.id,
                section: c.section,
                cost: 40.0 + (c.id % 7) as f64 * 10.0,
                utility: 1.0 + (c.id % 5) as f64,
            })
            .collect();
        (corpus.document, choices, SystemConfig::test())
    }

    #[test]
    fn sequential_takes_document_order() {
        let (document, choices, config) = setup();
        let batch = select_batch(
            &choices,
            &document,
            OrderingStrategy::Sequential,
            1e9,
            &config,
        );
        assert_eq!(batch.len(), config.batch_size);
        assert_eq!(batch[0], 0);
        assert!(batch.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn ilp_respects_budget_and_cardinality() {
        let (document, choices, config) = setup();
        let budget = 600.0;
        let batch = select_batch(&choices, &document, OrderingStrategy::Ilp, budget, &config);
        assert!(!batch.is_empty());
        assert!(batch.len() <= config.batch_size);
        // recompute total cost incl. section reads
        let mut sections: Vec<usize> = Vec::new();
        let mut total = 0.0;
        for &id in &batch {
            let c = choices.iter().find(|c| c.id == id).unwrap();
            total += c.cost;
            if !sections.contains(&c.section) {
                sections.push(c.section);
                total += document.sections[c.section].read_cost(config.read_seconds_per_sentence);
            }
        }
        assert!(
            total <= budget + 1e-6,
            "budget violated: {total} > {budget}"
        );
    }

    #[test]
    fn ilp_beats_or_matches_greedy_utility() {
        let (document, choices, config) = setup();
        let budget = 900.0;
        let utility_of = |batch: &[usize]| -> f64 {
            batch
                .iter()
                .map(|&id| choices.iter().find(|c| c.id == id).unwrap().utility)
                .sum()
        };
        let ilp = select_batch(&choices, &document, OrderingStrategy::Ilp, budget, &config);
        let greedy = select_batch(
            &choices,
            &document,
            OrderingStrategy::Greedy,
            budget,
            &config,
        );
        assert!(
            utility_of(&ilp) >= utility_of(&greedy) - 1e-6,
            "ILP {} vs greedy {}",
            utility_of(&ilp),
            utility_of(&greedy)
        );
    }

    #[test]
    fn greedy_clusters_sections() {
        // with tight budgets greedy should reuse sections it already paid for
        let (document, choices, config) = setup();
        let batch = select_batch(
            &choices,
            &document,
            OrderingStrategy::Greedy,
            500.0,
            &config,
        );
        assert!(!batch.is_empty());
        let mut sections: Vec<usize> = batch
            .iter()
            .map(|&id| choices.iter().find(|c| c.id == id).unwrap().section)
            .collect();
        sections.sort_unstable();
        sections.dedup();
        assert!(sections.len() <= batch.len(), "section reuse expected");
    }

    #[test]
    fn empty_input_yields_empty_batch() {
        let (document, _, config) = setup();
        assert!(select_batch(&[], &document, OrderingStrategy::Ilp, 100.0, &config).is_empty());
    }
}
