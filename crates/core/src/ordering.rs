//! Claim ordering: batch selection across the document (§5.2).
//!
//! Picks the next batch of claims to verify, trading off expected
//! verification cost (including section skim costs, Definition 8) against
//! training utility (Definition 7). The selection ILP (Definition 9) is
//! solved with `scrutinizer-ilp`'s parallel, warm-started branch & bound; a
//! utility-density greedy serves as the fallback when the solver fails and
//! as an ablation baseline.
//!
//! [`select_batch`] returns just the claim ids; [`select_batch_detailed`]
//! additionally reports the achieved utility, the method that produced the
//! batch, the solver's search counters, and — when the ILP could not answer
//! — the [`IlpError`] that forced the greedy fallback, so callers can log
//! it instead of losing it.

use crate::config::SystemConfig;
use scrutinizer_corpus::Document;
use scrutinizer_ilp::simplex::solve_lp;
use scrutinizer_ilp::{
    solve_ilp, solve_ilp_parallel, BranchConfig, IlpError, Model, ParallelConfig, Sense, SolveStats,
};

/// Node budget of the parallel planning solver. The incumbent is seeded
/// with the greedy solution before the search starts, so every explored
/// node strictly *improves* on greedy — a dozen warm-started nodes recoup
/// most of the ILP's advantage at a fraction of the seed solver's 40 cold
/// LP solves (which, at the default 150-claim window, routinely found no
/// incumbent at all and fell back to greedy anyway).
const PARALLEL_NODE_LIMIT: usize = 12;

/// Relative optimality gap of the planning solver. Batch selection needs
/// "the right claims", not the last decimal of the utility sum; a 1 % gap
/// prunes the symmetric-optima plateaus Definition-9 instances produce.
const PLANNING_GAP: f64 = 0.01;

/// How the next batch is chosen.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OrderingStrategy {
    /// Document order — the "Sequential" baseline of §6.2.
    Sequential,
    /// The ILP of Definition 9.
    Ilp,
    /// Greedy utility-per-cost (ablation / fallback).
    Greedy,
}

/// Per-claim input to batch selection.
#[derive(Debug, Clone)]
pub struct ClaimChoice {
    /// Claim id.
    pub id: usize,
    /// Section the claim lives in.
    pub section: usize,
    /// Expected verification cost `v(c)` (seconds).
    pub cost: f64,
    /// Training utility `u(c)`.
    pub utility: f64,
}

/// What actually produced a batch (the requested strategy may degrade).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchMethod {
    /// Document order.
    Sequential,
    /// The ILP solved to (gap-)optimality.
    IlpOptimal,
    /// The ILP hit its node budget; the batch is its best incumbent.
    IlpIncumbent,
    /// The ILP failed; the greedy heuristic answered instead. The failure
    /// is recorded in [`BatchSelection::fallback`].
    GreedyFallback,
    /// The ILP solved its candidate window, but the full-pool greedy found
    /// a better batch outside that window (possible when high-read-cost
    /// sections push value below the utility-density cut); the greedy
    /// batch is returned. This post-hoc max makes [`OrderingStrategy::Ilp`]
    /// never worse than [`OrderingStrategy::Greedy`] *by construction*,
    /// whatever the window or thread schedule did.
    GreedyOverWindow,
    /// Greedy was the requested strategy.
    Greedy,
    /// The incremental planner repaired a cached solution instead of
    /// solving cold (see [`crate::incremental::IncrementalPlanner`]).
    IncrementalRepair,
}

/// The outcome of one batch selection.
#[derive(Debug, Clone)]
pub struct BatchSelection {
    /// Selected claim ids.
    pub batch: Vec<usize>,
    /// Total training utility of the batch (Definition 9's objective).
    pub utility: f64,
    /// What produced the batch.
    pub method: BatchMethod,
    /// The solver error behind a [`BatchMethod::GreedyFallback`] — returned
    /// instead of silently dropped so the engine can log it.
    pub fallback: Option<IlpError>,
    /// Search counters when the parallel ILP ran to completion.
    pub solver: Option<SolveStats>,
}

impl BatchSelection {
    fn with_utility(mut self, choices: &[ClaimChoice]) -> Self {
        self.utility = batch_utility(&self.batch, choices);
        self
    }
}

/// The canonical candidate order: utility-per-cost density descending,
/// ties broken by claim id. The ILP's candidate window, the greedy seed
/// ordering and the incremental planner's repair pool all sort with this
/// one comparator so they can never drift apart.
pub fn density_cmp(a: &ClaimChoice, b: &ClaimChoice) -> std::cmp::Ordering {
    let da = a.utility / a.cost.max(1e-9);
    let db = b.utility / b.cost.max(1e-9);
    db.total_cmp(&da).then(a.id.cmp(&b.id))
}

/// Total utility of a batch under the given per-claim choices.
pub fn batch_utility(batch: &[usize], choices: &[ClaimChoice]) -> f64 {
    batch
        .iter()
        .map(|&id| {
            choices
                .iter()
                .find(|c| c.id == id)
                .map_or(0.0, |c| c.utility)
        })
        .sum()
}

/// Selects the next batch of claim ids.
///
/// `budget_seconds` is `t_m` of Definition 9; the batch size is bounded by
/// `[1, config.batch_size]`. This is the thin wrapper over
/// [`select_batch_detailed`] for callers that only need the ids.
///
/// ```
/// use scrutinizer_core::ordering::{select_batch, ClaimChoice, OrderingStrategy};
/// use scrutinizer_core::SystemConfig;
/// use scrutinizer_corpus::{Document, Section};
///
/// let document = Document {
///     sections: vec![Section {
///         id: 0,
///         title: "Outlook".into(),
///         sentence_count: 10,
///         claim_ids: vec![0, 1],
///     }],
///     total_sentences: 10,
/// };
/// let choices = vec![
///     ClaimChoice { id: 0, section: 0, cost: 40.0, utility: 2.0 },
///     ClaimChoice { id: 1, section: 0, cost: 45.0, utility: 5.0 },
/// ];
/// let config = SystemConfig::test();
/// let batch = select_batch(
///     &choices,
///     &document,
///     OrderingStrategy::Ilp,
///     1_000.0,
///     &config,
/// );
/// assert!(batch.contains(&1), "the high-utility claim is selected");
/// ```
pub fn select_batch(
    choices: &[ClaimChoice],
    document: &Document,
    strategy: OrderingStrategy,
    budget_seconds: f64,
    config: &SystemConfig,
) -> Vec<usize> {
    select_batch_detailed(choices, document, strategy, budget_seconds, config).batch
}

/// [`select_batch`] with the full [`BatchSelection`] report.
pub fn select_batch_detailed(
    choices: &[ClaimChoice],
    document: &Document,
    strategy: OrderingStrategy,
    budget_seconds: f64,
    config: &SystemConfig,
) -> BatchSelection {
    select_batch_with_hint(choices, document, strategy, budget_seconds, config, None)
}

/// [`select_batch_detailed`] with an optional prior batch whose claims seed
/// the solver's incumbent (the incremental planner's warm start).
pub fn select_batch_with_hint(
    choices: &[ClaimChoice],
    document: &Document,
    strategy: OrderingStrategy,
    budget_seconds: f64,
    config: &SystemConfig,
    prior_batch: Option<&[usize]>,
) -> BatchSelection {
    if choices.is_empty() {
        return BatchSelection {
            batch: Vec::new(),
            utility: 0.0,
            method: match strategy {
                OrderingStrategy::Sequential => BatchMethod::Sequential,
                OrderingStrategy::Ilp => BatchMethod::IlpOptimal,
                OrderingStrategy::Greedy => BatchMethod::Greedy,
            },
            fallback: None,
            solver: None,
        };
    }
    match strategy {
        OrderingStrategy::Sequential => {
            let mut ordered: Vec<&ClaimChoice> = choices.iter().collect();
            ordered.sort_by_key(|c| c.id);
            BatchSelection {
                batch: ordered
                    .iter()
                    .take(config.batch_size)
                    .map(|c| c.id)
                    .collect(),
                utility: 0.0,
                method: BatchMethod::Sequential,
                fallback: None,
                solver: None,
            }
            .with_utility(choices)
        }
        OrderingStrategy::Greedy => BatchSelection {
            batch: greedy_fill(&[], choices, document, budget_seconds, config),
            utility: 0.0,
            method: BatchMethod::Greedy,
            fallback: None,
            solver: None,
        }
        .with_utility(choices),
        OrderingStrategy::Ilp => {
            let greedy = greedy_fill(&[], choices, document, budget_seconds, config);
            match ilp_batch(choices, document, budget_seconds, config, prior_batch) {
                Ok((batch, method, solver)) => {
                    let selection = BatchSelection {
                        batch,
                        utility: 0.0,
                        method,
                        fallback: None,
                        solver,
                    }
                    .with_utility(choices);
                    // the solver only sees the candidate window and its
                    // greedy seed may be discarded when budget-infeasible —
                    // max against the full-pool greedy so Ilp dominates
                    // Greedy unconditionally
                    let greedy_utility = batch_utility(&greedy, choices);
                    if greedy_utility > selection.utility + 1e-12 {
                        BatchSelection {
                            batch: greedy,
                            utility: greedy_utility,
                            method: BatchMethod::GreedyOverWindow,
                            ..selection
                        }
                    } else {
                        selection
                    }
                }
                Err(error) => BatchSelection {
                    batch: greedy,
                    utility: 0.0,
                    method: BatchMethod::GreedyFallback,
                    fallback: Some(error),
                    solver: None,
                }
                .with_utility(choices),
            }
        }
    }
}

/// The pre-PR3 serial ILP path — one cold branch & bound per call, greedy
/// on failure — kept verbatim as the benchmark baseline and ablation.
pub fn select_batch_serial_baseline(
    choices: &[ClaimChoice],
    document: &Document,
    budget_seconds: f64,
    config: &SystemConfig,
) -> Vec<usize> {
    if choices.is_empty() {
        return Vec::new();
    }
    serial_ilp_batch(choices, document, budget_seconds, config)
        .unwrap_or_else(|| greedy_fill(&[], choices, document, budget_seconds, config))
}

/// Greedy utility-per-marginal-cost selection, optionally seeded with prior
/// picks: `seed` claims are admitted first (in density order, while they
/// fit), then the standard greedy loop fills the remainder. The marginal
/// cost of a claim includes the section skim the first time its section is
/// touched. `greedy_fill(&[], ..)` is the plain greedy baseline.
pub fn greedy_fill(
    seed: &[usize],
    choices: &[ClaimChoice],
    document: &Document,
    budget_seconds: f64,
    config: &SystemConfig,
) -> Vec<usize> {
    let mut remaining: Vec<&ClaimChoice> = choices.iter().collect();
    let mut touched_sections: Vec<usize> = Vec::new();
    let mut batch = Vec::new();
    let mut spent = 0.0;

    // admit the seed first, best density first, while it fits
    let mut seeded: Vec<&ClaimChoice> = choices.iter().filter(|c| seed.contains(&c.id)).collect();
    seeded.sort_by(|a, b| density_cmp(a, b));
    for c in seeded {
        if batch.len() >= config.batch_size {
            break;
        }
        let read = if touched_sections.contains(&c.section) {
            0.0
        } else {
            section_read_cost(document, c.section, config)
        };
        let marginal = c.cost + read;
        if spent + marginal > budget_seconds && !batch.is_empty() {
            continue;
        }
        spent += marginal;
        if !touched_sections.contains(&c.section) {
            touched_sections.push(c.section);
        }
        batch.push(c.id);
        remaining.retain(|r| r.id != c.id);
    }

    while batch.len() < config.batch_size && !remaining.is_empty() {
        let mut best: Option<(usize, f64, f64)> = None; // (idx, density, marginal)
        for (i, c) in remaining.iter().enumerate() {
            let read = if touched_sections.contains(&c.section) {
                0.0
            } else {
                section_read_cost(document, c.section, config)
            };
            let marginal = c.cost + read;
            let density = (c.utility + 1e-9) / marginal.max(1e-9);
            if best.is_none() || density > best.expect("set").1 {
                best = Some((i, density, marginal));
            }
        }
        let Some((i, _, marginal)) = best else { break };
        if spent + marginal > budget_seconds && !batch.is_empty() {
            break;
        }
        let chosen = remaining.remove(i);
        spent += marginal;
        if !touched_sections.contains(&chosen.section) {
            touched_sections.push(chosen.section);
        }
        batch.push(chosen.id);
    }
    batch
}

/// The candidate window plus the Definition-9 model built over it.
struct WindowModel<'a> {
    window: Vec<&'a ClaimChoice>,
    model: Model,
    claim_vars: Vec<scrutinizer_ilp::VarId>,
    sections: Vec<usize>,
    section_vars: Vec<scrutinizer_ilp::VarId>,
}

/// Builds the ILP of Definition 9: binary `cs_i` per claim, binary `sr_j`
/// per section, `sr_j ≥ cs_i` coverage constraints, the budget
/// `Σ cs·v + Σ sr·r ≤ t_m`, cardinality `1 ≤ Σ cs ≤ b_u`, objective
/// `max Σ u·cs` (the paper minimizes `−Σ u·cs`).
///
/// To keep the instance at the size Theorem 8 promises even with thousands
/// of unverified claims, selection runs over the `ordering_window` claims
/// with the highest utility density.
fn build_window_model<'a>(
    choices: &'a [ClaimChoice],
    document: &Document,
    budget_seconds: f64,
    config: &SystemConfig,
) -> Option<WindowModel<'a>> {
    // candidate window
    let mut window: Vec<&ClaimChoice> = choices.iter().collect();
    window.sort_by(|a, b| density_cmp(a, b));
    window.truncate(config.ordering_window);

    let mut model = Model::maximize();
    let claim_vars: Vec<_> = window
        .iter()
        .map(|c| model.add_binary(format!("cs{}", c.id), c.utility))
        .collect();
    // one sr per touched section
    let mut sections: Vec<usize> = window.iter().map(|c| c.section).collect();
    sections.sort_unstable();
    sections.dedup();
    let section_vars: Vec<_> = sections
        .iter()
        .map(|s| model.add_binary(format!("sr{s}"), 0.0))
        .collect();

    // coverage: sr_j − cs_i ≥ 0 for claim i in section j
    for (c, &cv) in window.iter().zip(&claim_vars) {
        let j = sections.binary_search(&c.section).expect("section present");
        model
            .add_constraint(vec![(section_vars[j], 1.0), (cv, -1.0)], Sense::Ge, 0.0)
            .ok()?;
    }
    // budget
    let mut budget_terms: Vec<_> = window
        .iter()
        .zip(&claim_vars)
        .map(|(c, &v)| (v, c.cost))
        .collect();
    for (&s, &sv) in sections.iter().zip(&section_vars) {
        budget_terms.push((sv, section_read_cost(document, s, config)));
    }
    model
        .add_constraint(budget_terms, Sense::Le, budget_seconds)
        .ok()?;
    // cardinality
    let cardinality: Vec<_> = claim_vars.iter().map(|&v| (v, 1.0)).collect();
    model
        .add_constraint(cardinality.clone(), Sense::Le, config.batch_size as f64)
        .ok()?;
    model.add_constraint(cardinality, Sense::Ge, 1.0).ok()?;

    Some(WindowModel {
        window,
        model,
        claim_vars,
        sections,
        section_vars,
    })
}

/// Maps a batch of claim ids onto the window model's variable vector
/// (claim vars plus the section vars they force on).
fn hint_values(wm: &WindowModel<'_>, batch: &[usize]) -> Vec<f64> {
    let mut values = vec![0.0; wm.model.num_variables()];
    for (c, v) in wm.window.iter().zip(&wm.claim_vars) {
        if batch.contains(&c.id) {
            values[v.index()] = 1.0;
            let j = wm
                .sections
                .binary_search(&c.section)
                .expect("section present");
            values[wm.section_vars[j].index()] = 1.0;
        }
    }
    values
}

/// Solves Definition 9 with the parallel, warm-started solver. The greedy
/// heuristic's answer always seeds the incumbent (so the ILP can only
/// match or beat it); a prior batch from the incremental planner seeds it
/// too. Errors — no longer swallowed — bubble up so the caller records the
/// fallback reason.
fn ilp_batch(
    choices: &[ClaimChoice],
    document: &Document,
    budget_seconds: f64,
    config: &SystemConfig,
    prior_batch: Option<&[usize]>,
) -> Result<(Vec<usize>, BatchMethod, Option<SolveStats>), IlpError> {
    let wm = build_window_model(choices, document, budget_seconds, config)
        .ok_or(IlpError::Infeasible)?;

    // incumbent seeds: greedy over the window, plus the prior batch
    let window_choices: Vec<ClaimChoice> = wm.window.iter().map(|&c| c.clone()).collect();
    let greedy_seed = greedy_fill(&[], &window_choices, document, budget_seconds, config);
    let greedy_hint = hint_values(&wm, &greedy_seed);
    let prior_hint = prior_batch.map(|prior| hint_values(&wm, prior));
    let mut hints: Vec<&[f64]> = vec![&greedy_hint];
    if let Some(prior) = &prior_hint {
        hints.push(prior);
    }

    let parallel = ParallelConfig {
        threads: config.planner_threads,
        node_limit: PARALLEL_NODE_LIMIT,
        gap: PLANNING_GAP,
        ..Default::default()
    };
    let solve = solve_ilp_parallel(&wm.model, parallel, &hints)?;
    let method = if solve.stats.node_limit_hit {
        BatchMethod::IlpIncumbent
    } else {
        BatchMethod::IlpOptimal
    };
    let batch: Vec<usize> = wm
        .window
        .iter()
        .zip(&wm.claim_vars)
        .filter(|(_, &v)| solve.solution.is_set(v))
        .map(|(c, _)| c.id)
        .collect();
    if batch.is_empty() {
        return Err(IlpError::Infeasible);
    }
    Ok((batch, method, Some(solve.stats)))
}

/// The LP-relaxation value of the Definition-9 window model — a tight
/// upper bound on the achievable batch utility (the same bound the branch
/// & bound prunes against at its root). One warm-free LP solve: an order
/// of magnitude cheaper than a full solve, which is what makes it usable
/// as the incremental planner's repair-acceptance test.
pub fn window_lp_bound(
    choices: &[ClaimChoice],
    document: &Document,
    budget_seconds: f64,
    config: &SystemConfig,
) -> Option<f64> {
    let wm = build_window_model(choices, document, budget_seconds, config)?;
    let lower: Vec<f64> = vec![0.0; wm.model.num_variables()];
    let upper: Vec<f64> = vec![1.0; wm.model.num_variables()];
    solve_lp(&wm.model, &lower, &upper)
        .ok()
        .map(|s| s.objective)
}

/// The seed's serial solve: cold branch & bound, 40-node budget, incumbent
/// accepted on exhaustion, `None` on any other failure.
fn serial_ilp_batch(
    choices: &[ClaimChoice],
    document: &Document,
    budget_seconds: f64,
    config: &SystemConfig,
) -> Option<Vec<usize>> {
    let wm = build_window_model(choices, document, budget_seconds, config)?;
    let solution = match solve_ilp(
        &wm.model,
        BranchConfig {
            node_limit: 40,
            ..Default::default()
        },
    ) {
        Ok(s) => s,
        Err(IlpError::NodeLimit(Some(s))) => s,
        Err(_) => return None,
    };
    let batch: Vec<usize> = wm
        .window
        .iter()
        .zip(&wm.claim_vars)
        .filter(|(_, &v)| solution.is_set(v))
        .map(|(c, _)| c.id)
        .collect();
    if batch.is_empty() {
        None
    } else {
        Some(batch)
    }
}

fn section_read_cost(document: &Document, section: usize, config: &SystemConfig) -> f64 {
    document
        .sections
        .get(section)
        .map(|s| s.read_cost(config.read_seconds_per_sentence))
        .unwrap_or(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use scrutinizer_corpus::{Corpus, CorpusConfig};

    fn setup() -> (Document, Vec<ClaimChoice>, SystemConfig) {
        let corpus = Corpus::generate(CorpusConfig::small());
        let choices: Vec<ClaimChoice> = corpus
            .claims
            .iter()
            .map(|c| ClaimChoice {
                id: c.id,
                section: c.section,
                cost: 40.0 + (c.id % 7) as f64 * 10.0,
                utility: 1.0 + (c.id % 5) as f64,
            })
            .collect();
        (corpus.document, choices, SystemConfig::test())
    }

    #[test]
    fn sequential_takes_document_order() {
        let (document, choices, config) = setup();
        let batch = select_batch(
            &choices,
            &document,
            OrderingStrategy::Sequential,
            1e9,
            &config,
        );
        assert_eq!(batch.len(), config.batch_size);
        assert_eq!(batch[0], 0);
        assert!(batch.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn ilp_respects_budget_and_cardinality() {
        let (document, choices, config) = setup();
        let budget = 600.0;
        let batch = select_batch(&choices, &document, OrderingStrategy::Ilp, budget, &config);
        assert!(!batch.is_empty());
        assert!(batch.len() <= config.batch_size);
        // recompute total cost incl. section reads
        let mut sections: Vec<usize> = Vec::new();
        let mut total = 0.0;
        for &id in &batch {
            let c = choices.iter().find(|c| c.id == id).unwrap();
            total += c.cost;
            if !sections.contains(&c.section) {
                sections.push(c.section);
                total += document.sections[c.section].read_cost(config.read_seconds_per_sentence);
            }
        }
        assert!(
            total <= budget + 1e-6,
            "budget violated: {total} > {budget}"
        );
    }

    #[test]
    fn ilp_beats_or_matches_greedy_utility() {
        let (document, choices, config) = setup();
        let budget = 900.0;
        let ilp =
            select_batch_detailed(&choices, &document, OrderingStrategy::Ilp, budget, &config);
        let greedy = select_batch_detailed(
            &choices,
            &document,
            OrderingStrategy::Greedy,
            budget,
            &config,
        );
        assert!(
            ilp.utility >= greedy.utility - 1e-6,
            "ILP {} vs greedy {}",
            ilp.utility,
            greedy.utility
        );
        assert!(
            matches!(
                ilp.method,
                BatchMethod::IlpOptimal | BatchMethod::IlpIncumbent | BatchMethod::GreedyOverWindow
            ),
            "{:?}",
            ilp.method
        );
        assert!(ilp.fallback.is_none());
        let solver = ilp.solver.expect("parallel solver ran");
        assert!(solver.lp_solves >= 1);
    }

    #[test]
    fn parallel_matches_serial_baseline_objective() {
        let (document, choices, config) = setup();
        for budget in [500.0, 900.0, 2000.0] {
            let parallel =
                select_batch_detailed(&choices, &document, OrderingStrategy::Ilp, budget, &config);
            let serial = select_batch_serial_baseline(&choices, &document, budget, &config);
            let serial_utility = batch_utility(&serial, &choices);
            // the parallel solver legitimately trades up to PLANNING_GAP of
            // objective for early termination, so the guarantee is
            // gap-relative, not exact
            assert!(
                parallel.utility >= serial_utility * (1.0 - PLANNING_GAP) - 1e-6,
                "budget {budget}: parallel {} < serial {} beyond the gap",
                parallel.utility,
                serial_utility
            );
        }
    }

    #[test]
    fn greedy_clusters_sections() {
        // with tight budgets greedy should reuse sections it already paid for
        let (document, choices, config) = setup();
        let batch = select_batch(
            &choices,
            &document,
            OrderingStrategy::Greedy,
            500.0,
            &config,
        );
        assert!(!batch.is_empty());
        let mut sections: Vec<usize> = batch
            .iter()
            .map(|&id| choices.iter().find(|c| c.id == id).unwrap().section)
            .collect();
        sections.sort_unstable();
        sections.dedup();
        assert!(sections.len() <= batch.len(), "section reuse expected");
    }

    #[test]
    fn empty_input_yields_empty_batch() {
        let (document, _, config) = setup();
        assert!(select_batch(&[], &document, OrderingStrategy::Ilp, 100.0, &config).is_empty());
    }

    #[test]
    fn infeasible_ilp_reports_fallback_reason() {
        // a budget below every claim's cost makes Definition 9 infeasible
        // (cardinality demands ≥ 1 claim); greedy still answers, and the
        // reason is returned instead of dropped
        let (document, choices, config) = setup();
        let selection =
            select_batch_detailed(&choices, &document, OrderingStrategy::Ilp, 1.0, &config);
        assert_eq!(selection.method, BatchMethod::GreedyFallback);
        assert!(matches!(selection.fallback, Some(IlpError::Infeasible)));
        assert!(
            !selection.batch.is_empty(),
            "greedy admits the first claim even over budget"
        );
    }

    #[test]
    fn hint_never_hurts() {
        let (document, choices, config) = setup();
        let budget = 900.0;
        let cold =
            select_batch_detailed(&choices, &document, OrderingStrategy::Ilp, budget, &config);
        let hinted = select_batch_with_hint(
            &choices,
            &document,
            OrderingStrategy::Ilp,
            budget,
            &config,
            Some(&cold.batch),
        );
        // the hint seeds the incumbent with the cold batch, so the hinted
        // solve can only match or improve it (it may legitimately improve
        // by up to the gap the cold run pruned away — exact equality is
        // not guaranteed under gap pruning)
        assert!(
            hinted.utility >= cold.utility - 1e-9,
            "hinted {} < cold {}",
            hinted.utility,
            cold.utility
        );
    }

    #[test]
    fn greedy_fill_seeds_survive() {
        let (document, choices, config) = setup();
        let seed = [choices[3].id, choices[10].id];
        let batch = greedy_fill(&seed, &choices, &document, 1e9, &config);
        for id in seed {
            assert!(batch.contains(&id), "seed {id} must survive a loose budget");
        }
    }
}
