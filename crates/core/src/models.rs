//! The four property classifiers behind claim-to-query translation (§3.1).

use crate::config::SystemConfig;
use crate::feature_store::FeatureStore;
use scrutinizer_corpus::{ClaimRecord, Corpus};
use scrutinizer_learn::{
    training_utility, ClassifierState, FusedEntropy, LabelDict, PropertyClassifier,
};
use scrutinizer_text::{ClaimFeaturizer, FeatureMatrix, SparseVector, SparseView};

/// The four query properties the classifiers predict.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PropertyKind {
    /// Which relation(s) hold the data.
    Relation,
    /// Which primary-key value (row).
    Key,
    /// Which attribute labels (columns).
    Attribute,
    /// Which check formula.
    Formula,
}

impl PropertyKind {
    /// All four, in the paper's order.
    pub const ALL: [PropertyKind; 4] = [
        PropertyKind::Relation,
        PropertyKind::Key,
        PropertyKind::Attribute,
        PropertyKind::Formula,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            PropertyKind::Relation => "relation",
            PropertyKind::Key => "row",
            PropertyKind::Attribute => "attribute",
            PropertyKind::Formula => "formula",
        }
    }
}

/// Ranked candidates for every property of one claim.
#[derive(Debug, Clone)]
pub struct Translation {
    /// `(label, probability)` per property, probability-descending.
    pub candidates: [Vec<(String, f32)>; 4],
}

impl Translation {
    /// Candidates of one property.
    pub fn of(&self, kind: PropertyKind) -> &[(String, f32)] {
        &self.candidates[kind as usize]
    }
}

/// The serializable learned state of [`SystemModels`]: what a durable
/// model snapshot carries. Everything else ([`ClaimFeaturizer`], the
/// fused scoring block) is deterministically derived and rebuilt on
/// restore.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelsState {
    /// Per-property learned state, in [`PropertyKind`] order.
    pub classifiers: [ClassifierState; 4],
    /// The rehearsal log of claim ids.
    pub replay: Vec<usize>,
    /// Round-robin cursor into `replay`.
    pub replay_cursor: usize,
}

/// The trained models: shared featurizer + four classifiers.
#[derive(Debug, Clone)]
pub struct SystemModels {
    /// The fitted featurizer — immutable after bootstrap (the
    /// [`FeatureStore`] depends on that), so snapshot copies share it via
    /// `Arc` instead of deep-copying the embedding table and TF-IDF
    /// vocabularies on every retrain epoch.
    featurizer: std::sync::Arc<ClaimFeaturizer>,
    classifiers: [PropertyClassifier; 4],
    /// Claim ids folded in by past incremental retrains — the rehearsal
    /// log. Each warm-start batch mixes in a round-robin sample of these
    /// so a skewed new batch cannot drag the classifiers off everything
    /// they already learned (catastrophic-drift guard; work stays O(batch)
    /// instead of the from-scratch O(history)).
    replay: Vec<usize>,
    /// Round-robin cursor into `replay`.
    replay_cursor: usize,
    /// The four classifiers' scoring layouts fused into one
    /// `dim × total_classes` block — rebuilt after every retrain, so
    /// batched utility scoring walks the CSR batch exactly once.
    fused: FusedEntropy,
}

impl SystemModels {
    /// Builds models for a corpus: fits the featurizer (unsupervised — works
    /// from the raw text, so cold start is fine) and initializes untrained
    /// classifiers over the corpus label spaces.
    pub fn bootstrap(corpus: &Corpus, config: &SystemConfig) -> Self {
        let pairs: Vec<(String, String)> = corpus
            .claims
            .iter()
            .map(|c| (c.claim_text.clone(), c.sentence_text.clone()))
            .collect();
        let featurizer = ClaimFeaturizer::fit(&pairs, config.featurizer);
        let dim = featurizer.dimension();

        let relation_labels =
            LabelDict::from_labels(corpus.catalog.table_names().map(str::to_string));
        let key_labels = LabelDict::from_labels(corpus.catalog.all_keys());
        let attribute_labels = LabelDict::from_labels(corpus.catalog.all_attributes());
        let formula_labels = LabelDict::from_labels(corpus.formulas.iter().map(|f| f.text.clone()));

        let classifiers = [
            PropertyClassifier::new("relation", relation_labels, dim, config.training),
            PropertyClassifier::new("row", key_labels, dim, config.training),
            PropertyClassifier::new("attribute", attribute_labels, dim, config.training),
            PropertyClassifier::new("formula", formula_labels, dim, config.training),
        ];
        let fused = FusedEntropy::fuse(&classifiers.iter().collect::<Vec<_>>());
        SystemModels {
            featurizer: std::sync::Arc::new(featurizer),
            classifiers,
            replay: Vec::new(),
            replay_cursor: 0,
            fused,
        }
    }

    /// The fitted featurizer (shared by the [`FeatureStore`]).
    pub fn featurizer(&self) -> &ClaimFeaturizer {
        &self.featurizer
    }

    /// A copy of the learned state for persistence: the four classifiers
    /// plus the rehearsal log. The featurizer is *not* included — it is
    /// fitted deterministically from the corpus at bootstrap, so a
    /// restored process rebuilds it and layers the learned state on top.
    pub fn export_state(&self) -> ModelsState {
        ModelsState {
            classifiers: self
                .classifiers
                .each_ref()
                .map(PropertyClassifier::export_state),
            replay: self.replay.clone(),
            replay_cursor: self.replay_cursor,
        }
    }

    /// Restores learned state exported by [`export_state`] onto
    /// bootstrapped models (same corpus, same featurizer config), then
    /// re-fuses the scoring block. Fails — leaving `self` untouched
    /// — if the snapshot's shapes do not fit this featurizer.
    ///
    /// [`export_state`]: Self::export_state
    pub fn restore_state(&mut self, state: ModelsState) -> Result<(), String> {
        let mut classifiers = self.classifiers.clone();
        let [relation, key, attribute, formula] = state.classifiers;
        classifiers[0].restore_state(relation)?;
        classifiers[1].restore_state(key)?;
        classifiers[2].restore_state(attribute)?;
        classifiers[3].restore_state(formula)?;
        self.classifiers = classifiers;
        self.replay = state.replay;
        self.replay_cursor = if self.replay.is_empty() {
            0
        } else {
            state.replay_cursor % self.replay.len()
        };
        self.fused = FusedEntropy::fuse(&self.classifiers.iter().collect::<Vec<_>>());
        Ok(())
    }

    /// Features of a claim (one-shot path; bulk consumers go through a
    /// [`FeatureStore`] so each claim is featurized exactly once).
    pub fn features(&self, claim: &ClaimRecord) -> SparseVector {
        self.featurizer
            .features(&claim.claim_text, &claim.sentence_text)
    }

    /// Classifier of a property.
    pub fn classifier(&self, kind: PropertyKind) -> &PropertyClassifier {
        &self.classifiers[kind as usize]
    }

    /// Translates a claim: top-k candidates per property (§3.1).
    pub fn translate(&self, features: &SparseVector, k: usize) -> Translation {
        self.translate_view(features.view(), k)
    }

    /// [`translate`](Self::translate) over borrowed features (a
    /// [`FeatureStore`] row); label strings materialize only here, at the
    /// screen boundary.
    pub fn translate_view(&self, features: SparseView<'_>, k: usize) -> Translation {
        let ranked = |c: &PropertyClassifier| -> Vec<(String, f32)> {
            c.top_k_ids(features, k)
                .into_iter()
                .map(|(id, p)| (c.label_name(id).to_string(), p))
                .collect()
        };
        Translation {
            candidates: [
                ranked(&self.classifiers[0]),
                ranked(&self.classifiers[1]),
                ranked(&self.classifiers[2]),
                ranked(&self.classifiers[3]),
            ],
        }
    }

    /// Training utility `u(c)` of Definition 7 (summed prediction entropy).
    ///
    /// One claim at a time; planning over many open claims goes through
    /// [`training_utilities`](Self::training_utilities), which scores a
    /// whole CSR batch per classifier (the `translate` bench measures the
    /// gap).
    pub fn training_utility(&self, features: &SparseVector) -> f64 {
        let refs: Vec<&PropertyClassifier> = self.classifiers.iter().collect();
        training_utility(&refs, features)
    }

    /// Batched Definition 7: the training utility of every row of a CSR
    /// feature batch (see [`FeatureStore::gather`]). One pass over the
    /// batch through the [`FusedEntropy`] block — every stored feature is
    /// one contiguous multiply-add sweep across all four classifiers'
    /// classes, with a single reused scratch row and no per-claim
    /// allocation.
    pub fn training_utilities(&self, rows: &FeatureMatrix) -> Vec<f64> {
        let mut out = Vec::new();
        self.fused.utilities_into(rows, &mut out);
        out
    }

    /// [`training_utilities`](Self::training_utilities) through the
    /// scalar reference kernel
    /// ([`FusedEntropy::utilities_into_reference`]): the parity oracle
    /// and the baseline the `translate` bench holds the vectorized fused
    /// sweep to (≥ 2× on the aligned CSR layout).
    pub fn training_utilities_reference(&self, rows: &FeatureMatrix) -> Vec<f64> {
        let mut out = Vec::new();
        self.fused.utilities_into_reference(rows, &mut out);
        out
    }

    /// Retrains all four classifiers from verified claims — `Retrain(N, A)`
    /// of Algorithm 1. Each claim contributes one example per property value
    /// (a claim with two attributes yields two attribute examples). Claims
    /// are featurized once into a CSR batch; every example borrows its row.
    ///
    /// The rehearsal log resets to exactly these claims: everything the
    /// fresh models know came from this call, so a later
    /// [`retrain_incremental`](Self::retrain_incremental) batch rehearses
    /// against it from the first increment (a pretrain followed by a
    /// skewed verdict batch is precisely the drift case the log guards).
    pub fn retrain(&mut self, verified: &[&ClaimRecord]) {
        if verified.is_empty() {
            return;
        }
        let rows = self.featurizer.features_batch(
            verified
                .iter()
                .map(|c| (c.claim_text.as_str(), c.sentence_text.as_str())),
        );
        self.fit_rows(&rows, verified, false);
        self.replay = verified.iter().map(|c| c.id).collect();
        self.replay_cursor = 0;
    }

    /// Warm-start incremental retrain on the *newly* verified claims only
    /// (`new_ids` index both `claims` and the store, so nothing is
    /// re-featurized). Each classifier resumes from its current weights via
    /// `partial_fit`, with a bounded rehearsal sample of previously trained
    /// claims mixed in; labels unseen at bootstrap are interned and grow
    /// the models in place. The `translate` bench pins this path at ≥ 3×
    /// the from-scratch `retrain` at matching accuracy.
    pub fn retrain_incremental(
        &mut self,
        store: &FeatureStore,
        claims: &[ClaimRecord],
        new_ids: &[usize],
    ) {
        if new_ids.is_empty() {
            return;
        }
        // rehearsal: mix in up to one previously trained claim per new one,
        // round-robin over the replay log, so a skewed batch (one section,
        // one relation) cannot erase older knowledge — the differential
        // tests pin warm-vs-cold accuracy on adversarial streams. Work per
        // call stays O(batch), never O(history).
        let mut batch: Vec<usize> = new_ids.to_vec();
        let replay_count = self.replay.len().min(new_ids.len());
        for _ in 0..replay_count {
            self.replay_cursor = (self.replay_cursor + 1) % self.replay.len();
            batch.push(self.replay[self.replay_cursor]);
        }
        let rows = store.gather(&batch);
        let records: Vec<&ClaimRecord> = batch.iter().map(|&id| &claims[id]).collect();
        self.fit_rows(&rows, &records, true);
        self.replay.extend_from_slice(new_ids);
    }

    /// Shared example assembly for both retrain flavors: row `r` of `rows`
    /// must hold the features of `verified[r]`. `incremental` selects
    /// `partial_fit` (resume) over `train` (from scratch).
    fn fit_rows(&mut self, rows: &FeatureMatrix, verified: &[&ClaimRecord], incremental: bool) {
        debug_assert_eq!(rows.rows(), verified.len());
        let [relation, key, attribute, formula] = &mut self.classifiers;
        let fit = |classifier: &mut PropertyClassifier, examples: &[(SparseView<'_>, u32)]| {
            if incremental {
                classifier.partial_fit_encoded(examples);
            } else {
                classifier.retrain_encoded(examples);
            }
        };

        let relation_examples: Vec<(SparseView<'_>, u32)> = verified
            .iter()
            .enumerate()
            .map(|(r, c)| (rows.row(r), relation.intern_label(&c.relation)))
            .collect();
        fit(relation, &relation_examples);

        let key_examples: Vec<(SparseView<'_>, u32)> = verified
            .iter()
            .enumerate()
            .map(|(r, c)| (rows.row(r), key.intern_label(&c.key)))
            .collect();
        fit(key, &key_examples);

        let mut attribute_examples: Vec<(SparseView<'_>, u32)> = Vec::new();
        for (r, c) in verified.iter().enumerate() {
            for attr in &c.attributes {
                attribute_examples.push((rows.row(r), attribute.intern_label(attr)));
            }
        }
        fit(attribute, &attribute_examples);

        let formula_examples: Vec<(SparseView<'_>, u32)> = verified
            .iter()
            .enumerate()
            .map(|(r, c)| (rows.row(r), formula.intern_label(&c.formula_text)))
            .collect();
        fit(formula, &formula_examples);

        self.fused = FusedEntropy::fuse(&self.classifiers.iter().collect::<Vec<_>>());
    }

    /// Top-1 accuracy of each classifier on a claim set (used for the
    /// accuracy traces of Figures 8–9). A prediction counts as correct when
    /// it matches the ground-truth value (any ground-truth attribute, for
    /// the attribute classifier). Claims are featurized once into a batch;
    /// predictions compare interned ids, not strings.
    pub fn accuracy_on(&self, claims: &[&ClaimRecord]) -> [f64; 4] {
        if claims.is_empty() {
            return [0.0; 4];
        }
        let rows = self.featurizer.features_batch(
            claims
                .iter()
                .map(|c| (c.claim_text.as_str(), c.sentence_text.as_str())),
        );
        self.accuracy_on_rows(&rows, claims)
    }

    /// [`accuracy_on`](Self::accuracy_on) over pre-featurized rows (row `r`
    /// holds the features of `claims[r]`; pair with
    /// [`FeatureStore::gather`]).
    pub fn accuracy_on_rows(&self, rows: &FeatureMatrix, claims: &[&ClaimRecord]) -> [f64; 4] {
        if claims.is_empty() {
            return [0.0; 4];
        }
        debug_assert_eq!(rows.rows(), claims.len());
        let mut hits = [0usize; 4];
        for (r, claim) in claims.iter().enumerate() {
            let features = rows.row(r);
            let hit = |classifier: &PropertyClassifier, truth: &str| -> bool {
                match (
                    classifier.predict_id(features),
                    classifier.labels().get(truth),
                ) {
                    (Some(predicted), Some(truth_id)) => predicted == truth_id,
                    _ => false,
                }
            };
            if hit(&self.classifiers[0], &claim.relation) {
                hits[0] += 1;
            }
            if hit(&self.classifiers[1], &claim.key) {
                hits[1] += 1;
            }
            if let Some(predicted) = self.classifiers[2].predict_id(features) {
                if claim
                    .attributes
                    .iter()
                    .any(|a| self.classifiers[2].labels().get(a) == Some(predicted))
                {
                    hits[2] += 1;
                }
            }
            if hit(&self.classifiers[3], &claim.formula_text) {
                hits[3] += 1;
            }
        }
        let n = claims.len() as f64;
        [
            hits[0] as f64 / n,
            hits[1] as f64 / n,
            hits[2] as f64 / n,
            hits[3] as f64 / n,
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scrutinizer_corpus::CorpusConfig;

    fn setup() -> (Corpus, SystemModels, SystemConfig) {
        let corpus = Corpus::generate(CorpusConfig::small());
        let config = SystemConfig::test();
        let models = SystemModels::bootstrap(&corpus, &config);
        (corpus, models, config)
    }

    #[test]
    fn bootstrap_is_untrained_max_entropy() {
        let (corpus, models, _) = setup();
        let features = models.features(&corpus.claims[0]);
        let utility = models.training_utility(&features);
        // sum of ln(label-space sizes)
        let expected: f64 = [
            corpus.catalog.len() as f64,
            corpus.catalog.all_keys().len() as f64,
            corpus.catalog.all_attributes().len() as f64,
            corpus.formulas.len() as f64,
        ]
        .iter()
        .map(|n| n.ln())
        .sum();
        assert!((utility - expected).abs() < 1e-6, "{utility} vs {expected}");
    }

    #[test]
    fn retraining_improves_accuracy_and_reduces_entropy() {
        let (corpus, mut models, _) = setup();
        let refs: Vec<&ClaimRecord> = corpus.claims.iter().collect();
        let before = models.accuracy_on(&refs);
        let u_before = models.training_utility(&models.features(&corpus.claims[0]));
        models.retrain(&refs);
        let after = models.accuracy_on(&refs);
        let u_after = models.training_utility(&models.features(&corpus.claims[0]));
        // training accuracy must beat the untrained baseline for every model
        for (kind, (b, a)) in PropertyKind::ALL
            .iter()
            .zip(before.iter().zip(after.iter()))
        {
            assert!(a >= b, "{}: {b} → {a}", kind.name());
        }
        assert!(after.iter().sum::<f64>() > before.iter().sum::<f64>() + 0.5);
        assert!(u_after < u_before, "entropy must drop after training");
    }

    #[test]
    fn batch_utilities_match_the_per_claim_loop() {
        let (corpus, mut models, _) = setup();
        let refs: Vec<&ClaimRecord> = corpus.claims.iter().collect();
        models.retrain(&refs);
        let store = crate::feature_store::FeatureStore::build(&corpus, &models);
        let ids: Vec<usize> = (0..corpus.claims.len().min(12)).collect();
        let batch = models.training_utilities(&store.gather(&ids));
        for (&id, batched) in ids.iter().zip(&batch) {
            let scalar = models.training_utility(&models.features(&corpus.claims[id]));
            assert!(
                (scalar - batched).abs() < 1e-4,
                "claim {id}: scalar {scalar} vs batched {batched}"
            );
        }
    }

    #[test]
    fn incremental_retrain_tracks_from_scratch_accuracy() {
        let (corpus, models, _) = setup();
        let store = crate::feature_store::FeatureStore::build(&corpus, &models);
        let refs: Vec<&ClaimRecord> = corpus.claims.iter().collect();

        let mut cold = models.clone();
        cold.retrain(&refs);

        let mut warm = models;
        let ids: Vec<usize> = (0..corpus.claims.len()).collect();
        for chunk in ids.chunks(10) {
            warm.retrain_incremental(&store, &corpus.claims, chunk);
        }

        let cold_acc = cold.accuracy_on(&refs);
        let warm_acc = warm.accuracy_on(&refs);
        let cold_total: f64 = cold_acc.iter().sum();
        let warm_total: f64 = warm_acc.iter().sum();
        assert!(
            warm_total >= cold_total - 0.25,
            "warm accuracy {warm_acc:?} fell too far below cold {cold_acc:?}"
        );
        // and both clearly beat the untrained baseline
        assert!(warm_total > 1.5, "warm models barely learned: {warm_acc:?}");
    }

    #[test]
    fn from_scratch_retrain_seeds_the_rehearsal_log() {
        // the standard engine lifecycle: pretrain from scratch, then a
        // *skewed* incremental batch (many copies of one claim) — the
        // rehearsal sample seeded by the pretrain must keep the models
        // from drifting off everything else they learned
        let (corpus, mut models, _) = setup();
        let store = crate::feature_store::FeatureStore::build(&corpus, &models);
        let refs: Vec<&ClaimRecord> = corpus.claims.iter().collect();
        models.retrain(&refs);
        let before: f64 = models.accuracy_on(&refs).iter().sum();

        let skewed = vec![0usize; 12];
        models.retrain_incremental(&store, &corpus.claims, &skewed);
        let after: f64 = models.accuracy_on(&refs).iter().sum();
        assert!(
            after >= before - 0.35,
            "skewed batch right after pretrain dragged accuracy {before} → {after}"
        );
    }

    #[test]
    fn translate_view_is_translate() {
        let (corpus, mut models, _) = setup();
        let refs: Vec<&ClaimRecord> = corpus.claims.iter().collect();
        models.retrain(&refs);
        let features = models.features(&corpus.claims[0]);
        let a = models.translate(&features, 5);
        let b = models.translate_view(features.view(), 5);
        assert_eq!(a.candidates, b.candidates);
    }

    #[test]
    fn translate_returns_ranked_candidates() {
        let (corpus, mut models, _) = setup();
        let refs: Vec<&ClaimRecord> = corpus.claims.iter().collect();
        models.retrain(&refs);
        let features = models.features(&corpus.claims[0]);
        let t = models.translate(&features, 5);
        for kind in PropertyKind::ALL {
            let c = t.of(kind);
            assert!(!c.is_empty());
            assert!(c.len() <= 5);
            for w in c.windows(2) {
                assert!(w[0].1 >= w[1].1, "{} not sorted", kind.name());
            }
        }
    }
}
