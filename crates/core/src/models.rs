//! The four property classifiers behind claim-to-query translation (§3.1).

use crate::config::SystemConfig;
use scrutinizer_corpus::{ClaimRecord, Corpus};
use scrutinizer_learn::{training_utility, LabelDict, PropertyClassifier};
use scrutinizer_text::{ClaimFeaturizer, SparseVector};

/// The four query properties the classifiers predict.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PropertyKind {
    /// Which relation(s) hold the data.
    Relation,
    /// Which primary-key value (row).
    Key,
    /// Which attribute labels (columns).
    Attribute,
    /// Which check formula.
    Formula,
}

impl PropertyKind {
    /// All four, in the paper's order.
    pub const ALL: [PropertyKind; 4] = [
        PropertyKind::Relation,
        PropertyKind::Key,
        PropertyKind::Attribute,
        PropertyKind::Formula,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            PropertyKind::Relation => "relation",
            PropertyKind::Key => "row",
            PropertyKind::Attribute => "attribute",
            PropertyKind::Formula => "formula",
        }
    }
}

/// Ranked candidates for every property of one claim.
#[derive(Debug, Clone)]
pub struct Translation {
    /// `(label, probability)` per property, probability-descending.
    pub candidates: [Vec<(String, f32)>; 4],
}

impl Translation {
    /// Candidates of one property.
    pub fn of(&self, kind: PropertyKind) -> &[(String, f32)] {
        &self.candidates[kind as usize]
    }
}

/// The trained models: shared featurizer + four classifiers.
#[derive(Debug, Clone)]
pub struct SystemModels {
    featurizer: ClaimFeaturizer,
    classifiers: [PropertyClassifier; 4],
}

impl SystemModels {
    /// Builds models for a corpus: fits the featurizer (unsupervised — works
    /// from the raw text, so cold start is fine) and initializes untrained
    /// classifiers over the corpus label spaces.
    pub fn bootstrap(corpus: &Corpus, config: &SystemConfig) -> Self {
        let pairs: Vec<(String, String)> = corpus
            .claims
            .iter()
            .map(|c| (c.claim_text.clone(), c.sentence_text.clone()))
            .collect();
        let featurizer = ClaimFeaturizer::fit(&pairs, config.featurizer);
        let dim = featurizer.dimension();

        let relation_labels =
            LabelDict::from_labels(corpus.catalog.table_names().map(str::to_string));
        let key_labels = LabelDict::from_labels(corpus.catalog.all_keys());
        let attribute_labels = LabelDict::from_labels(corpus.catalog.all_attributes());
        let formula_labels = LabelDict::from_labels(corpus.formulas.iter().map(|f| f.text.clone()));

        let classifiers = [
            PropertyClassifier::new("relation", relation_labels, dim, config.training),
            PropertyClassifier::new("row", key_labels, dim, config.training),
            PropertyClassifier::new("attribute", attribute_labels, dim, config.training),
            PropertyClassifier::new("formula", formula_labels, dim, config.training),
        ];
        SystemModels {
            featurizer,
            classifiers,
        }
    }

    /// Features of a claim.
    pub fn features(&self, claim: &ClaimRecord) -> SparseVector {
        self.featurizer
            .features(&claim.claim_text, &claim.sentence_text)
    }

    /// Classifier of a property.
    pub fn classifier(&self, kind: PropertyKind) -> &PropertyClassifier {
        &self.classifiers[kind as usize]
    }

    /// Translates a claim: top-k candidates per property (§3.1).
    pub fn translate(&self, features: &SparseVector, k: usize) -> Translation {
        Translation {
            candidates: [
                self.classifiers[0].top_k(features, k),
                self.classifiers[1].top_k(features, k),
                self.classifiers[2].top_k(features, k),
                self.classifiers[3].top_k(features, k),
            ],
        }
    }

    /// Training utility `u(c)` of Definition 7 (summed prediction entropy).
    pub fn training_utility(&self, features: &SparseVector) -> f64 {
        let refs: Vec<&PropertyClassifier> = self.classifiers.iter().collect();
        training_utility(&refs, features)
    }

    /// Retrains all four classifiers from verified claims — `Retrain(N, A)`
    /// of Algorithm 1. Each claim contributes one example per property value
    /// (a claim with two attributes yields two attribute examples).
    pub fn retrain(&mut self, verified: &[&ClaimRecord]) {
        if verified.is_empty() {
            return;
        }
        let features: Vec<SparseVector> = verified.iter().map(|c| self.features(c)).collect();

        let relation_examples: Vec<(SparseVector, String)> = verified
            .iter()
            .zip(&features)
            .map(|(c, f)| (f.clone(), c.relation.clone()))
            .collect();
        self.classifiers[0].retrain(&relation_examples);

        let key_examples: Vec<(SparseVector, String)> = verified
            .iter()
            .zip(&features)
            .map(|(c, f)| (f.clone(), c.key.clone()))
            .collect();
        self.classifiers[1].retrain(&key_examples);

        let mut attribute_examples: Vec<(SparseVector, String)> = Vec::new();
        for (c, f) in verified.iter().zip(&features) {
            for attr in &c.attributes {
                attribute_examples.push((f.clone(), attr.clone()));
            }
        }
        self.classifiers[2].retrain(&attribute_examples);

        let formula_examples: Vec<(SparseVector, String)> = verified
            .iter()
            .zip(&features)
            .map(|(c, f)| (f.clone(), c.formula_text.clone()))
            .collect();
        self.classifiers[3].retrain(&formula_examples);
    }

    /// Top-1 accuracy of each classifier on a claim set (used for the
    /// accuracy traces of Figures 8–9). A prediction counts as correct when
    /// it matches the ground-truth value (any ground-truth attribute, for
    /// the attribute classifier).
    pub fn accuracy_on(&self, claims: &[&ClaimRecord]) -> [f64; 4] {
        if claims.is_empty() {
            return [0.0; 4];
        }
        let mut hits = [0usize; 4];
        for claim in claims {
            let features = self.features(claim);
            let t = self.translate(&features, 1);
            if t.of(PropertyKind::Relation)
                .first()
                .is_some_and(|(l, _)| *l == claim.relation)
            {
                hits[0] += 1;
            }
            if t.of(PropertyKind::Key)
                .first()
                .is_some_and(|(l, _)| *l == claim.key)
            {
                hits[1] += 1;
            }
            if t.of(PropertyKind::Attribute)
                .first()
                .is_some_and(|(l, _)| claim.attributes.iter().any(|a| a == l))
            {
                hits[2] += 1;
            }
            if t.of(PropertyKind::Formula)
                .first()
                .is_some_and(|(l, _)| *l == claim.formula_text)
            {
                hits[3] += 1;
            }
        }
        let n = claims.len() as f64;
        [
            hits[0] as f64 / n,
            hits[1] as f64 / n,
            hits[2] as f64 / n,
            hits[3] as f64 / n,
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scrutinizer_corpus::CorpusConfig;

    fn setup() -> (Corpus, SystemModels, SystemConfig) {
        let corpus = Corpus::generate(CorpusConfig::small());
        let config = SystemConfig::test();
        let models = SystemModels::bootstrap(&corpus, &config);
        (corpus, models, config)
    }

    #[test]
    fn bootstrap_is_untrained_max_entropy() {
        let (corpus, models, _) = setup();
        let features = models.features(&corpus.claims[0]);
        let utility = models.training_utility(&features);
        // sum of ln(label-space sizes)
        let expected: f64 = [
            corpus.catalog.len() as f64,
            corpus.catalog.all_keys().len() as f64,
            corpus.catalog.all_attributes().len() as f64,
            corpus.formulas.len() as f64,
        ]
        .iter()
        .map(|n| n.ln())
        .sum();
        assert!((utility - expected).abs() < 1e-6, "{utility} vs {expected}");
    }

    #[test]
    fn retraining_improves_accuracy_and_reduces_entropy() {
        let (corpus, mut models, _) = setup();
        let refs: Vec<&ClaimRecord> = corpus.claims.iter().collect();
        let before = models.accuracy_on(&refs);
        let u_before = models.training_utility(&models.features(&corpus.claims[0]));
        models.retrain(&refs);
        let after = models.accuracy_on(&refs);
        let u_after = models.training_utility(&models.features(&corpus.claims[0]));
        // training accuracy must beat the untrained baseline for every model
        for (kind, (b, a)) in PropertyKind::ALL
            .iter()
            .zip(before.iter().zip(after.iter()))
        {
            assert!(a >= b, "{}: {b} → {a}", kind.name());
        }
        assert!(after.iter().sum::<f64>() > before.iter().sum::<f64>() + 0.5);
        assert!(u_after < u_before, "entropy must drop after training");
    }

    #[test]
    fn translate_returns_ranked_candidates() {
        let (corpus, mut models, _) = setup();
        let refs: Vec<&ClaimRecord> = corpus.claims.iter().collect();
        models.retrain(&refs);
        let features = models.features(&corpus.claims[0]);
        let t = models.translate(&features, 5);
        for kind in PropertyKind::ALL {
            let c = t.of(kind);
            assert!(!c.is_empty());
            assert!(c.len() <= 5);
            for w in c.windows(2) {
                assert!(w[0].1 >= w[1].1, "{} not sorted", kind.name());
            }
        }
    }
}
