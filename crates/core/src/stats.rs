//! Small statistics helpers shared by the simulators.

/// Arithmetic mean (0 for empty input).
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().sum::<f64>() / values.len() as f64
}

/// Sample standard deviation (0 for fewer than two values).
pub fn std_dev(values: &[f64]) -> f64 {
    if values.len() < 2 {
        return 0.0;
    }
    let m = mean(values);
    let var = values.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / (values.len() - 1) as f64;
    var.sqrt()
}

/// Groups `(key, value)` pairs and returns `(key, mean, std, count)` sorted
/// by key — the aggregation behind Figure 6's per-complexity bars.
pub fn grouped_mean(pairs: &[(usize, f64)]) -> Vec<(usize, f64, f64, usize)> {
    let mut keys: Vec<usize> = pairs.iter().map(|(k, _)| *k).collect();
    keys.sort_unstable();
    keys.dedup();
    keys.into_iter()
        .map(|k| {
            let group: Vec<f64> = pairs
                .iter()
                .filter(|(key, _)| *key == k)
                .map(|(_, v)| *v)
                .collect();
            (k, mean(&group), std_dev(&group), group.len())
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_std() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
        assert_eq!(std_dev(&[5.0]), 0.0);
        assert!((std_dev(&[2.0, 4.0]) - std::f64::consts::SQRT_2).abs() < 1e-12);
    }

    #[test]
    fn grouping() {
        let pairs = vec![(4, 10.0), (6, 30.0), (4, 20.0)];
        let groups = grouped_mean(&pairs);
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[0], (4, 15.0, std_dev(&[10.0, 20.0]), 2));
        assert_eq!(groups[1].0, 6);
        assert_eq!(groups[1].3, 1);
    }
}
