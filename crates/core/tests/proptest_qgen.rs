//! Differential property tests for Algorithm 2: the prepared-skeleton
//! implementation must produce exactly the candidates of the
//! string-resolving baseline, over random catalogs and random contexts —
//! and its candidate loop must never parse SQL.

use proptest::prelude::*;
use scrutinizer_core::{generate_queries, generate_queries_unprepared, SystemConfig};
use scrutinizer_data::{Catalog, TableBuilder};
use scrutinizer_formula::{parse_formula, Formula};
use scrutinizer_query::FunctionRegistry;

const KEYS: [&str; 3] = ["PGElecDemand", "CapAddTotal_Wind", "Sparse"];
const ATTRS: [&str; 3] = ["2000", "2017", "Total"];

/// The formula pool: arithmetic, growth (attribute variables), functions,
/// comparisons, an unknown function (dead skeleton that still consumes
/// budget), and an arity mismatch.
const FORMULAS: [&str; 8] = [
    "a / b",
    "a - b",
    "POWER(a / b, 1 / (A1 - A2)) - 1",
    "a + A1",
    "SUM(a, b) / 2",
    "a > 1",
    "NOPE(a)",
    "POWER(a)",
];

type TableSpec = Vec<(bool, Vec<Option<f64>>)>;

fn table_strategy() -> impl Strategy<Value = TableSpec> {
    prop::collection::vec(
        (
            prop_oneof![2 => Just(true), 1 => Just(false)],
            prop::collection::vec(
                prop_oneof![
                    1 => Just(None),
                    1 => Just(Some(0.0)),
                    4 => (1..40i32).prop_map(|n| Some(n as f64)),
                ],
                3..=3,
            ),
        ),
        3..=3,
    )
}

fn build_catalog(specs: &[(&str, &TableSpec)]) -> Catalog {
    let mut catalog = Catalog::new();
    for (name, spec) in specs {
        let mut builder = TableBuilder::new(name, "Index", &ATTRS);
        for (key, (present, cells)) in KEYS.iter().zip(spec.iter()) {
            if *present {
                builder = builder.row_opt(key, cells).expect("row fits schema");
            }
        }
        catalog.add(builder.build()).expect("unique table names");
    }
    catalog
}

fn subset(pool: &[&str]) -> impl Strategy<Value = Vec<String>> {
    let pool: Vec<String> = pool.iter().map(|s| s.to_string()).collect();
    prop::collection::vec(0..pool.len(), 1..=pool.len()).prop_map(move |indexes| {
        let mut out: Vec<String> = indexes.iter().map(|&i| pool[i].clone()).collect();
        out.dedup();
        out
    })
}

fn formula_set() -> impl Strategy<Value = Vec<(String, Formula)>> {
    prop::collection::vec(0..FORMULAS.len(), 1..=3).prop_map(|indexes| {
        indexes
            .iter()
            .map(|&i| {
                let text = FORMULAS[i].to_string();
                let formula = parse_formula(&text).expect("pool formulas parse");
                (text, formula)
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn prepared_candidates_match_string_path(
        t1 in table_strategy(),
        t2 in table_strategy(),
        relations in subset(&["GED", "GED_EU", "Missing"]),
        keys in subset(&["PGElecDemand", "CapAddTotal_Wind", "Sparse", "Nope"]),
        attributes in subset(&["2000", "2017", "Total", "1999"]),
        formulas in formula_set(),
        parameter in prop_oneof![
            Just(None),
            Just(Some(0.03)),
            Just(Some(2.0)),
            Just(Some(9.0)),
        ],
    ) {
        let catalog = build_catalog(&[("GED", &t1), ("GED_EU", &t2)]);
        let registry = FunctionRegistry::standard();
        let mut config = SystemConfig::test();
        config.max_assignments = 400; // keep the cross products quick
        let prepared = generate_queries(
            &catalog, &registry, &relations, &keys, &attributes, &formulas, parameter, &config,
        );
        let legacy = generate_queries_unprepared(
            &catalog, &registry, &relations, &keys, &attributes, &formulas, parameter, &config,
        );
        prop_assert_eq!(prepared.len(), legacy.len());
        for (a, b) in prepared.iter().zip(&legacy) {
            prop_assert_eq!(&a.stmt, &b.stmt);
            prop_assert_eq!(&a.formula_text, &b.formula_text);
            prop_assert_eq!(&a.lookups, &b.lookups);
            prop_assert_eq!(
                a.value.to_bits(),
                b.value.to_bits(),
                "values must be bit-identical: {} vs {}",
                a.value,
                b.value
            );
            prop_assert_eq!(a.matches_parameter, b.matches_parameter);
        }
    }
}

/// The acceptance gate: Algorithm 2's candidate loop performs **zero** SQL
/// parses — candidates share prepared skeletons and swap bound row ids, so
/// query text exists only for the survivors' display statements.
///
/// Nothing else in this integration binary parses SQL, so the process-wide
/// counter is an exact measure of the calls below.
#[test]
fn candidate_loop_performs_zero_sql_parses() {
    let mut catalog = Catalog::new();
    catalog
        .add(
            TableBuilder::new("GED", "Index", &["2016", "2017"])
                .row("PGElecDemand", &[21_566.0, 22_209.0])
                .unwrap()
                .row("CapAddTotal_Wind", &[5.8, 52.2])
                .unwrap()
                .build(),
        )
        .unwrap();
    let registry = FunctionRegistry::standard();
    let formulas: Vec<(String, Formula)> = ["POWER(a / b, 1 / (A1 - A2)) - 1", "a / b", "a - b"]
        .iter()
        .map(|t| (t.to_string(), parse_formula(t).unwrap()))
        .collect();
    let strs = |items: &[&str]| -> Vec<String> { items.iter().map(|s| s.to_string()).collect() };

    let before = scrutinizer_query::parse_count();
    let out = generate_queries(
        &catalog,
        &registry,
        &strs(&["GED"]),
        &strs(&["PGElecDemand", "CapAddTotal_Wind"]),
        &strs(&["2016", "2017"]),
        &formulas,
        Some(0.03),
        &SystemConfig::test(),
    );
    assert!(!out.is_empty(), "the growth query must be found");
    assert_eq!(
        scrutinizer_query::parse_count(),
        before,
        "Algorithm 2 must not parse SQL in its candidate loop"
    );
}
