//! Differential property test for incremental re-planning: whenever the
//! planner answers a re-plan by *repairing* its cached batch (no ILP
//! solve), the repaired batch's utility must stay within the configured
//! `replan_gap` of what a cold solve on the same shifted input achieves —
//! the guarantee the bound test is supposed to enforce.

use proptest::prelude::*;
use scrutinizer_core::incremental::IncrementalPlanner;
use scrutinizer_core::ordering::{select_batch_detailed, BatchMethod, ClaimChoice};
use scrutinizer_core::{OrderingStrategy, SystemConfig};
use scrutinizer_corpus::{Document, Section};

#[derive(Debug, Clone)]
struct Scenario {
    choices: Vec<ClaimChoice>,
    sentence_counts: Vec<usize>,
    budget: f64,
    /// Per-claim utility drift factors for the simulated retrain.
    drift: Vec<u32>,
    /// Claims verified between the two plans (removed from the pool).
    removed_mask: u32,
}

fn scenarios() -> impl Strategy<Value = Scenario> {
    (
        prop::collection::vec((20u32..100, 1u32..12, 0usize..5), 4..24),
        prop::collection::vec(20usize..120, 5),
        300u32..3000,
        prop::collection::vec(80u32..120, 24),
        0u32..65536,
    )
        .prop_map(
            |(claims, sentence_counts, budget, drift, removed_mask)| Scenario {
                choices: claims
                    .iter()
                    .enumerate()
                    .map(|(id, &(cost, utility, section))| ClaimChoice {
                        id,
                        section,
                        cost: cost as f64,
                        utility: utility as f64,
                    })
                    .collect(),
                sentence_counts,
                budget: budget as f64,
                drift,
                removed_mask,
            },
        )
}

fn document(scenario: &Scenario) -> Document {
    let sections: Vec<Section> = scenario
        .sentence_counts
        .iter()
        .enumerate()
        .map(|(id, &sentence_count)| Section {
            id,
            title: format!("s{id}"),
            sentence_count,
            claim_ids: scenario
                .choices
                .iter()
                .filter(|c| c.section == id)
                .map(|c| c.id)
                .collect(),
        })
        .collect();
    let total_sentences = sections.iter().map(|s| s.sentence_count).sum();
    Document {
        sections,
        total_sentences,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn accepted_repairs_stay_within_the_gap(scenario in scenarios()) {
        let config = SystemConfig::test();
        let doc = document(&scenario);
        let mut planner = IncrementalPlanner::new();
        planner.plan(
            &scenario.choices,
            &doc,
            OrderingStrategy::Ilp,
            scenario.budget,
            &config,
        );

        // retrain: drift utilities; verdicts: drop the masked claims
        let shifted: Vec<ClaimChoice> = scenario
            .choices
            .iter()
            .filter(|c| scenario.removed_mask & (1 << (c.id % 32)) == 0)
            .map(|c| ClaimChoice {
                utility: c.utility * scenario.drift[c.id % scenario.drift.len()] as f64 / 100.0,
                ..c.clone()
            })
            .collect();
        if !shifted.is_empty() {
            let replanned = planner.plan(
                &shifted,
                &doc,
                OrderingStrategy::Ilp,
                scenario.budget,
                &config,
            );

            // removed claims must never resurface
            for id in &replanned.batch {
                prop_assert!(
                    shifted.iter().any(|c| c.id == *id),
                    "claim {id} left the pool but stayed in the plan"
                );
            }

            if replanned.method == BatchMethod::IncrementalRepair {
                let cold = select_batch_detailed(
                    &shifted,
                    &doc,
                    OrderingStrategy::Ilp,
                    scenario.budget,
                    &config,
                );
                prop_assert!(
                    replanned.utility >= (1.0 - config.replan_gap) * cold.utility - 1e-9,
                    "repair {} vs cold {} exceeds the {} gap",
                    replanned.utility,
                    cold.utility,
                    config.replan_gap
                );
            }
        }
    }
}
