//! Property tests for the learning substrate: probability axioms, entropy
//! bounds, top-k consistency on arbitrary inputs.

use proptest::prelude::*;
use scrutinizer_learn::{entropy, SoftmaxClassifier, TrainConfig};
use scrutinizer_text::SparseVector;

fn examples_strategy() -> impl Strategy<Value = Vec<(SparseVector, u32)>> {
    prop::collection::vec(
        (
            prop::collection::vec((0u32..16, 0.1f32..2.0), 1..5),
            0u32..4,
        ),
        4..40,
    )
    .prop_map(|rows| {
        rows.into_iter()
            .map(|(pairs, y)| (SparseVector::from_pairs(pairs), y))
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn probabilities_form_distribution(examples in examples_strategy()) {
        let model = SoftmaxClassifier::train_owned(&examples, 4, 16, TrainConfig::default());
        for (x, _) in examples.iter().take(5) {
            let p = model.predict_proba(x);
            let total: f32 = p.iter().sum();
            prop_assert!((total - 1.0).abs() < 1e-4, "sums to {total}");
            prop_assert!(p.iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
    }

    #[test]
    fn top_k_consistent_with_probabilities(examples in examples_strategy()) {
        let model = SoftmaxClassifier::train_owned(&examples, 4, 16, TrainConfig::default());
        let x = &examples[0].0;
        let probs = model.predict_proba(x);
        let top = model.top_k(x, 4);
        // descending, and the first entry is the global argmax
        for w in top.windows(2) {
            prop_assert!(w[0].1 >= w[1].1);
        }
        let best = probs.iter().cloned().fold(f32::MIN, f32::max);
        prop_assert!((top[0].1 - best).abs() < 1e-6);
        // entropy bounded by ln(#classes)
        let h = entropy(&probs);
        prop_assert!(h >= -1e-9 && h <= (4.0f64).ln() + 1e-6, "entropy {h}");
    }

    #[test]
    fn training_is_seed_deterministic(examples in examples_strategy()) {
        let a = SoftmaxClassifier::train_owned(&examples, 4, 16, TrainConfig::default());
        let b = SoftmaxClassifier::train_owned(&examples, 4, 16, TrainConfig::default());
        prop_assert_eq!(
            a.predict_proba(&examples[0].0),
            b.predict_proba(&examples[0].0)
        );
    }
}
