//! Differential property test for warm-start incremental training:
//! feeding a labeled stream to [`PropertyClassifier::partial_fit_encoded`]
//! batch by batch must land within an accuracy tolerance of a from-scratch
//! [`PropertyClassifier::retrain_encoded`] on the union — including when a
//! brand-new label first appears mid-stream and the model grows in place.

use proptest::prelude::*;
use scrutinizer_learn::{LabelDict, PropertyClassifier, TrainConfig};
use scrutinizer_text::{SparseVector, SparseView};

/// One synthetic example: a class in `0..classes` and its feature vector —
/// the class's own feature plus a shared noise feature, linearly separable
/// so both training modes can actually learn it.
#[derive(Debug, Clone)]
struct Example {
    class: u32,
    features: SparseVector,
}

const DIM: usize = 16;

fn dataset_strategy() -> impl Strategy<Value = Vec<Example>> {
    let example = (0u32..4, 0.8f32..1.6, 8u32..DIM as u32, 0.0f32..0.2).prop_map(
        |(class, signal, noise_idx, noise)| Example {
            class,
            features: SparseVector::from_pairs(vec![(class, signal), (noise_idx, noise)]),
        },
    );
    prop::collection::vec(example, 24..80).prop_map(|examples| {
        // force mid-stream label growth: the highest class is held out of
        // the early batches entirely, then joins an interleaved (mixed)
        // stream — new labels appear late, but batches stay representative,
        // which is the contract the raw kernel is built for (the
        // rehearsal-augmented path in `scrutinizer-core` covers skewed
        // batches)
        let top = examples.iter().map(|e| e.class).max().unwrap_or(0);
        let (tops, others): (Vec<Example>, Vec<Example>) =
            examples.into_iter().partition(|e| e.class == top);
        let head = others.len() / 2;
        let mut stream: Vec<Example> = others[..head].to_vec();
        let mut tail: Vec<Example> = Vec::new();
        let mut tops = tops.into_iter();
        let mut rest = others[head..].iter().cloned();
        loop {
            match (rest.next(), tops.next()) {
                (None, None) => break,
                (a, b) => {
                    tail.extend(a);
                    tail.extend(b);
                }
            }
        }
        stream.extend(tail);
        stream
    })
}

fn label_of(class: u32) -> String {
    format!("L{class}")
}

fn accuracy(classifier: &PropertyClassifier, examples: &[Example]) -> f64 {
    let hits = examples
        .iter()
        .filter(|e| classifier.predict(&e.features).as_deref() == Some(label_of(e.class).as_str()))
        .count();
    hits as f64 / examples.len() as f64
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn partial_fit_stream_matches_from_scratch_union(examples in dataset_strategy()) {
        let config = TrainConfig::default();

        // ---- cold: one from-scratch retrain on the union ----
        let mut cold = PropertyClassifier::new("relation", LabelDict::new(), DIM, config);
        let cold_encoded: Vec<(SparseView<'_>, u32)> = examples
            .iter()
            .map(|e| {
                let id = cold.intern_label(&label_of(e.class));
                (e.features.view(), id)
            })
            .collect();
        cold.retrain_encoded(&cold_encoded);

        // ---- warm: the same stream in batches through partial_fit ----
        let mut warm = PropertyClassifier::new("relation", LabelDict::new(), DIM, config);
        for batch in examples.chunks(10) {
            let encoded: Vec<(SparseView<'_>, u32)> = batch
                .iter()
                .map(|e| {
                    let id = warm.intern_label(&label_of(e.class));
                    (e.features.view(), id)
                })
                .collect();
            warm.partial_fit_encoded(&encoded);
        }

        // both saw the same labels (growth mid-stream included)
        prop_assert_eq!(cold.labels().len(), warm.labels().len());
        for id in 0..cold.labels().len() as u32 {
            prop_assert_eq!(cold.label_name(id), warm.label_name(id));
        }

        // the data is separable, so from-scratch training nails it; the
        // warm-started stream must stay within tolerance of that
        let cold_acc = accuracy(&cold, &examples);
        let warm_acc = accuracy(&warm, &examples);
        prop_assert!(
            cold_acc >= 0.9,
            "from-scratch training failed its own separable data: {cold_acc}"
        );
        prop_assert!(
            warm_acc >= cold_acc - 0.15,
            "warm accuracy {warm_acc} fell beyond tolerance of cold {cold_acc}"
        );
    }

    #[test]
    fn repeated_partial_fit_is_deterministic(examples in dataset_strategy()) {
        let config = TrainConfig::default();
        let run = || {
            let mut clf = PropertyClassifier::new("row", LabelDict::new(), DIM, config);
            for batch in examples.chunks(7) {
                let encoded: Vec<(SparseView<'_>, u32)> = batch
                    .iter()
                    .map(|e| {
                        let id = clf.intern_label(&label_of(e.class));
                        (e.features.view(), id)
                    })
                    .collect();
                clf.partial_fit_encoded(&encoded);
            }
            examples
                .iter()
                .map(|e| clf.predict_id(e.features.view()))
                .collect::<Vec<_>>()
        };
        prop_assert_eq!(run(), run());
    }
}
