//! # scrutinizer-learn
//!
//! Classifiers and active learning (§3.1, §5.2).
//!
//! Four multi-class classifiers predict the elements of the verifying query:
//! relations, primary-key values (rows), attribute labels, and formulas.
//! Each is a multinomial logistic regression over the sparse claim features
//! of `scrutinizer-text`, trained with AdaGrad ([`SoftmaxClassifier`]).
//!
//! [`PropertyClassifier`] wraps a classifier with its string label space and
//! supports the active-learning loop of Algorithm 1: it can be retrained
//! from scratch on the accumulated verified claims (`Retrain(N, A)`), emits
//! ranked top-k predictions with probabilities (the answer options of §5.1),
//! and exposes the prediction entropy used as training utility
//! (Definition 7).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod active;
pub mod classifier;
pub mod fused;
pub mod labels;
pub mod metrics;
pub mod softmax;
pub mod split;

pub use active::training_utility;
pub use classifier::{ClassifierState, PropertyClassifier};
pub use fused::FusedEntropy;
pub use labels::LabelDict;
pub use metrics::{accuracy, entropy, top_k_accuracy};
pub use softmax::{entropy_from_scores, SoftmaxClassifier, SoftmaxState, TrainConfig};
