//! Evaluation metrics: accuracy, top-k accuracy, prediction entropy.

/// Fraction of examples whose true class is the argmax prediction.
pub fn accuracy(predictions: &[u32], truth: &[u32]) -> f64 {
    assert_eq!(predictions.len(), truth.len(), "length mismatch");
    if predictions.is_empty() {
        return 0.0;
    }
    let hits = predictions
        .iter()
        .zip(truth)
        .filter(|(p, t)| p == t)
        .count();
    hits as f64 / predictions.len() as f64
}

/// Fraction of examples whose true class appears among the top-k ranked
/// predictions (Figure 10's measure).
pub fn top_k_accuracy(ranked: &[Vec<u32>], truth: &[u32], k: usize) -> f64 {
    assert_eq!(ranked.len(), truth.len(), "length mismatch");
    if ranked.is_empty() {
        return 0.0;
    }
    let hits = ranked
        .iter()
        .zip(truth)
        .filter(|(r, t)| r.iter().take(k).any(|c| c == *t))
        .count();
    hits as f64 / ranked.len() as f64
}

/// Shannon entropy (nats) of a probability distribution; the training
/// utility building block of Definition 7. Zero entries contribute zero.
pub fn entropy(probabilities: &[f32]) -> f64 {
    probabilities
        .iter()
        .filter(|&&p| p > 0.0)
        .map(|&p| {
            let p = f64::from(p);
            -p * p.ln()
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_basic() {
        assert_eq!(accuracy(&[0, 1, 2], &[0, 1, 0]), 2.0 / 3.0);
        assert_eq!(accuracy(&[], &[]), 0.0);
        assert_eq!(accuracy(&[1], &[1]), 1.0);
    }

    #[test]
    fn top_k_monotone_in_k() {
        let ranked = vec![vec![2, 0, 1], vec![1, 2, 0], vec![0, 1, 2]];
        let truth = vec![0, 0, 0];
        let a1 = top_k_accuracy(&ranked, &truth, 1);
        let a2 = top_k_accuracy(&ranked, &truth, 2);
        let a3 = top_k_accuracy(&ranked, &truth, 3);
        assert!(a1 <= a2 && a2 <= a3);
        assert_eq!(a1, 1.0 / 3.0);
        assert_eq!(a3, 1.0);
    }

    #[test]
    fn entropy_extremes() {
        // uniform maximizes; point mass is zero
        let uniform = entropy(&[0.25; 4]);
        assert!((uniform - (4.0f64).ln()).abs() < 1e-6);
        assert_eq!(entropy(&[1.0, 0.0, 0.0]), 0.0);
        let skewed = entropy(&[0.9, 0.05, 0.05]);
        assert!(skewed < uniform && skewed > 0.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        accuracy(&[0], &[0, 1]);
    }
}
