//! Multinomial logistic regression on sparse features, trained with AdaGrad.
//!
//! The paper reports classifier inference below 0.2 s per claim and frequent
//! retraining (every batch of 100 claims), so the implementation favors:
//! sparse dot products (only touched coordinates update), per-coordinate
//! AdaGrad learning rates (robust across the wildly different scales of the
//! embedding and TF-IDF blocks), and retraining from scratch in a few epochs.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use scrutinizer_text::SparseVector;

/// Training hyper-parameters.
#[derive(Debug, Clone, Copy)]
pub struct TrainConfig {
    /// Passes over the training set.
    pub epochs: usize,
    /// Base AdaGrad learning rate.
    pub learning_rate: f32,
    /// L2 regularization strength (applied to touched coordinates).
    pub l2: f32,
    /// Shuffling seed.
    pub seed: u64,
    /// Per-example update budget: gradients are applied to the true class
    /// plus at most this many highest-probability classes. Label spaces run
    /// to hundreds of classes (830 keys) and the system retrains after every
    /// batch of 100 claims, so full-gradient updates would dominate the
    /// "13 minutes of retraining" budget of §6.2; truncating to the classes
    /// that carry almost all gradient mass is the standard candidate-sampling
    /// fix. Set ≥ the class count for exact updates.
    pub max_update_classes: usize,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 8,
            learning_rate: 0.5,
            l2: 1e-5,
            seed: 7,
            max_update_classes: 24,
        }
    }
}

/// A trained softmax classifier over `n_classes` classes and `dim` features.
#[derive(Debug, Clone)]
pub struct SoftmaxClassifier {
    weights: Vec<f32>, // n_classes × dim, row-major
    biases: Vec<f32>,
    dim: usize,
    n_classes: usize,
}

impl SoftmaxClassifier {
    /// Trains from scratch on `(features, class)` examples.
    ///
    /// # Panics
    /// Panics if any class id is ≥ `n_classes` (caller builds the label
    /// space, so this is a programming error).
    pub fn train(
        examples: &[(SparseVector, u32)],
        n_classes: usize,
        dim: usize,
        config: TrainConfig,
    ) -> Self {
        assert!(n_classes > 0, "need at least one class");
        for (_, y) in examples {
            assert!((*y as usize) < n_classes, "class id {y} out of range");
        }
        let mut model = SoftmaxClassifier {
            weights: vec![0.0; n_classes * dim],
            biases: vec![0.0; n_classes],
            dim,
            n_classes,
        };
        let mut grad_sq_w = vec![1e-8f32; n_classes * dim];
        let mut grad_sq_b = vec![1e-8f32; n_classes];
        let mut order: Vec<usize> = (0..examples.len()).collect();
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut probs = vec![0.0f32; n_classes];

        let mut touched: Vec<usize> = Vec::with_capacity(n_classes.min(64));
        for _ in 0..config.epochs {
            order.shuffle(&mut rng);
            for &idx in &order {
                let (x, y) = &examples[idx];
                model.predict_into(x, &mut probs);
                // classes to update: the true class plus the top-probability
                // classes (they carry essentially all the gradient mass)
                touched.clear();
                if n_classes <= config.max_update_classes {
                    touched.extend(0..n_classes);
                } else {
                    let mut ranked: Vec<usize> = (0..n_classes).collect();
                    ranked.select_nth_unstable_by(config.max_update_classes - 1, |&a, &b| {
                        probs[b].total_cmp(&probs[a])
                    });
                    touched.extend_from_slice(&ranked[..config.max_update_classes]);
                    if !touched.contains(&(*y as usize)) {
                        touched.push(*y as usize);
                    }
                }
                // gradient of cross-entropy: (p - onehot(y)) ⊗ x
                for &c in &touched {
                    let g = probs[c] - f32::from(c as u32 == *y);
                    if g == 0.0 {
                        continue;
                    }
                    // bias
                    let gb = g;
                    grad_sq_b[c] += gb * gb;
                    model.biases[c] -= config.learning_rate * gb / grad_sq_b[c].sqrt();
                    // touched weights only
                    let row = c * dim;
                    for (i, v) in x.iter() {
                        let i = i as usize;
                        if i >= dim {
                            continue;
                        }
                        let slot = row + i;
                        let gw = g * v + config.l2 * model.weights[slot];
                        grad_sq_w[slot] += gw * gw;
                        model.weights[slot] -= config.learning_rate * gw / grad_sq_w[slot].sqrt();
                    }
                }
            }
        }
        model
    }

    /// Number of classes.
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// Feature dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Class probabilities for `x` (softmax over linear scores).
    pub fn predict_proba(&self, x: &SparseVector) -> Vec<f32> {
        let mut probs = vec![0.0f32; self.n_classes];
        self.predict_into(x, &mut probs);
        probs
    }

    fn predict_into(&self, x: &SparseVector, probs: &mut [f32]) {
        debug_assert_eq!(probs.len(), self.n_classes);
        for (c, p) in probs.iter_mut().enumerate() {
            *p = self.biases[c] + x.dot_dense(&self.weights[c * self.dim..(c + 1) * self.dim]);
        }
        softmax_in_place(probs);
    }

    /// The `k` most probable classes with probabilities, descending.
    pub fn top_k(&self, x: &SparseVector, k: usize) -> Vec<(u32, f32)> {
        let probs = self.predict_proba(x);
        let mut ranked: Vec<(u32, f32)> = probs
            .into_iter()
            .enumerate()
            .map(|(i, p)| (i as u32, p))
            .collect();
        ranked.sort_unstable_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        ranked.truncate(k);
        ranked
    }

    /// Most probable class.
    pub fn predict(&self, x: &SparseVector) -> u32 {
        self.top_k(x, 1)[0].0
    }
}

/// Numerically stable in-place softmax.
pub fn softmax_in_place(scores: &mut [f32]) {
    let max = scores.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let mut total = 0.0f32;
    for s in scores.iter_mut() {
        *s = (*s - max).exp();
        total += *s;
    }
    if total > 0.0 {
        for s in scores.iter_mut() {
            *s /= total;
        }
    } else {
        let uniform = 1.0 / scores.len() as f32;
        scores.fill(uniform);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Three linearly separable classes on disjoint feature sets.
    fn separable() -> (Vec<(SparseVector, u32)>, usize) {
        let mut examples = Vec::new();
        for rep in 0..20u32 {
            let noise = (rep % 3) as f32 * 0.01;
            examples.push((
                SparseVector::from_pairs(vec![(0, 1.0 + noise), (3, 0.1)]),
                0,
            ));
            examples.push((
                SparseVector::from_pairs(vec![(1, 1.0 + noise), (3, 0.1)]),
                1,
            ));
            examples.push((
                SparseVector::from_pairs(vec![(2, 1.0 + noise), (3, 0.1)]),
                2,
            ));
        }
        (examples, 4)
    }

    #[test]
    fn learns_separable_data() {
        let (examples, dim) = separable();
        let model = SoftmaxClassifier::train(&examples, 3, dim, TrainConfig::default());
        for (x, y) in &examples {
            assert_eq!(model.predict(x), *y);
        }
    }

    #[test]
    fn probabilities_sum_to_one() {
        let (examples, dim) = separable();
        let model = SoftmaxClassifier::train(&examples, 3, dim, TrainConfig::default());
        let p = model.predict_proba(&examples[0].0);
        let total: f32 = p.iter().sum();
        assert!((total - 1.0).abs() < 1e-5);
        assert!(p.iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn top_k_is_sorted_and_truncated() {
        let (examples, dim) = separable();
        let model = SoftmaxClassifier::train(&examples, 3, dim, TrainConfig::default());
        let top = model.top_k(&examples[0].0, 2);
        assert_eq!(top.len(), 2);
        assert!(top[0].1 >= top[1].1);
        assert_eq!(top[0].0, 0);
        // k beyond classes clamps
        assert_eq!(model.top_k(&examples[0].0, 10).len(), 3);
    }

    #[test]
    fn deterministic_training() {
        let (examples, dim) = separable();
        let m1 = SoftmaxClassifier::train(&examples, 3, dim, TrainConfig::default());
        let m2 = SoftmaxClassifier::train(&examples, 3, dim, TrainConfig::default());
        assert_eq!(
            m1.predict_proba(&examples[5].0),
            m2.predict_proba(&examples[5].0)
        );
    }

    #[test]
    fn unseen_features_are_ignored() {
        let (examples, dim) = separable();
        let model = SoftmaxClassifier::train(&examples, 3, dim, TrainConfig::default());
        // feature index 100 is beyond dim: must not panic, must not matter
        let x = SparseVector::from_pairs(vec![(0, 1.0), (100, 5.0)]);
        assert_eq!(model.predict(&x), 0);
    }

    #[test]
    fn single_class_degenerates_gracefully() {
        let examples = vec![(SparseVector::from_pairs(vec![(0, 1.0)]), 0u32); 4];
        let model = SoftmaxClassifier::train(&examples, 1, 2, TrainConfig::default());
        let p = model.predict_proba(&examples[0].0);
        assert_eq!(p, vec![1.0]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn class_out_of_range_panics() {
        let examples = vec![(SparseVector::from_pairs(vec![(0, 1.0)]), 5u32)];
        SoftmaxClassifier::train(&examples, 3, 2, TrainConfig::default());
    }

    #[test]
    fn softmax_stability() {
        let mut huge = [1000.0f32, 1001.0, 999.0];
        softmax_in_place(&mut huge);
        assert!((huge.iter().sum::<f32>() - 1.0).abs() < 1e-5);
        assert!(huge.iter().all(|v| v.is_finite()));
        let mut tiny = [-1000.0f32, -1000.0];
        softmax_in_place(&mut tiny);
        assert!((tiny[0] - 0.5).abs() < 1e-5);
    }
}
