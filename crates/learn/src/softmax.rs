//! Multinomial logistic regression on sparse features, trained with AdaGrad.
//!
//! The paper reports classifier inference below 0.2 s per claim and frequent
//! retraining (every batch of 100 claims), so the implementation favors:
//! sparse dot products (only touched coordinates update), per-coordinate
//! AdaGrad learning rates (robust across the wildly different scales of the
//! embedding and TF-IDF blocks), and — since PR 4 — **warm-start
//! incremental training**: the AdaGrad accumulators persist inside the
//! model, so [`SoftmaxClassifier::partial_fit`] resumes from the previous
//! weights on just the newly verified examples instead of replaying the
//! whole history from scratch. The class count can grow mid-stream
//! (checkers suggest new answers); new classes join as zero rows appended
//! in place.
//!
//! Two inference layouts coexist on purpose:
//!
//! * the **row-major** weight matrix (`class × dim`) drives training
//!   updates and the legacy one-claim-at-a-time `predict_proba` path, and
//! * a **feature-major transpose** (`dim × class`, rebuilt once per
//!   training call) drives the batched [`predict_proba_batch`] /
//!   [`entropy_batch_into`] paths: scoring a CSR row walks each feature's
//!   *contiguous* class slice instead of gathering one scattered weight
//!   per class, which is what makes bulk utility scoring fast.
//!
//! [`predict_proba_batch`]: SoftmaxClassifier::predict_proba_batch
//! [`entropy_batch_into`]: SoftmaxClassifier::entropy_batch_into

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use scrutinizer_text::{FeatureMatrix, SparseVector, SparseView};

/// Training hyper-parameters.
#[derive(Debug, Clone, Copy)]
pub struct TrainConfig {
    /// Passes over the training set.
    pub epochs: usize,
    /// Base AdaGrad learning rate.
    pub learning_rate: f32,
    /// L2 regularization strength (applied to touched coordinates).
    pub l2: f32,
    /// Shuffling seed.
    pub seed: u64,
    /// Per-example update budget: gradients are applied to the true class
    /// plus at most this many highest-probability classes. Label spaces run
    /// to hundreds of classes (830 keys) and the system retrains after every
    /// batch of 100 claims, so full-gradient updates would dominate the
    /// "13 minutes of retraining" budget of §6.2; truncating to the classes
    /// that carry almost all gradient mass is the standard candidate-sampling
    /// fix. Set ≥ the class count for exact updates.
    pub max_update_classes: usize,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 8,
            learning_rate: 0.5,
            l2: 1e-5,
            seed: 7,
            max_update_classes: 24,
        }
    }
}

/// The serializable training state of a [`SoftmaxClassifier`]:
/// everything needed to reconstruct it exactly. The feature-major
/// scoring transpose is *derived* state and deliberately absent — it is
/// rebuilt on restore, so a persisted model round-trips bit-for-bit
/// through the same code path every retrain already exercises.
#[derive(Debug, Clone, PartialEq)]
pub struct SoftmaxState {
    /// Row-major `n_classes × dim` weights.
    pub weights: Vec<f32>,
    /// Per-class biases.
    pub biases: Vec<f32>,
    /// AdaGrad weight accumulators (the warm-start state).
    pub grad_sq_w: Vec<f32>,
    /// AdaGrad bias accumulators.
    pub grad_sq_b: Vec<f32>,
    /// Feature dimensionality.
    pub dim: usize,
    /// Class count.
    pub n_classes: usize,
    /// Completed training calls (salts the shuffle seed).
    pub fits: u64,
}

/// Number of f32 lanes the batched kernels process per step (32 bytes).
/// Scoring strides are padded to a multiple of this so the hot loops are
/// exact `chunks_exact(LANES)` sweeps with no scalar tail.
pub(crate) const LANES: usize = 8;

/// A trained softmax classifier over `n_classes` classes and `dim` features.
#[derive(Debug, Clone)]
pub struct SoftmaxClassifier {
    weights: Vec<f32>, // n_classes × dim, row-major (training layout)
    /// Feature-major transpose of `weights` (`dim × stride_t` with
    /// `stride_t = n_classes` rounded up to [`LANES`]; the pad columns
    /// stay 0.0), rebuilt after every training call; the batched scoring
    /// layout.
    weights_t: Vec<f32>,
    /// Row stride of `weights_t`.
    stride_t: usize,
    biases: Vec<f32>,
    /// Persisted AdaGrad accumulators — the warm-start state.
    grad_sq_w: Vec<f32>,
    grad_sq_b: Vec<f32>,
    dim: usize,
    n_classes: usize,
    /// Completed training calls; salts the shuffle seed so successive
    /// `partial_fit` batches see different (but deterministic) orders.
    fits: u64,
}

impl SoftmaxClassifier {
    /// A zero-weight model over a fixed shape, ready for [`partial_fit`].
    ///
    /// [`partial_fit`]: SoftmaxClassifier::partial_fit
    pub fn untrained(n_classes: usize, dim: usize) -> Self {
        assert!(n_classes > 0, "need at least one class");
        SoftmaxClassifier {
            weights: vec![0.0; n_classes * dim],
            weights_t: vec![0.0; n_classes.next_multiple_of(LANES) * dim],
            stride_t: n_classes.next_multiple_of(LANES),
            biases: vec![0.0; n_classes],
            grad_sq_w: vec![1e-8; n_classes * dim],
            grad_sq_b: vec![1e-8; n_classes],
            dim,
            n_classes,
            fits: 0,
        }
    }

    /// Trains from scratch on `(features, class)` examples. Features are
    /// borrowed views — training never clones a vector.
    ///
    /// # Panics
    /// Panics if any class id is ≥ `n_classes` (caller builds the label
    /// space, so this is a programming error).
    pub fn train(
        examples: &[(SparseView<'_>, u32)],
        n_classes: usize,
        dim: usize,
        config: TrainConfig,
    ) -> Self {
        for (_, y) in examples {
            assert!((*y as usize) < n_classes, "class id {y} out of range");
        }
        let mut model = SoftmaxClassifier::untrained(n_classes, dim);
        model.fit_epochs(examples, config, config.seed);
        model.fits = 1;
        model.rebuild_transpose();
        model
    }

    /// Convenience adapter over owned vectors (tests, notebooks); the hot
    /// paths pass views.
    pub fn train_owned(
        examples: &[(SparseVector, u32)],
        n_classes: usize,
        dim: usize,
        config: TrainConfig,
    ) -> Self {
        let views: Vec<(SparseView<'_>, u32)> =
            examples.iter().map(|(x, y)| (x.view(), *y)).collect();
        Self::train(&views, n_classes, dim, config)
    }

    /// Resumes training on a new example batch — the warm start of the
    /// incremental retrain path. Weights, biases and AdaGrad accumulators
    /// continue from where the last call left them, so the effective step
    /// sizes keep shrinking as if the stream had been one long training
    /// run; class ids beyond the current shape grow the weight matrix in
    /// place (appended zero rows — row-major by class makes that a plain
    /// `resize`).
    pub fn partial_fit(&mut self, examples: &[(SparseView<'_>, u32)], config: TrainConfig) {
        if examples.is_empty() {
            return;
        }
        let max_class = examples.iter().map(|(_, y)| *y).max().unwrap_or(0) as usize;
        if max_class >= self.n_classes {
            self.grow_classes(max_class + 1);
        }
        // salt the shuffle so batch k does not replay batch 0's order, while
        // staying deterministic for a given call sequence
        let seed = config
            .seed
            .wrapping_add(self.fits.wrapping_mul(0x9E37_79B9));
        self.fit_epochs(examples, config, seed);
        self.fits += 1;
        self.rebuild_transpose();
    }

    /// Appends zero-weight classes in place (row-major by class, so class
    /// growth is a tail `resize` of every per-class array).
    fn grow_classes(&mut self, n_classes: usize) {
        debug_assert!(n_classes > self.n_classes);
        self.weights.resize(n_classes * self.dim, 0.0);
        self.grad_sq_w.resize(n_classes * self.dim, 1e-8);
        self.biases.resize(n_classes, 0.0);
        self.grad_sq_b.resize(n_classes, 1e-8);
        self.n_classes = n_classes;
    }

    /// The AdaGrad inner loop: `config.epochs` shuffled passes over
    /// `examples`, updating the true class plus the top-probability classes.
    fn fit_epochs(&mut self, examples: &[(SparseView<'_>, u32)], config: TrainConfig, seed: u64) {
        let n_classes = self.n_classes;
        let dim = self.dim;
        let mut order: Vec<usize> = (0..examples.len()).collect();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut probs = vec![0.0f32; n_classes];
        let mut touched: Vec<usize> = Vec::with_capacity(n_classes.min(64));
        for _ in 0..config.epochs {
            order.shuffle(&mut rng);
            for &idx in &order {
                let (x, y) = &examples[idx];
                self.scores_into(*x, &mut probs);
                softmax_in_place(&mut probs);
                // classes to update: the true class plus the top-probability
                // classes (they carry essentially all the gradient mass)
                touched.clear();
                if n_classes <= config.max_update_classes {
                    touched.extend(0..n_classes);
                } else {
                    let mut ranked: Vec<usize> = (0..n_classes).collect();
                    ranked.select_nth_unstable_by(config.max_update_classes - 1, |&a, &b| {
                        probs[b].total_cmp(&probs[a])
                    });
                    touched.extend_from_slice(&ranked[..config.max_update_classes]);
                    if !touched.contains(&(*y as usize)) {
                        touched.push(*y as usize);
                    }
                }
                // gradient of cross-entropy: (p - onehot(y)) ⊗ x
                for &c in &touched {
                    let g = probs[c] - f32::from(c as u32 == *y);
                    if g == 0.0 {
                        continue;
                    }
                    // bias
                    let gb = g;
                    self.grad_sq_b[c] += gb * gb;
                    self.biases[c] -= config.learning_rate * gb / self.grad_sq_b[c].sqrt();
                    // touched weights only
                    let row = c * dim;
                    for (i, v) in x.iter() {
                        let i = i as usize;
                        if i >= dim {
                            continue;
                        }
                        let slot = row + i;
                        let gw = g * v + config.l2 * self.weights[slot];
                        self.grad_sq_w[slot] += gw * gw;
                        self.weights[slot] -=
                            config.learning_rate * gw / self.grad_sq_w[slot].sqrt();
                    }
                }
            }
        }
    }

    /// Rebuilds the feature-major scoring transpose from the row-major
    /// training weights; called once per training call, so reads between
    /// retrains always see a consistent layout. Each feature's class
    /// slice is padded out to a [`LANES`]-multiple stride (pad columns
    /// 0.0), so the batched sweeps run tail-free.
    fn rebuild_transpose(&mut self) {
        self.stride_t = self.n_classes.next_multiple_of(LANES);
        self.weights_t.clear();
        self.weights_t.resize(self.stride_t * self.dim, 0.0);
        for c in 0..self.n_classes {
            let row = &self.weights[c * self.dim..(c + 1) * self.dim];
            for (i, &w) in row.iter().enumerate() {
                if w != 0.0 {
                    self.weights_t[i * self.stride_t + c] = w;
                }
            }
        }
    }

    /// A copy of the full training state, for persistence.
    pub fn export_state(&self) -> SoftmaxState {
        SoftmaxState {
            weights: self.weights.clone(),
            biases: self.biases.clone(),
            grad_sq_w: self.grad_sq_w.clone(),
            grad_sq_b: self.grad_sq_b.clone(),
            dim: self.dim,
            n_classes: self.n_classes,
            fits: self.fits,
        }
    }

    /// Reconstructs a classifier from persisted state, rebuilding the
    /// derived scoring transpose. Rejects shape-inconsistent state (a
    /// corrupt or truncated snapshot) rather than panicking later.
    pub fn from_state(state: SoftmaxState) -> Result<Self, String> {
        if state.n_classes == 0 {
            return Err("snapshot has zero classes".to_string());
        }
        let expect_w = state.n_classes * state.dim;
        if state.weights.len() != expect_w
            || state.grad_sq_w.len() != expect_w
            || state.biases.len() != state.n_classes
            || state.grad_sq_b.len() != state.n_classes
        {
            return Err(format!(
                "snapshot shape mismatch: {} classes × {} dims vs {} weights / {} biases",
                state.n_classes,
                state.dim,
                state.weights.len(),
                state.biases.len()
            ));
        }
        let mut model = SoftmaxClassifier {
            weights: state.weights,
            weights_t: Vec::new(),
            stride_t: 0,
            biases: state.biases,
            grad_sq_w: state.grad_sq_w,
            grad_sq_b: state.grad_sq_b,
            dim: state.dim,
            n_classes: state.n_classes,
            fits: state.fits,
        };
        model.rebuild_transpose();
        Ok(model)
    }

    /// Number of classes.
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// The feature-major scoring layout (`weights_t`, `biases`, row
    /// stride of `weights_t`) — crate-internal input to
    /// [`FusedEntropy`](crate::FusedEntropy).
    pub(crate) fn transposed_parts(&self) -> (&[f32], &[f32], usize) {
        (&self.weights_t, &self.biases, self.stride_t)
    }

    /// Feature dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Class probabilities for `x` (softmax over linear scores).
    pub fn predict_proba(&self, x: &SparseVector) -> Vec<f32> {
        self.predict_proba_view(x.view())
    }

    /// [`predict_proba`](Self::predict_proba) over a borrowed view.
    pub fn predict_proba_view(&self, x: SparseView<'_>) -> Vec<f32> {
        let mut probs = vec![0.0f32; self.n_classes];
        self.scores_into(x, &mut probs);
        softmax_in_place(&mut probs);
        probs
    }

    /// Linear scores via the row-major layout (one dot product per class) —
    /// the legacy per-claim path, also used inside training where the
    /// transpose is stale.
    fn scores_into(&self, x: SparseView<'_>, scores: &mut [f32]) {
        debug_assert_eq!(scores.len(), self.n_classes);
        for (c, s) in scores.iter_mut().enumerate() {
            *s = self.biases[c] + x.dot_dense(&self.weights[c * self.dim..(c + 1) * self.dim]);
        }
    }

    /// Linear scores via the feature-major transpose into a
    /// `stride_t`-long scratch row (`scores[..n_classes]` are the real
    /// scores; the pad lanes stay 0.0 because the pad weight columns and
    /// pad bias lanes are 0.0). The sweep over each stored feature's
    /// contiguous class slice is a flat fused-multiply-add pass over two
    /// slices of provably equal length — the shape the vectorizer turns
    /// into packed FMAs — instead of a nested lane-chunked loop, which
    /// compiles to scalar code — the batched scoring kernel.
    fn scores_into_transposed(&self, x: SparseView<'_>, scores: &mut [f32]) {
        debug_assert_eq!(scores.len(), self.stride_t);
        scores[..self.n_classes].copy_from_slice(&self.biases);
        scores[self.n_classes..].fill(0.0);
        let stride = self.stride_t;
        let scores = &mut scores[..stride];
        for (i, v) in x.iter() {
            let i = i as usize;
            if i >= self.dim {
                continue;
            }
            let column = &self.weights_t[i * stride..][..stride];
            for j in 0..stride {
                scores[j] = v.mul_add(column[j], scores[j]);
            }
        }
    }

    /// Class probabilities for every row of a CSR batch, returned as one
    /// row-major `rows × n_classes` block. Scores run through the
    /// feature-major transpose with a single reused scratch row — no
    /// per-claim allocation, no scattered weight gathers.
    pub fn predict_proba_batch(&self, rows: &FeatureMatrix) -> Vec<f32> {
        let nc = self.n_classes;
        let mut scratch = vec![0.0f32; self.stride_t];
        let mut out = vec![0.0f32; rows.rows() * nc];
        for (r, row) in rows.iter().enumerate() {
            self.scores_into_transposed(row, &mut scratch);
            let slot = &mut out[r * nc..(r + 1) * nc];
            slot.copy_from_slice(&scratch[..nc]);
            softmax_in_place(slot);
        }
        out
    }

    /// Appends the prediction entropy of every row of a CSR batch to `out`
    /// — the bulk kernel behind batched training-utility scoring
    /// (Definition 7). Equivalent to `entropy(&predict_proba(row))` per
    /// row, but with one reused scratch buffer, the transposed layout, and
    /// entropy folded out of the raw scores with a single `ln` per row
    /// (`H = ln Z − Σ eᶜ·sᶜ / Z`) instead of one per class.
    pub fn entropy_batch_into(&self, rows: &FeatureMatrix, out: &mut Vec<f64>) {
        let mut scratch = vec![0.0f32; self.stride_t];
        out.reserve(rows.rows());
        for row in rows.iter() {
            self.scores_into_transposed(row, &mut scratch);
            out.push(entropy_from_scores(&scratch[..self.n_classes]));
        }
    }

    /// The `k` most probable classes with probabilities, descending.
    pub fn top_k(&self, x: &SparseVector, k: usize) -> Vec<(u32, f32)> {
        self.top_k_view(x.view(), k)
    }

    /// [`top_k`](Self::top_k) over a borrowed view.
    pub fn top_k_view(&self, x: SparseView<'_>, k: usize) -> Vec<(u32, f32)> {
        let probs = self.predict_proba_view(x);
        let mut ranked: Vec<(u32, f32)> = probs
            .into_iter()
            .enumerate()
            .map(|(i, p)| (i as u32, p))
            .collect();
        ranked.sort_unstable_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        ranked.truncate(k);
        ranked
    }

    /// Most probable class.
    pub fn predict(&self, x: &SparseVector) -> u32 {
        self.top_k(x, 1)[0].0
    }
}

/// Branch-free `exp` approximation for f32, built for autovectorization:
/// `x = k·ln2 + r` with `k` rounded via the floating-point shift trick,
/// `e^r` from a degree-5 minimax polynomial on `[−ln2/2, ln2/2]`, and the
/// `2^k` scale applied through the exponent bits. No libm call, no
/// branches, so the compiler turns a loop of these into straight-line
/// SIMD. Maximum relative error is a few ulp (≪ 1e-6) over the clamped
/// domain `[-87, 88]`; inputs outside clamp to the boundary (the entropy
/// kernels only ever pass `s − max ≤ 0`, where `exp(-87) ≈ 1.6e-38` is
/// already indistinguishable from zero in f32 sums).
#[inline]
pub fn exp_approx(x: f32) -> f32 {
    const LOG2E: f32 = std::f32::consts::LOG2_E;
    // ln2 split high/low so `x − k·ln2` stays exact through the reduction;
    // the high part is written out in full because it is the point: a
    // dyadic rational (710/1024) whose low mantissa bits are zero
    #[allow(clippy::excessive_precision)]
    const LN2_HI: f32 = 0.693_359_375;
    const LN2_LO: f32 = -2.121_944_4e-4;
    // 1.5·2^23: adding and subtracting forces round-to-nearest on |z| < 2^22
    const SHIFT: f32 = 12_582_912.0;
    let x = x.clamp(-87.0, 88.0);
    let k = (x * LOG2E + SHIFT) - SHIFT;
    let r = x - k * LN2_HI - k * LN2_LO;
    // Cephes expf polynomial: e^r ≈ 1 + r + r²·P(r)
    let p = 1.987_569_2e-4_f32;
    let p = p * r + 1.398_199_9e-3;
    let p = p * r + 8.333_452e-3;
    let p = p * r + 4.166_579_6e-2;
    let p = p * r + 1.666_666_5e-1;
    let p = p * r + 5.000_000_3e-1;
    let e = p * r * r + r + 1.0;
    let scale = f32::from_bits((((k as i32) + 127) << 23) as u32);
    e * scale
}

/// Shannon entropy (nats) of the softmax distribution of raw `scores`,
/// without materializing the probabilities: with `m = max(s)`,
/// `e_c = exp(s_c − m)` and `Z = Σ e_c`,
/// `H = −Σ p_c·ln p_c = ln Z − (Σ e_c·(s_c − m)) / Z` — one `ln` total
/// instead of one per class, and no normalization pass. A degenerate
/// zero-`Z` input falls back to the uniform entropy, matching
/// [`softmax_in_place`]'s fallback.
///
/// The exponentials come from [`exp_approx`] accumulated across
/// `LANES` parallel f32 partial sums (folded to f64 at the end), so
/// the loop vectorizes; [`entropy_from_scores_reference`] keeps the
/// scalar libm version and the parity tests hold the two within 1e-5.
pub fn entropy_from_scores(scores: &[f32]) -> f64 {
    if scores.is_empty() {
        return 0.0;
    }
    let m = scores.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let mut z_lanes = [0.0f32; LANES];
    let mut w_lanes = [0.0f32; LANES];
    let chunks = scores.chunks_exact(LANES);
    let tail = chunks.remainder();
    for chunk in chunks {
        for j in 0..LANES {
            let shifted = chunk[j] - m;
            let e = exp_approx(shifted);
            z_lanes[j] += e;
            w_lanes[j] = e.mul_add(shifted, w_lanes[j]);
        }
    }
    let mut z: f64 = z_lanes.iter().copied().map(f64::from).sum();
    let mut weighted: f64 = w_lanes.iter().copied().map(f64::from).sum();
    for &s in tail {
        let shifted = s - m;
        let e = exp_approx(shifted);
        z += f64::from(e);
        weighted += f64::from(e * shifted);
    }
    if z > 0.0 {
        z.ln() - weighted / z
    } else {
        (scores.len() as f64).ln()
    }
}

/// The scalar reference for [`entropy_from_scores`]: libm `exp`, straight
/// f64 accumulation. Kept public as the parity oracle and as the
/// pre-vectorization baseline the `translate` bench measures speedups
/// against.
pub fn entropy_from_scores_reference(scores: &[f32]) -> f64 {
    if scores.is_empty() {
        return 0.0;
    }
    let m = scores.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let mut z = 0.0f64;
    let mut weighted = 0.0f64;
    for &s in scores {
        let shifted = s - m;
        let e = shifted.exp();
        z += f64::from(e);
        weighted += f64::from(e * shifted);
    }
    if z > 0.0 {
        z.ln() - weighted / z
    } else {
        (scores.len() as f64).ln()
    }
}

/// Numerically stable in-place softmax.
pub fn softmax_in_place(scores: &mut [f32]) {
    let max = scores.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let mut total = 0.0f32;
    for s in scores.iter_mut() {
        *s = (*s - max).exp();
        total += *s;
    }
    if total > 0.0 {
        for s in scores.iter_mut() {
            *s /= total;
        }
    } else {
        let uniform = 1.0 / scores.len() as f32;
        scores.fill(uniform);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Three linearly separable classes on disjoint feature sets.
    fn separable() -> (Vec<(SparseVector, u32)>, usize) {
        let mut examples = Vec::new();
        for rep in 0..20u32 {
            let noise = (rep % 3) as f32 * 0.01;
            examples.push((
                SparseVector::from_pairs(vec![(0, 1.0 + noise), (3, 0.1)]),
                0,
            ));
            examples.push((
                SparseVector::from_pairs(vec![(1, 1.0 + noise), (3, 0.1)]),
                1,
            ));
            examples.push((
                SparseVector::from_pairs(vec![(2, 1.0 + noise), (3, 0.1)]),
                2,
            ));
        }
        (examples, 4)
    }

    #[test]
    fn learns_separable_data() {
        let (examples, dim) = separable();
        let model = SoftmaxClassifier::train_owned(&examples, 3, dim, TrainConfig::default());
        for (x, y) in &examples {
            assert_eq!(model.predict(x), *y);
        }
    }

    #[test]
    fn probabilities_sum_to_one() {
        let (examples, dim) = separable();
        let model = SoftmaxClassifier::train_owned(&examples, 3, dim, TrainConfig::default());
        let p = model.predict_proba(&examples[0].0);
        let total: f32 = p.iter().sum();
        assert!((total - 1.0).abs() < 1e-5);
        assert!(p.iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn top_k_is_sorted_and_truncated() {
        let (examples, dim) = separable();
        let model = SoftmaxClassifier::train_owned(&examples, 3, dim, TrainConfig::default());
        let top = model.top_k(&examples[0].0, 2);
        assert_eq!(top.len(), 2);
        assert!(top[0].1 >= top[1].1);
        assert_eq!(top[0].0, 0);
        // k beyond classes clamps
        assert_eq!(model.top_k(&examples[0].0, 10).len(), 3);
    }

    #[test]
    fn deterministic_training() {
        let (examples, dim) = separable();
        let m1 = SoftmaxClassifier::train_owned(&examples, 3, dim, TrainConfig::default());
        let m2 = SoftmaxClassifier::train_owned(&examples, 3, dim, TrainConfig::default());
        assert_eq!(
            m1.predict_proba(&examples[5].0),
            m2.predict_proba(&examples[5].0)
        );
    }

    #[test]
    fn unseen_features_are_ignored() {
        let (examples, dim) = separable();
        let model = SoftmaxClassifier::train_owned(&examples, 3, dim, TrainConfig::default());
        // feature index 100 is beyond dim: must not panic, must not matter
        let x = SparseVector::from_pairs(vec![(0, 1.0), (100, 5.0)]);
        assert_eq!(model.predict(&x), 0);
    }

    #[test]
    fn single_class_degenerates_gracefully() {
        let examples = vec![(SparseVector::from_pairs(vec![(0, 1.0)]), 0u32); 4];
        let model = SoftmaxClassifier::train_owned(&examples, 1, 2, TrainConfig::default());
        let p = model.predict_proba(&examples[0].0);
        assert_eq!(p, vec![1.0]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn class_out_of_range_panics() {
        let examples = vec![(SparseVector::from_pairs(vec![(0, 1.0)]), 5u32)];
        SoftmaxClassifier::train_owned(&examples, 3, 2, TrainConfig::default());
    }

    #[test]
    fn entropy_from_scores_matches_softmax_then_entropy() {
        use crate::metrics::entropy;
        for scores in [
            vec![0.0f32, 0.0, 0.0],
            vec![1.0, -2.0, 3.5, 0.25],
            vec![1000.0, 1001.0, 999.0],
            vec![-7.0],
        ] {
            let mut probs = scores.clone();
            softmax_in_place(&mut probs);
            let expected = entropy(&probs);
            let fused = entropy_from_scores(&scores);
            assert!(
                (fused - expected).abs() < 1e-5,
                "{scores:?}: fused {fused} vs two-pass {expected}"
            );
        }
        assert_eq!(entropy_from_scores(&[]), 0.0);
    }

    #[test]
    fn exp_approx_tracks_libm_exp() {
        for i in -870..=880 {
            let x = i as f32 / 10.0;
            let got = exp_approx(x);
            let want = x.exp();
            let rel = ((got - want) / want).abs();
            assert!(
                rel < 2e-6,
                "exp_approx({x}) = {got}, libm {want}, rel {rel}"
            );
        }
        assert!(exp_approx(-10_000.0).is_finite());
        assert!(exp_approx(10_000.0).is_finite());
        assert_eq!(exp_approx(0.0), 1.0);
    }

    #[test]
    fn fast_entropy_matches_reference_on_wide_rows() {
        // wide pseudo-random score rows, like the 830-class key head
        let mut state = 0x9E37_79B9_u32;
        let mut next = move || {
            state = state.wrapping_mul(1_664_525).wrapping_add(1_013_904_223);
            (state >> 8) as f32 / (1 << 20) as f32 - 8.0
        };
        for width in [1usize, 7, 8, 9, 64, 311, 830] {
            let scores: Vec<f32> = (0..width).map(|_| next()).collect();
            let fast = entropy_from_scores(&scores);
            let reference = entropy_from_scores_reference(&scores);
            assert!(
                (fast - reference).abs() < 1e-5,
                "width {width}: fast {fast} vs reference {reference}"
            );
        }
        assert_eq!(entropy_from_scores_reference(&[]), 0.0);
    }

    #[test]
    fn softmax_stability() {
        let mut huge = [1000.0f32, 1001.0, 999.0];
        softmax_in_place(&mut huge);
        assert!((huge.iter().sum::<f32>() - 1.0).abs() < 1e-5);
        assert!(huge.iter().all(|v| v.is_finite()));
        let mut tiny = [-1000.0f32, -1000.0];
        softmax_in_place(&mut tiny);
        assert!((tiny[0] - 0.5).abs() < 1e-5);
    }

    #[test]
    fn partial_fit_learns_incrementally() {
        let (examples, dim) = separable();
        let views: Vec<(SparseView<'_>, u32)> =
            examples.iter().map(|(x, y)| (x.view(), *y)).collect();
        let mut model = SoftmaxClassifier::untrained(3, dim);
        for chunk in views.chunks(12) {
            model.partial_fit(chunk, TrainConfig::default());
        }
        for (x, y) in &examples {
            assert_eq!(model.predict(x), *y, "warm-started stream must classify");
        }
    }

    #[test]
    fn partial_fit_grows_classes_in_place() {
        let (examples, dim) = separable();
        let mut model = SoftmaxClassifier::train_owned(&examples, 3, dim, TrainConfig::default());
        assert_eq!(model.n_classes(), 3);
        // a brand-new class arrives mid-stream on its own feature
        let novel = SparseVector::from_pairs(vec![(3, 2.0)]);
        let batch = vec![(novel.view(), 3u32); 12];
        model.partial_fit(&batch, TrainConfig::default());
        assert_eq!(model.n_classes(), 4);
        assert_eq!(model.predict(&novel), 3);
        // the old classes survive the growth
        assert_eq!(model.predict(&examples[0].0), 0);
        assert_eq!(model.predict_proba(&examples[0].0).len(), 4);
    }

    #[test]
    fn state_round_trip_is_exact_and_resumes_training() {
        let (examples, dim) = separable();
        let views: Vec<(SparseView<'_>, u32)> =
            examples.iter().map(|(x, y)| (x.view(), *y)).collect();
        let mut original = SoftmaxClassifier::untrained(3, dim);
        original.partial_fit(&views[..20], TrainConfig::default());
        let restored = SoftmaxClassifier::from_state(original.export_state()).unwrap();
        // bit-identical inference after the round trip
        for (x, _) in &examples {
            assert_eq!(original.predict_proba(x), restored.predict_proba(x));
        }
        // and bit-identical *continued training*: the AdaGrad state and
        // fit counter survived, so the streams stay in lockstep
        let mut a = original.clone();
        let mut b = restored;
        a.partial_fit(&views[20..], TrainConfig::default());
        b.partial_fit(&views[20..], TrainConfig::default());
        for (x, _) in &examples {
            assert_eq!(a.predict_proba(x), b.predict_proba(x));
        }
    }

    #[test]
    fn from_state_rejects_corrupt_shapes() {
        let (examples, dim) = separable();
        let model = SoftmaxClassifier::train_owned(&examples, 3, dim, TrainConfig::default());
        let mut state = model.export_state();
        state.weights.pop();
        assert!(SoftmaxClassifier::from_state(state).is_err());
        let mut state = model.export_state();
        state.n_classes = 0;
        assert!(SoftmaxClassifier::from_state(state).is_err());
    }

    #[test]
    fn batch_inference_matches_scalar_path() {
        let (examples, dim) = separable();
        let model = SoftmaxClassifier::train_owned(&examples, 3, dim, TrainConfig::default());
        let rows = FeatureMatrix::from_rows(examples.iter().map(|(x, _)| x.clone()));
        let batch = model.predict_proba_batch(&rows);
        let mut entropies = Vec::new();
        model.entropy_batch_into(&rows, &mut entropies);
        assert_eq!(entropies.len(), examples.len());
        for (r, (x, _)) in examples.iter().enumerate() {
            let scalar = model.predict_proba(x);
            let row = &batch[r * 3..(r + 1) * 3];
            for (a, b) in scalar.iter().zip(row) {
                assert!((a - b).abs() < 1e-5, "row {r}: {a} vs {b}");
            }
            let h = crate::metrics::entropy(&scalar);
            assert!((entropies[r] - h).abs() < 1e-6, "row {r} entropy");
        }
    }
}
