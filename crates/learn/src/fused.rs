//! Fused multi-model entropy scoring — the bulk kernel behind batched
//! training-utility estimation (Definition 7).
//!
//! Definition 7 sums the prediction entropy of *four* classifiers per
//! claim. Scoring them one at a time walks the CSR batch four times and
//! touches four separate transposed weight blocks per stored feature.
//! [`FusedEntropy`] concatenates the trained classifiers' feature-major
//! layouts into one `dim × total_classes` block, so each stored feature
//! contributes with a single contiguous multiply-add sweep across *all*
//! models' classes, and each row needs one pass over the matrix total.
//! Untrained classifiers fold in as their constant uniform entropy.
//!
//! The fusion is a snapshot of the classifiers at build time — rebuild it
//! after training (`scrutinizer-core` rebuilds per retrain and ships it
//! inside the published model snapshot).

use crate::classifier::PropertyClassifier;
use crate::softmax::{entropy_from_scores, entropy_from_scores_reference, LANES};
use scrutinizer_text::FeatureMatrix;

/// Clamps one CSR entry for the branch-free fused sweep: an in-range
/// feature passes through; an out-of-range index (never produced by the
/// shared featurizer, but tolerated for parity with the scalar path)
/// becomes a zero-valued sweep of column 0.
#[inline]
fn clamp_feature(index: u32, value: f32, dim: usize) -> (usize, f32) {
    let i = index as usize;
    if i < dim {
        (i, value)
    } else {
        (0, 0.0)
    }
}

/// The concatenated feature-major scoring block of several classifiers.
#[derive(Debug, Clone)]
pub struct FusedEntropy {
    /// Total classes across the fused (trained) classifiers.
    width: usize,
    /// Row stride of `weights`: `width` rounded up to a multiple of
    /// [`LANES`], so every per-feature sweep is an exact
    /// `chunks_exact(LANES)` pass with no scalar tail.
    stride: usize,
    /// `[start, end)` segment of each fused classifier inside a scratch row.
    segments: Vec<(usize, usize)>,
    /// `dim × stride`: for feature `i`, the concatenated class columns of
    /// every fused classifier at `weights[i * stride ..][..width]`; the
    /// pad columns stay 0.0.
    weights: Vec<f32>,
    /// Concatenated biases padded to length `stride` (pad lanes 0.0).
    biases: Vec<f32>,
    /// Shared feature dimensionality.
    dim: usize,
    /// Σ `ln(n_labels)` of the untrained classifiers — their constant
    /// entropy contribution per row.
    constant: f64,
}

impl FusedEntropy {
    /// Fuses the trained classifiers of `models`; untrained ones
    /// contribute their uniform entropy as a per-row constant.
    ///
    /// # Panics
    /// Panics if the trained classifiers disagree on feature
    /// dimensionality (they share one featurizer by construction).
    pub fn fuse(models: &[&PropertyClassifier]) -> Self {
        let mut constant = 0.0f64;
        // (weights_t, biases, nc, part stride)
        let mut parts: Vec<(&[f32], &[f32], usize, usize)> = Vec::new();
        let mut dim = 0usize;
        for classifier in models {
            match classifier.softmax() {
                Some(model) => {
                    assert!(
                        dim == 0 || dim == model.dim(),
                        "fused classifiers must share one feature space"
                    );
                    dim = model.dim();
                    let (weights_t, biases, part_stride) = model.transposed_parts();
                    parts.push((weights_t, biases, model.n_classes(), part_stride));
                }
                None => constant += classifier.uniform_entropy(),
            }
        }
        let width: usize = parts.iter().map(|(_, _, nc, _)| nc).sum();
        let stride = width.next_multiple_of(LANES);
        let mut segments = Vec::with_capacity(parts.len());
        let mut biases = vec![0.0f32; stride];
        let mut start = 0usize;
        for (_, part_biases, nc, _) in &parts {
            segments.push((start, start + nc));
            biases[start..start + nc].copy_from_slice(part_biases);
            start += nc;
        }
        // interleave: fused row i = [m1 column i | m2 column i | ... | 0-pad]
        let mut weights = vec![0.0f32; dim * stride];
        for i in 0..dim {
            let row = &mut weights[i * stride..(i + 1) * stride];
            let mut offset = 0usize;
            for (weights_t, _, nc, part_stride) in &parts {
                row[offset..offset + nc]
                    .copy_from_slice(&weights_t[i * part_stride..i * part_stride + nc]);
                offset += nc;
            }
        }
        FusedEntropy {
            width,
            stride,
            segments,
            weights,
            biases,
            dim,
            constant,
        }
    }

    /// Appends the summed prediction entropy (Definition 7's `u(c)`) of
    /// every CSR row to `out`: one matrix pass, one contiguous
    /// fused-multiply-add sweep per group of eight stored features, one
    /// softmax-entropy per fused segment, plus the untrained constant.
    ///
    /// The hot loop consumes features eight at a time with a scalar-zip
    /// tail for the remainder: each sweep folds eight weight columns into
    /// the scratch row per scratch load/store, split across two
    /// accumulator chains (`a`/`b`) so the fused multiply-adds pipeline
    /// instead of serializing on one dependency chain. Eight columns per
    /// sweep is the lever because the sweep is otherwise bound on scratch
    /// traffic — one column per load/store (the scalar twin's shape)
    /// spends most of its memory ports re-reading the scratch row.
    /// Columns and scratch share the `LANES`-multiple `stride`, so the
    /// sweep is a contiguous same-length pass the compiler turns into
    /// packed FMAs, and the per-segment entropies use the branch-free
    /// [`exp_approx`] kernel. The [`utilities_into_reference`] scalar
    /// twin is the parity oracle and the throughput baseline the
    /// `translate` bench holds this kernel to.
    ///
    /// [`exp_approx`]: crate::softmax::exp_approx
    /// [`utilities_into_reference`]: Self::utilities_into_reference
    pub fn utilities_into(&self, rows: &FeatureMatrix, out: &mut Vec<f64>) {
        out.reserve(rows.rows());
        if self.width == 0 {
            out.extend(std::iter::repeat_n(self.constant, rows.rows()));
            return;
        }
        let stride = self.stride;
        let mut scratch_buf = vec![0.0f32; stride];
        let scratch = &mut scratch_buf[..stride];
        for r in 0..rows.rows() {
            scratch.copy_from_slice(&self.biases);
            if self.dim > 0 {
                let row = rows.row(r);
                let full = row.indices.len() - row.indices.len() % 8;
                // out-of-dim features (never produced by the shared
                // featurizer) degrade to a zero-valued sweep of column 0
                // instead of a branch
                let mut p = 0;
                while p < full {
                    let (i0, v0) = clamp_feature(row.indices[p], row.values[p], self.dim);
                    let (i1, v1) = clamp_feature(row.indices[p + 1], row.values[p + 1], self.dim);
                    let (i2, v2) = clamp_feature(row.indices[p + 2], row.values[p + 2], self.dim);
                    let (i3, v3) = clamp_feature(row.indices[p + 3], row.values[p + 3], self.dim);
                    let (i4, v4) = clamp_feature(row.indices[p + 4], row.values[p + 4], self.dim);
                    let (i5, v5) = clamp_feature(row.indices[p + 5], row.values[p + 5], self.dim);
                    let (i6, v6) = clamp_feature(row.indices[p + 6], row.values[p + 6], self.dim);
                    let (i7, v7) = clamp_feature(row.indices[p + 7], row.values[p + 7], self.dim);
                    let c0 = &self.weights[i0 * stride..][..stride];
                    let c1 = &self.weights[i1 * stride..][..stride];
                    let c2 = &self.weights[i2 * stride..][..stride];
                    let c3 = &self.weights[i3 * stride..][..stride];
                    let c4 = &self.weights[i4 * stride..][..stride];
                    let c5 = &self.weights[i5 * stride..][..stride];
                    let c6 = &self.weights[i6 * stride..][..stride];
                    let c7 = &self.weights[i7 * stride..][..stride];
                    for j in 0..stride {
                        let mut a = scratch[j];
                        let mut b = v4 * c4[j];
                        a = v0.mul_add(c0[j], a);
                        b = v5.mul_add(c5[j], b);
                        a = v1.mul_add(c1[j], a);
                        b = v6.mul_add(c6[j], b);
                        a = v2.mul_add(c2[j], a);
                        b = v7.mul_add(c7[j], b);
                        a = v3.mul_add(c3[j], a);
                        scratch[j] = a + b;
                    }
                    p += 8;
                }
                while p < row.indices.len() {
                    let (i, v) = clamp_feature(row.indices[p], row.values[p], self.dim);
                    let column = &self.weights[i * stride..][..stride];
                    for (s, &w) in scratch.iter_mut().zip(column) {
                        *s = v.mul_add(w, *s);
                    }
                    p += 1;
                }
            }
            let mut utility = self.constant;
            for &(start, end) in &self.segments {
                utility += entropy_from_scores(&scratch[start..end]);
            }
            out.push(utility);
        }
    }

    /// The pre-alignment scalar kernel, kept verbatim as the parity
    /// oracle and the baseline [`utilities_into`](Self::utilities_into)
    /// is benchmarked against: `width`-strided (unpadded, unaligned)
    /// weights, exact (unpadded) rows, one feature at a time, plain zip
    /// sweeps, libm-`exp` entropy. The width-strided weight copy is
    /// rebuilt per call (the pre-alignment kernel kept that layout
    /// resident); the copy is a fraction of a percent of the scoring
    /// work at any batch size worth benchmarking.
    pub fn utilities_into_reference(&self, rows: &FeatureMatrix, out: &mut Vec<f64>) {
        out.reserve(rows.rows());
        if self.width == 0 {
            out.extend(std::iter::repeat_n(self.constant, rows.rows()));
            return;
        }
        let width = self.width;
        let mut weights = vec![0.0f32; self.dim * width];
        for i in 0..self.dim {
            weights[i * width..(i + 1) * width]
                .copy_from_slice(&self.weights[i * self.stride..i * self.stride + width]);
        }
        let mut scratch = vec![0.0f32; width];
        for row in rows.iter() {
            scratch.copy_from_slice(&self.biases[..width]);
            for (i, v) in row.iter() {
                let i = i as usize;
                if i >= self.dim {
                    continue;
                }
                let column = &weights[i * width..(i + 1) * width];
                for (s, &w) in scratch.iter_mut().zip(column) {
                    *s += v * w;
                }
            }
            let mut utility = self.constant;
            for &(start, end) in &self.segments {
                utility += entropy_from_scores_reference(&scratch[start..end]);
            }
            out.push(utility);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::labels::LabelDict;
    use crate::softmax::TrainConfig;
    use scrutinizer_text::SparseVector;

    fn features(idx: u32, extra: u32) -> SparseVector {
        SparseVector::from_pairs(vec![(idx, 1.0), (extra, 0.3)])
    }

    fn trained(labels: &[&str], shift: u32) -> PropertyClassifier {
        let mut c = PropertyClassifier::new(
            "p",
            LabelDict::from_labels(labels.iter().copied()),
            12,
            TrainConfig::default(),
        );
        let examples: Vec<(SparseVector, String)> = (0..36)
            .map(|i| {
                let class = (i as usize) % labels.len();
                (
                    features(class as u32 + shift, 11),
                    labels[class].to_string(),
                )
            })
            .collect();
        c.retrain(&examples);
        c
    }

    #[test]
    fn fused_matches_per_classifier_entropies() {
        let a = trained(&["x", "y", "z"], 0);
        let b = trained(&["p", "q"], 4);
        let untrained = PropertyClassifier::new(
            "u",
            LabelDict::from_labels(["m", "n"]),
            12,
            TrainConfig::default(),
        );
        let rows = FeatureMatrix::from_rows((0..6).map(|i| features(i % 4, 11)));

        let fused = FusedEntropy::fuse(&[&a, &b, &untrained]);
        let mut got = Vec::new();
        fused.utilities_into(&rows, &mut got);

        for (r, utility) in got.iter().enumerate() {
            let row = rows.row(r).to_owned_vector();
            let expected: f64 = [&a, &b, &untrained]
                .iter()
                .map(|c| c.prediction_entropy(&row))
                .sum();
            assert!(
                (utility - expected).abs() < 1e-5,
                "row {r}: fused {utility} vs per-classifier {expected}"
            );
        }
    }

    #[test]
    fn vectorized_kernel_matches_the_scalar_reference() {
        let a = trained(&["x", "y", "z"], 0);
        let b = trained(&["p", "q"], 4);
        let fused = FusedEntropy::fuse(&[&a, &b]);
        // ragged nnz so both padded and unpadded row shapes are hit,
        // including an empty row and an out-of-dim feature index
        let rows = FeatureMatrix::from_rows([
            features(0, 11),
            SparseVector::from_pairs(vec![]),
            SparseVector::from_pairs((0..9).map(|i| (i, 0.1 * i as f32 + 0.2)).collect()),
            SparseVector::from_pairs(vec![(2, 1.5), (100, 9.0)]),
        ]);
        let mut fast = Vec::new();
        fused.utilities_into(&rows, &mut fast);
        let mut reference = Vec::new();
        fused.utilities_into_reference(&rows, &mut reference);
        assert_eq!(fast.len(), reference.len());
        for (r, (f, s)) in fast.iter().zip(&reference).enumerate() {
            assert!((f - s).abs() < 1e-5, "row {r}: fast {f} vs reference {s}");
        }
    }

    #[test]
    fn all_untrained_is_the_constant() {
        let u1 = PropertyClassifier::new(
            "a",
            LabelDict::from_labels(["x", "y"]),
            4,
            TrainConfig::default(),
        );
        let u2 = PropertyClassifier::new(
            "b",
            LabelDict::from_labels(["p", "q", "r"]),
            4,
            TrainConfig::default(),
        );
        let fused = FusedEntropy::fuse(&[&u1, &u2]);
        let rows = FeatureMatrix::from_rows([features(0, 2), features(1, 3)]);
        let mut got = Vec::new();
        fused.utilities_into(&rows, &mut got);
        let expected = (2.0f64).ln() + (3.0f64).ln();
        assert!(got.iter().all(|u| (u - expected).abs() < 1e-12), "{got:?}");
    }
}
