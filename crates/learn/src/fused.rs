//! Fused multi-model entropy scoring — the bulk kernel behind batched
//! training-utility estimation (Definition 7).
//!
//! Definition 7 sums the prediction entropy of *four* classifiers per
//! claim. Scoring them one at a time walks the CSR batch four times and
//! touches four separate transposed weight blocks per stored feature.
//! [`FusedEntropy`] concatenates the trained classifiers' feature-major
//! layouts into one `dim × total_classes` block, so each stored feature
//! contributes with a single contiguous multiply-add sweep across *all*
//! models' classes, and each row needs one pass over the matrix total.
//! Untrained classifiers fold in as their constant uniform entropy.
//!
//! The fusion is a snapshot of the classifiers at build time — rebuild it
//! after training (`scrutinizer-core` rebuilds per retrain and ships it
//! inside the published model snapshot).

use crate::classifier::PropertyClassifier;
use crate::softmax::entropy_from_scores;
use scrutinizer_text::FeatureMatrix;

/// The concatenated feature-major scoring block of several classifiers.
#[derive(Debug, Clone)]
pub struct FusedEntropy {
    /// Total classes across the fused (trained) classifiers.
    width: usize,
    /// `[start, end)` segment of each fused classifier inside a scratch row.
    segments: Vec<(usize, usize)>,
    /// `dim × width`: for feature `i`, the concatenated class columns of
    /// every fused classifier at `weights[i * width .. (i + 1) * width]`.
    weights: Vec<f32>,
    /// Concatenated biases (length `width`).
    biases: Vec<f32>,
    /// Shared feature dimensionality.
    dim: usize,
    /// Σ `ln(n_labels)` of the untrained classifiers — their constant
    /// entropy contribution per row.
    constant: f64,
}

impl FusedEntropy {
    /// Fuses the trained classifiers of `models`; untrained ones
    /// contribute their uniform entropy as a per-row constant.
    ///
    /// # Panics
    /// Panics if the trained classifiers disagree on feature
    /// dimensionality (they share one featurizer by construction).
    pub fn fuse(models: &[&PropertyClassifier]) -> Self {
        let mut constant = 0.0f64;
        let mut parts: Vec<(&[f32], &[f32], usize)> = Vec::new(); // (weights_t, biases, nc)
        let mut dim = 0usize;
        for classifier in models {
            match classifier.softmax() {
                Some(model) => {
                    assert!(
                        dim == 0 || dim == model.dim(),
                        "fused classifiers must share one feature space"
                    );
                    dim = model.dim();
                    let (weights_t, biases) = model.transposed_parts();
                    parts.push((weights_t, biases, model.n_classes()));
                }
                None => constant += classifier.uniform_entropy(),
            }
        }
        let width: usize = parts.iter().map(|(_, _, nc)| nc).sum();
        let mut segments = Vec::with_capacity(parts.len());
        let mut biases = Vec::with_capacity(width);
        let mut start = 0usize;
        for (_, part_biases, nc) in &parts {
            segments.push((start, start + nc));
            biases.extend_from_slice(part_biases);
            start += nc;
        }
        // interleave: fused row i = [m1 column i | m2 column i | ...]
        let mut weights = vec![0.0f32; dim * width];
        for i in 0..dim {
            let row = &mut weights[i * width..(i + 1) * width];
            let mut offset = 0usize;
            for (weights_t, _, nc) in &parts {
                row[offset..offset + nc].copy_from_slice(&weights_t[i * nc..(i + 1) * nc]);
                offset += nc;
            }
        }
        FusedEntropy {
            width,
            segments,
            weights,
            biases,
            dim,
            constant,
        }
    }

    /// Appends the summed prediction entropy (Definition 7's `u(c)`) of
    /// every CSR row to `out`: one matrix pass, one contiguous
    /// multiply-add sweep per stored feature, one softmax-entropy per
    /// fused segment, plus the untrained constant.
    pub fn utilities_into(&self, rows: &FeatureMatrix, out: &mut Vec<f64>) {
        out.reserve(rows.rows());
        if self.width == 0 {
            out.extend(std::iter::repeat_n(self.constant, rows.rows()));
            return;
        }
        let mut scratch = vec![0.0f32; self.width];
        for row in rows.iter() {
            scratch.copy_from_slice(&self.biases);
            for (i, v) in row.iter() {
                let i = i as usize;
                if i >= self.dim {
                    continue;
                }
                let column = &self.weights[i * self.width..(i + 1) * self.width];
                for (s, &w) in scratch.iter_mut().zip(column) {
                    *s += v * w;
                }
            }
            let mut utility = self.constant;
            for &(start, end) in &self.segments {
                utility += entropy_from_scores(&scratch[start..end]);
            }
            out.push(utility);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::labels::LabelDict;
    use crate::softmax::TrainConfig;
    use scrutinizer_text::SparseVector;

    fn features(idx: u32, extra: u32) -> SparseVector {
        SparseVector::from_pairs(vec![(idx, 1.0), (extra, 0.3)])
    }

    fn trained(labels: &[&str], shift: u32) -> PropertyClassifier {
        let mut c = PropertyClassifier::new(
            "p",
            LabelDict::from_labels(labels.iter().copied()),
            12,
            TrainConfig::default(),
        );
        let examples: Vec<(SparseVector, String)> = (0..36)
            .map(|i| {
                let class = (i as usize) % labels.len();
                (
                    features(class as u32 + shift, 11),
                    labels[class].to_string(),
                )
            })
            .collect();
        c.retrain(&examples);
        c
    }

    #[test]
    fn fused_matches_per_classifier_entropies() {
        let a = trained(&["x", "y", "z"], 0);
        let b = trained(&["p", "q"], 4);
        let untrained = PropertyClassifier::new(
            "u",
            LabelDict::from_labels(["m", "n"]),
            12,
            TrainConfig::default(),
        );
        let rows = FeatureMatrix::from_rows((0..6).map(|i| features(i % 4, 11)));

        let fused = FusedEntropy::fuse(&[&a, &b, &untrained]);
        let mut got = Vec::new();
        fused.utilities_into(&rows, &mut got);

        for (r, utility) in got.iter().enumerate() {
            let row = rows.row(r).to_owned_vector();
            let expected: f64 = [&a, &b, &untrained]
                .iter()
                .map(|c| c.prediction_entropy(&row))
                .sum();
            assert!(
                (utility - expected).abs() < 1e-5,
                "row {r}: fused {utility} vs per-classifier {expected}"
            );
        }
    }

    #[test]
    fn all_untrained_is_the_constant() {
        let u1 = PropertyClassifier::new(
            "a",
            LabelDict::from_labels(["x", "y"]),
            4,
            TrainConfig::default(),
        );
        let u2 = PropertyClassifier::new(
            "b",
            LabelDict::from_labels(["p", "q", "r"]),
            4,
            TrainConfig::default(),
        );
        let fused = FusedEntropy::fuse(&[&u1, &u2]);
        let rows = FeatureMatrix::from_rows([features(0, 2), features(1, 3)]);
        let mut got = Vec::new();
        fused.utilities_into(&rows, &mut got);
        let expected = (2.0f64).ln() + (3.0f64).ln();
        assert!(got.iter().all(|u| (u - expected).abs() < 1e-12), "{got:?}");
    }
}
