//! Seeded shuffling and train/test splitting.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Returns a seeded random permutation of `0..n`.
pub fn permutation(n: usize, seed: u64) -> Vec<usize> {
    let mut order: Vec<usize> = (0..n).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    order.shuffle(&mut rng);
    order
}

/// Splits indices `0..n` into (train, test) with `test_fraction` of the data
/// held out, after a seeded shuffle.
pub fn train_test_split(n: usize, test_fraction: f64, seed: u64) -> (Vec<usize>, Vec<usize>) {
    assert!(
        (0.0..=1.0).contains(&test_fraction),
        "fraction must be in [0,1]"
    );
    let order = permutation(n, seed);
    let n_test = ((n as f64) * test_fraction).round() as usize;
    let (test, train) = order.split_at(n_test.min(n));
    (train.to_vec(), test.to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn permutation_is_deterministic_and_complete() {
        let p1 = permutation(100, 9);
        let p2 = permutation(100, 9);
        assert_eq!(p1, p2);
        let mut sorted = p1.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(p1, permutation(100, 10), "different seeds differ");
    }

    #[test]
    fn split_sizes() {
        let (train, test) = train_test_split(100, 0.25, 1);
        assert_eq!(test.len(), 25);
        assert_eq!(train.len(), 75);
        // disjoint and complete
        let mut all: Vec<usize> = train.iter().chain(test.iter()).copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn degenerate_fractions() {
        let (train, test) = train_test_split(10, 0.0, 1);
        assert_eq!((train.len(), test.len()), (10, 0));
        let (train, test) = train_test_split(10, 1.0, 1);
        assert_eq!((train.len(), test.len()), (0, 10));
        let (train, test) = train_test_split(0, 0.5, 1);
        assert!(train.is_empty() && test.is_empty());
    }
}
