//! Active-learning utilities.

use crate::classifier::PropertyClassifier;
use scrutinizer_text::SparseVector;

/// Training utility `u(c)` of Definition 7: the sum over all property
/// classifiers of the entropy of their predictive distribution on claim `c`.
///
/// High utility ⇒ the models are uncertain ⇒ a human label for this claim
/// teaches them the most (uncertainty sampling).
pub fn training_utility(models: &[&PropertyClassifier], features: &SparseVector) -> f64 {
    models.iter().map(|m| m.prediction_entropy(features)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::labels::LabelDict;
    use crate::softmax::TrainConfig;

    fn features(idx: u32) -> SparseVector {
        SparseVector::from_pairs(vec![(idx, 1.0)])
    }

    #[test]
    fn utility_sums_entropies() {
        let a = PropertyClassifier::new(
            "relation",
            LabelDict::from_labels(["x", "y"]),
            4,
            TrainConfig::default(),
        );
        let b = PropertyClassifier::new(
            "row",
            LabelDict::from_labels(["p", "q", "r", "s"]),
            4,
            TrainConfig::default(),
        );
        let u = training_utility(&[&a, &b], &features(0));
        assert!((u - ((2.0f64).ln() + (4.0f64).ln())).abs() < 1e-9);
    }

    #[test]
    fn confident_models_lower_utility() {
        let mut trained = PropertyClassifier::new(
            "relation",
            LabelDict::from_labels(["x", "y"]),
            4,
            TrainConfig::default(),
        );
        let examples: Vec<(SparseVector, String)> = (0..20)
            .map(|i| {
                (
                    features(i % 2),
                    if i % 2 == 0 { "x".into() } else { "y".into() },
                )
            })
            .collect();
        trained.retrain(&examples);
        let untrained = PropertyClassifier::new(
            "row",
            LabelDict::from_labels(["x", "y"]),
            4,
            TrainConfig::default(),
        );
        let u_trained = training_utility(&[&trained], &features(0));
        let u_untrained = training_utility(&[&untrained], &features(0));
        assert!(u_trained < u_untrained);
    }
}
