//! Property classifiers: a softmax model plus its string label space.

use crate::labels::LabelDict;
use crate::metrics::entropy;
use crate::softmax::{SoftmaxClassifier, SoftmaxState, TrainConfig};
use scrutinizer_text::{FeatureMatrix, SparseVector, SparseView};

/// The serializable *learned* state of a [`PropertyClassifier`]: the
/// label space (which grows as checkers suggest new answers) and the
/// trained model, if any. Structural fields — property name, feature
/// dimensionality, train config — are rebuilt from configuration at
/// bootstrap and the state restored on top, so a snapshot stays valid
/// across code changes that only touch configuration defaults.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassifierState {
    /// Label names in interned-id order.
    pub labels: Vec<String>,
    /// The trained model (`None` = untrained / uniform fallback).
    pub model: Option<SoftmaxState>,
}

/// A classifier for one query property (relation / key / attribute /
/// formula), operating on interned label ids with a string boundary.
///
/// The hot paths (`retrain_encoded`, `partial_fit_encoded`, `top_k_ids`,
/// `entropy_batch_into`) move borrowed feature views and `u32` label ids
/// only; the string-returning APIs ([`top_k`](Self::top_k),
/// [`predict`](Self::predict)) are thin adapters kept for the session
/// boundary, where checkers read label text.
///
/// Supports the cold-start protocol of §3: before any training data exists,
/// predictions fall back to the uniform distribution over the known label
/// space, which makes early entropy maximal — exactly what drives the active
/// learner to gather labels first.
#[derive(Debug, Clone)]
pub struct PropertyClassifier {
    /// Human-readable property name ("relation", "row", …).
    pub property: String,
    labels: LabelDict,
    model: Option<SoftmaxClassifier>,
    dim: usize,
    config: TrainConfig,
}

impl PropertyClassifier {
    /// Creates an untrained classifier over a fixed label space.
    pub fn new(
        property: impl Into<String>,
        labels: LabelDict,
        dim: usize,
        config: TrainConfig,
    ) -> Self {
        PropertyClassifier {
            property: property.into(),
            labels,
            model: None,
            dim,
            config,
        }
    }

    /// The label space.
    pub fn labels(&self) -> &LabelDict {
        &self.labels
    }

    /// A copy of the learned state, for persistence.
    pub fn export_state(&self) -> ClassifierState {
        ClassifierState {
            labels: self.labels.names().to_vec(),
            model: self.model.as_ref().map(SoftmaxClassifier::export_state),
        }
    }

    /// Replaces the learned state from a persisted snapshot. The model's
    /// feature dimensionality must match this classifier's (a mismatch
    /// means the snapshot came from a different corpus/featurizer).
    pub fn restore_state(&mut self, state: ClassifierState) -> Result<(), String> {
        let model = match state.model {
            Some(model_state) => {
                if model_state.dim != self.dim {
                    return Err(format!(
                        "{}: snapshot dim {} != featurizer dim {}",
                        self.property, model_state.dim, self.dim
                    ));
                }
                let model = SoftmaxClassifier::from_state(model_state)
                    .map_err(|e| format!("{}: {e}", self.property))?;
                if model.n_classes() > state.labels.len() {
                    return Err(format!(
                        "{}: snapshot has {} classes but only {} labels",
                        self.property,
                        model.n_classes(),
                        state.labels.len()
                    ));
                }
                Some(model)
            }
            None => None,
        };
        self.labels = LabelDict::from_labels(state.labels);
        self.model = model;
        Ok(())
    }

    /// Interns a label (checkers may suggest new answers), returning its id.
    pub fn intern_label(&mut self, label: &str) -> u32 {
        self.labels.intern(label)
    }

    /// Whether a model has been trained.
    pub fn is_trained(&self) -> bool {
        self.model.is_some()
    }

    /// Retrains from scratch on borrowed `(features, label id)` pairs —
    /// the `Retrain(N, A)` step of Algorithm 1, with zero feature clones
    /// and zero label strings in the loop.
    pub fn retrain_encoded(&mut self, examples: &[(SparseView<'_>, u32)]) {
        if examples.is_empty() {
            self.model = None;
            return;
        }
        self.model = Some(SoftmaxClassifier::train(
            examples,
            self.labels.len(),
            self.dim,
            self.config,
        ));
    }

    /// Warm-start incremental training on one new example batch: resumes
    /// from the current weights (or a zero model when untrained) instead of
    /// replaying the whole verified history. Label ids past the current
    /// class count grow the model in place, so labels interned since the
    /// last call are legal.
    pub fn partial_fit_encoded(&mut self, examples: &[(SparseView<'_>, u32)]) {
        if examples.is_empty() {
            return;
        }
        let model = self
            .model
            .get_or_insert_with(|| SoftmaxClassifier::untrained(self.labels.len(), self.dim));
        model.partial_fit(examples, self.config);
    }

    /// String-boundary adapter over [`retrain_encoded`]: interns the labels
    /// and borrows the features (no clones).
    ///
    /// [`retrain_encoded`]: Self::retrain_encoded
    pub fn retrain(&mut self, examples: &[(SparseVector, String)]) {
        let encoded: Vec<(SparseView<'_>, u32)> = examples
            .iter()
            .map(|(x, label)| (x.view(), self.labels.intern(label)))
            .collect();
        self.retrain_encoded(&encoded);
    }

    /// Ranked `(label id, probability)` predictions, descending, length ≤
    /// `k` — the allocation-free core of [`top_k`](Self::top_k).
    ///
    /// Untrained: uniform probabilities in label-id order (deterministic).
    pub fn top_k_ids(&self, features: SparseView<'_>, k: usize) -> Vec<(u32, f32)> {
        match &self.model {
            Some(model) => model.top_k_view(features, k),
            None => {
                let n = self.labels.len();
                if n == 0 {
                    return Vec::new();
                }
                let p = 1.0 / n as f32;
                (0..n.min(k) as u32).map(|id| (id, p)).collect()
            }
        }
    }

    /// Most probable label id.
    pub fn predict_id(&self, features: SparseView<'_>) -> Option<u32> {
        self.top_k_ids(features, 1).first().map(|&(id, _)| id)
    }

    /// The label text of an id (`"<unknown>"` when out of range).
    pub fn label_name(&self, id: u32) -> &str {
        self.labels.name(id).unwrap_or("<unknown>")
    }

    /// Ranked `(label, probability)` predictions, descending, length ≤ `k`.
    ///
    /// Boundary adapter over [`top_k_ids`](Self::top_k_ids): the one place
    /// label strings are materialized, for screens shown to checkers.
    pub fn top_k(&self, features: &SparseVector, k: usize) -> Vec<(String, f32)> {
        self.top_k_ids(features.view(), k)
            .into_iter()
            .map(|(id, p)| (self.label_name(id).to_string(), p))
            .collect()
    }

    /// Most probable label (boundary adapter over
    /// [`predict_id`](Self::predict_id)).
    pub fn predict(&self, features: &SparseVector) -> Option<String> {
        self.predict_id(features.view())
            .map(|id| self.label_name(id).to_string())
    }

    /// Entropy of the predictive distribution — the per-model term `e(m, c)`
    /// of Definition 7. Untrained classifiers have maximal entropy
    /// `ln(#labels)`.
    pub fn prediction_entropy(&self, features: &SparseVector) -> f64 {
        self.prediction_entropy_view(features.view())
    }

    /// [`prediction_entropy`](Self::prediction_entropy) over a borrowed view.
    pub fn prediction_entropy_view(&self, features: SparseView<'_>) -> f64 {
        match &self.model {
            Some(model) => entropy(&model.predict_proba_view(features)),
            None => self.uniform_entropy(),
        }
    }

    /// Appends the prediction entropy of every CSR row to `out` — the bulk
    /// kernel behind batched utility scoring. Untrained classifiers
    /// contribute their constant uniform entropy per row.
    pub fn entropy_batch_into(&self, rows: &FeatureMatrix, out: &mut Vec<f64>) {
        match &self.model {
            Some(model) => model.entropy_batch_into(rows, out),
            None => {
                let h = self.uniform_entropy();
                out.extend(std::iter::repeat_n(h, rows.rows()));
            }
        }
    }

    /// The trained softmax model, if any (crate-internal: fusion reads the
    /// transposed layout directly).
    pub(crate) fn softmax(&self) -> Option<&SoftmaxClassifier> {
        self.model.as_ref()
    }

    /// Entropy of the uniform fallback distribution (`ln` of the label
    /// count; the untrained contribution to Definition 7).
    pub(crate) fn uniform_entropy(&self) -> f64 {
        let n = self.labels.len();
        if n == 0 {
            0.0
        } else {
            (n as f64).ln()
        }
    }

    /// Probability assigned to a specific label (0 when unknown label).
    pub fn probability_of(&self, features: &SparseVector, label: &str) -> f32 {
        let Some(id) = self.labels.get(label) else {
            return 0.0;
        };
        match &self.model {
            Some(model) => model
                .predict_proba_view(features.view())
                .get(id as usize)
                .copied()
                .unwrap_or(0.0),
            None => {
                if self.labels.is_empty() {
                    0.0
                } else {
                    1.0 / self.labels.len() as f32
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn features(idx: u32) -> SparseVector {
        SparseVector::from_pairs(vec![(idx, 1.0)])
    }

    fn trained() -> PropertyClassifier {
        let labels = LabelDict::from_labels(["GED", "TFC", "CO2"]);
        let mut c = PropertyClassifier::new("relation", labels, 8, TrainConfig::default());
        let examples: Vec<(SparseVector, String)> = (0..30)
            .map(|i| {
                let class = i % 3;
                (
                    features(class),
                    ["GED", "TFC", "CO2"][class as usize].to_string(),
                )
            })
            .collect();
        c.retrain(&examples);
        c
    }

    #[test]
    fn untrained_is_uniform_max_entropy() {
        let labels = LabelDict::from_labels(["a", "b", "c", "d"]);
        let c = PropertyClassifier::new("row", labels, 4, TrainConfig::default());
        assert!(!c.is_trained());
        let x = features(0);
        let top = c.top_k(&x, 2);
        assert_eq!(top.len(), 2);
        assert!((top[0].1 - 0.25).abs() < 1e-6);
        assert_eq!(top[0].0, "a");
        assert!((c.prediction_entropy(&x) - (4.0f64).ln()).abs() < 1e-9);
        assert!((c.probability_of(&x, "c") - 0.25).abs() < 1e-6);
    }

    #[test]
    fn trained_predicts_and_reduces_entropy() {
        let c = trained();
        assert!(c.is_trained());
        assert_eq!(c.predict(&features(0)).unwrap(), "GED");
        assert_eq!(c.predict(&features(1)).unwrap(), "TFC");
        assert!(c.prediction_entropy(&features(0)) < (3.0f64).ln());
        assert!(c.probability_of(&features(2), "CO2") > 0.5);
    }

    #[test]
    fn id_api_is_the_string_api_without_strings() {
        let c = trained();
        let x = features(1);
        let ids = c.top_k_ids(x.view(), 3);
        let names = c.top_k(&x, 3);
        assert_eq!(ids.len(), names.len());
        for ((id, p_id), (name, p_name)) in ids.iter().zip(&names) {
            assert_eq!(c.label_name(*id), name);
            assert_eq!(p_id, p_name);
        }
        assert_eq!(
            c.predict_id(x.view()).map(|id| c.label_name(id)),
            Some("TFC")
        );
    }

    #[test]
    fn new_labels_interned_on_retrain() {
        let mut c = trained();
        let examples = vec![(features(3), "NEW_REL".to_string()); 10];
        c.retrain(&examples);
        assert!(c.labels().get("NEW_REL").is_some());
        assert_eq!(c.predict(&features(3)).unwrap(), "NEW_REL");
    }

    #[test]
    fn partial_fit_handles_label_growth_mid_stream() {
        let mut c = trained();
        let before = c.prediction_entropy(&features(0));
        // a new label arrives: intern it, then warm-start on the new batch
        // (a realistic verified batch mixes the new label with known ones)
        let novel = features(5);
        let known: Vec<SparseVector> = (0..3).map(features).collect();
        let id = c.intern_label("NEW_REL");
        let mut batch: Vec<(scrutinizer_text::SparseView<'_>, u32)> = Vec::new();
        for _ in 0..6 {
            batch.push((novel.view(), id));
            for (class, x) in known.iter().enumerate() {
                batch.push((x.view(), class as u32));
            }
        }
        c.partial_fit_encoded(&batch);
        assert_eq!(c.predict(&novel).unwrap(), "NEW_REL");
        // old knowledge survives the warm start and the class growth
        assert_eq!(c.predict(&features(0)).unwrap(), "GED");
        assert!(c.prediction_entropy(&features(0)) <= before + 0.2);
    }

    #[test]
    fn partial_fit_bootstraps_an_untrained_classifier() {
        let labels = LabelDict::from_labels(["x", "y"]);
        let mut c = PropertyClassifier::new("row", labels, 4, TrainConfig::default());
        let (a, b) = (features(0), features(1));
        let batch = vec![(a.view(), 0u32), (b.view(), 1u32)];
        let batch: Vec<_> = batch.into_iter().cycle().take(20).collect();
        c.partial_fit_encoded(&batch);
        assert!(c.is_trained());
        assert_eq!(c.predict(&a).unwrap(), "x");
        assert_eq!(c.predict(&b).unwrap(), "y");
    }

    #[test]
    fn batch_entropies_match_scalar() {
        let c = trained();
        let xs: Vec<SparseVector> = (0..4).map(features).collect();
        let rows = scrutinizer_text::FeatureMatrix::from_rows(xs.iter().cloned());
        let mut batch = Vec::new();
        c.entropy_batch_into(&rows, &mut batch);
        for (i, x) in xs.iter().enumerate() {
            assert!((batch[i] - c.prediction_entropy(x)).abs() < 1e-6, "row {i}");
        }
        // untrained: constant ln(n) per row
        let untrained =
            PropertyClassifier::new("row", LabelDict::from_labels(["a", "b"]), 4, c.config);
        let mut out = Vec::new();
        untrained.entropy_batch_into(&rows, &mut out);
        assert!(out.iter().all(|h| (h - (2.0f64).ln()).abs() < 1e-12));
    }

    #[test]
    fn classifier_state_round_trips_labels_and_model() {
        let original = trained();
        let labels = LabelDict::from_labels(["GED", "TFC", "CO2"]);
        let mut restored = PropertyClassifier::new("relation", labels, 8, TrainConfig::default());
        restored.restore_state(original.export_state()).unwrap();
        assert!(restored.is_trained());
        for idx in 0..3 {
            let x = features(idx);
            assert_eq!(original.top_k(&x, 3), restored.top_k(&x, 3));
        }
        // grown label spaces survive the round trip
        let mut grown = trained();
        grown.intern_label("LATE_ARRIVAL");
        let mut restored =
            PropertyClassifier::new("relation", LabelDict::new(), 8, TrainConfig::default());
        restored.restore_state(grown.export_state()).unwrap();
        assert_eq!(restored.labels().names(), grown.labels().names());
    }

    #[test]
    fn restore_state_rejects_dim_mismatch() {
        let original = trained();
        let mut other =
            PropertyClassifier::new("relation", LabelDict::new(), 16, TrainConfig::default());
        assert!(other.restore_state(original.export_state()).is_err());
    }

    #[test]
    fn empty_retrain_resets() {
        let mut c = trained();
        c.retrain(&[]);
        assert!(!c.is_trained());
    }

    #[test]
    fn unknown_label_probability_zero() {
        let c = trained();
        assert_eq!(c.probability_of(&features(0), "NOPE"), 0.0);
    }
}
