//! Property classifiers: a softmax model plus its string label space.

use crate::labels::LabelDict;
use crate::metrics::entropy;
use crate::softmax::{SoftmaxClassifier, TrainConfig};
use scrutinizer_text::SparseVector;

/// A classifier for one query property (relation / key / attribute /
/// formula), operating on string labels.
///
/// Supports the cold-start protocol of §3: before any training data exists,
/// predictions fall back to the uniform distribution over the known label
/// space, which makes early entropy maximal — exactly what drives the active
/// learner to gather labels first.
#[derive(Debug, Clone)]
pub struct PropertyClassifier {
    /// Human-readable property name ("relation", "row", …).
    pub property: String,
    labels: LabelDict,
    model: Option<SoftmaxClassifier>,
    dim: usize,
    config: TrainConfig,
}

impl PropertyClassifier {
    /// Creates an untrained classifier over a fixed label space.
    pub fn new(
        property: impl Into<String>,
        labels: LabelDict,
        dim: usize,
        config: TrainConfig,
    ) -> Self {
        PropertyClassifier {
            property: property.into(),
            labels,
            model: None,
            dim,
            config,
        }
    }

    /// The label space.
    pub fn labels(&self) -> &LabelDict {
        &self.labels
    }

    /// Whether a model has been trained.
    pub fn is_trained(&self) -> bool {
        self.model.is_some()
    }

    /// Retrains from scratch on `(features, label)` pairs — the
    /// `Retrain(N, A)` step of Algorithm 1. Labels outside the label space
    /// are interned (checkers may suggest new answers).
    pub fn retrain(&mut self, examples: &[(SparseVector, String)]) {
        if examples.is_empty() {
            self.model = None;
            return;
        }
        let encoded: Vec<(SparseVector, u32)> = examples
            .iter()
            .map(|(x, label)| (x.clone(), self.labels.intern(label)))
            .collect();
        self.model = Some(SoftmaxClassifier::train(
            &encoded,
            self.labels.len(),
            self.dim,
            self.config,
        ));
    }

    /// Ranked `(label, probability)` predictions, descending, length ≤ `k`.
    ///
    /// Untrained: uniform probabilities in label-id order (deterministic).
    pub fn top_k(&self, features: &SparseVector, k: usize) -> Vec<(String, f32)> {
        match &self.model {
            Some(model) => model
                .top_k(features, k)
                .into_iter()
                .map(|(id, p)| (self.labels.name(id).unwrap_or("<unknown>").to_string(), p))
                .collect(),
            None => {
                let n = self.labels.len();
                if n == 0 {
                    return Vec::new();
                }
                let p = 1.0 / n as f32;
                self.labels
                    .names()
                    .iter()
                    .take(k)
                    .map(|l| (l.clone(), p))
                    .collect()
            }
        }
    }

    /// Most probable label.
    pub fn predict(&self, features: &SparseVector) -> Option<String> {
        self.top_k(features, 1).into_iter().next().map(|(l, _)| l)
    }

    /// Entropy of the predictive distribution — the per-model term `e(m, c)`
    /// of Definition 7. Untrained classifiers have maximal entropy
    /// `ln(#labels)`.
    pub fn prediction_entropy(&self, features: &SparseVector) -> f64 {
        match &self.model {
            Some(model) => entropy(&model.predict_proba(features)),
            None => {
                let n = self.labels.len();
                if n == 0 {
                    0.0
                } else {
                    (n as f64).ln()
                }
            }
        }
    }

    /// Probability assigned to a specific label (0 when unknown label).
    pub fn probability_of(&self, features: &SparseVector, label: &str) -> f32 {
        let Some(id) = self.labels.get(label) else {
            return 0.0;
        };
        match &self.model {
            Some(model) => model.predict_proba(features)[id as usize],
            None => {
                if self.labels.is_empty() {
                    0.0
                } else {
                    1.0 / self.labels.len() as f32
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn features(idx: u32) -> SparseVector {
        SparseVector::from_pairs(vec![(idx, 1.0)])
    }

    fn trained() -> PropertyClassifier {
        let labels = LabelDict::from_labels(["GED", "TFC", "CO2"]);
        let mut c = PropertyClassifier::new("relation", labels, 8, TrainConfig::default());
        let examples: Vec<(SparseVector, String)> = (0..30)
            .map(|i| {
                let class = i % 3;
                (
                    features(class),
                    ["GED", "TFC", "CO2"][class as usize].to_string(),
                )
            })
            .collect();
        c.retrain(&examples);
        c
    }

    #[test]
    fn untrained_is_uniform_max_entropy() {
        let labels = LabelDict::from_labels(["a", "b", "c", "d"]);
        let c = PropertyClassifier::new("row", labels, 4, TrainConfig::default());
        assert!(!c.is_trained());
        let x = features(0);
        let top = c.top_k(&x, 2);
        assert_eq!(top.len(), 2);
        assert!((top[0].1 - 0.25).abs() < 1e-6);
        assert!((c.prediction_entropy(&x) - (4.0f64).ln()).abs() < 1e-9);
        assert!((c.probability_of(&x, "c") - 0.25).abs() < 1e-6);
    }

    #[test]
    fn trained_predicts_and_reduces_entropy() {
        let c = trained();
        assert!(c.is_trained());
        assert_eq!(c.predict(&features(0)).unwrap(), "GED");
        assert_eq!(c.predict(&features(1)).unwrap(), "TFC");
        assert!(c.prediction_entropy(&features(0)) < (3.0f64).ln());
        assert!(c.probability_of(&features(2), "CO2") > 0.5);
    }

    #[test]
    fn new_labels_interned_on_retrain() {
        let mut c = trained();
        let examples = vec![(features(3), "NEW_REL".to_string()); 10];
        c.retrain(&examples);
        assert!(c.labels().get("NEW_REL").is_some());
        assert_eq!(c.predict(&features(3)).unwrap(), "NEW_REL");
    }

    #[test]
    fn empty_retrain_resets() {
        let mut c = trained();
        c.retrain(&[]);
        assert!(!c.is_trained());
    }

    #[test]
    fn unknown_label_probability_zero() {
        let c = trained();
        assert_eq!(c.probability_of(&features(0), "NOPE"), 0.0);
    }
}
