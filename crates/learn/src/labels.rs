//! String label dictionaries.

use scrutinizer_data::hash::FxHashMap;

/// Bidirectional mapping between string labels and dense class ids.
///
/// Label spaces come from the corpus (1791 relations, 830 keys, 87
/// attributes, 413 formulas in the paper's dataset) and grow as checkers
/// suggest new answers, so insertion must be cheap and ids stable.
#[derive(Debug, Clone, Default)]
pub struct LabelDict {
    by_name: FxHashMap<String, u32>,
    names: Vec<String>,
}

impl LabelDict {
    /// Creates an empty dictionary.
    pub fn new() -> Self {
        LabelDict::default()
    }

    /// Creates a dictionary from an iterator of labels (first occurrence
    /// fixes the id).
    pub fn from_labels<I: IntoIterator<Item = S>, S: Into<String>>(labels: I) -> Self {
        let mut dict = LabelDict::new();
        for label in labels {
            dict.intern(&label.into());
        }
        dict
    }

    /// Id of `label`, inserting it if new.
    pub fn intern(&mut self, label: &str) -> u32 {
        if let Some(&id) = self.by_name.get(label) {
            return id;
        }
        let id = self.names.len() as u32;
        self.by_name.insert(label.to_string(), id);
        self.names.push(label.to_string());
        id
    }

    /// Id of `label` if present.
    pub fn get(&self, label: &str) -> Option<u32> {
        self.by_name.get(label).copied()
    }

    /// Label of `id` if valid.
    pub fn name(&self, id: u32) -> Option<&str> {
        self.names.get(id as usize).map(String::as_str)
    }

    /// Number of labels.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// All labels in id order.
    pub fn names(&self) -> &[String] {
        &self.names
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut d = LabelDict::new();
        let a = d.intern("GED");
        let b = d.intern("TFC");
        assert_eq!(d.intern("GED"), a);
        assert_ne!(a, b);
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn bidirectional() {
        let d = LabelDict::from_labels(["x", "y", "z"]);
        assert_eq!(d.get("y"), Some(1));
        assert_eq!(d.name(2), Some("z"));
        assert_eq!(d.get("w"), None);
        assert_eq!(d.name(9), None);
    }

    #[test]
    fn first_occurrence_wins() {
        let d = LabelDict::from_labels(["a", "b", "a"]);
        assert_eq!(d.len(), 2);
        assert_eq!(d.get("a"), Some(0));
    }
}
