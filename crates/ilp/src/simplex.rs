//! Dense two-phase primal simplex with bounded variables and basis
//! warm-starting.
//!
//! Batch-selection LPs are small (Theorem 8: `O(claims + sections)`), so a
//! dense tableau with Bland's anti-cycling rule is fast enough and — more
//! importantly for a solver that backs a branch & bound — simple enough to
//! trust. Variable bounds are handled by shifting to `[0, u−l]` and adding
//! explicit upper-bound rows.
//!
//! Branch & bound re-solves near-identical LPs thousands of times: a child
//! node differs from its parent by one fixed binary. [`solve_lp_warm`]
//! exploits that by re-installing the parent's optimal [`LpBasis`] before
//! running phase 2 — when the old basis is still primal feasible the
//! expensive phase-1 artificial elimination is skipped entirely, and phase 2
//! starts next to the new optimum.

use crate::error::IlpError;
use crate::model::{Direction, Model, Sense};
use crate::Result;

/// Relaxed LP solution.
#[derive(Debug, Clone)]
pub struct LpSolution {
    /// One value per model variable.
    pub values: Vec<f64>,
    /// Objective under the model's direction.
    pub objective: f64,
}

const TOL: f64 = 1e-9;

/// Identity of a tableau row, stable across re-solves of the same model
/// under different bound overrides (fixing a binary removes its bound row,
/// so raw row indices shift between solves — identities do not).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RowId {
    /// The k-th model constraint.
    Constraint(usize),
    /// The upper-bound row of structural variable `i`.
    Bound(usize),
}

/// One basic column, identified structurally rather than positionally.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BasisEntry {
    /// Structural variable `i`.
    Structural(usize),
    /// The slack/surplus column of the identified row.
    Slack(RowId),
}

/// Snapshot of an optimal simplex basis, reusable to warm-start a related
/// solve (same model, different bound overrides). Opaque: produced by
/// [`solve_lp_warm`], consumed by the next [`solve_lp_warm`].
#[derive(Debug, Clone, Default)]
pub struct LpBasis {
    entries: Vec<BasisEntry>,
}

impl LpBasis {
    /// Number of recorded basic columns.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the basis is empty (a cold start).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Result of a warm-startable LP solve: the solution, the optimal basis
/// (for the *next* warm start), and whether the supplied basis was usable.
#[derive(Debug, Clone)]
pub struct WarmLp {
    /// The relaxed optimum.
    pub solution: LpSolution,
    /// The optimal basis, to seed a subsequent related solve.
    pub basis: LpBasis,
    /// `true` when the supplied prior basis was primal feasible and phase 1
    /// was skipped.
    pub warm_start_used: bool,
}

/// The assembled tableau plus everything needed to run and read it.
struct Prepared {
    n: usize,
    m: usize,
    total: usize,
    tableau: Vec<Vec<f64>>,
    basis: Vec<usize>,
    artificial_cols: Vec<usize>,
    row_ids: Vec<RowId>,
    costs: Vec<f64>,
    width: Vec<f64>,
    max_iterations: usize,
}

/// Solves the LP relaxation of `model` with overridden variable bounds
/// (`lower[i]`, `upper[i]` replace the model's bounds — branch & bound
/// tightens binaries this way). Integrality is ignored.
pub fn solve_lp(model: &Model, lower: &[f64], upper: &[f64]) -> Result<LpSolution> {
    solve_lp_warm(model, lower, upper, None).map(|warm| warm.solution)
}

/// [`solve_lp`] with optional basis warm-starting.
///
/// When `warm` holds the optimal basis of a related solve (same model,
/// slightly different bounds), the solver first re-installs it; if the
/// resulting basic solution is primal feasible, phase 1 is skipped and
/// phase 2 starts from the prior optimum. An unusable basis degrades
/// gracefully to the cold two-phase path.
pub fn solve_lp_warm(
    model: &Model,
    lower: &[f64],
    upper: &[f64],
    warm: Option<&LpBasis>,
) -> Result<WarmLp> {
    let n = model.num_variables();
    assert_eq!(lower.len(), n, "bounds arity");
    assert_eq!(upper.len(), n, "bounds arity");
    for i in 0..n {
        if lower[i] > upper[i] + TOL {
            return Err(IlpError::Infeasible);
        }
    }

    let mut prep = build_tableau(model, lower, upper);
    let mut warm_start_used = false;
    if let Some(basis) = warm {
        match warm_solve(&mut prep, basis) {
            Ok(true) => warm_start_used = true,
            Ok(false) => {
                // the prior basis is unusable here — rebuild and fall
                // through to the cold two-phase path
                prep = build_tableau(model, lower, upper);
            }
            Err(error) => return Err(error),
        }
    }

    // ---- phase 1: minimize sum of artificials (skipped on warm start) ----
    if !warm_start_used && !prep.artificial_cols.is_empty() {
        let mut phase1 = vec![0.0; prep.total];
        for &c in &prep.artificial_cols {
            phase1[c] = 1.0;
        }
        let value = run_simplex(
            &mut prep.tableau,
            &mut prep.basis,
            &phase1,
            prep.total,
            prep.max_iterations,
        )?;
        if value > 1e-6 {
            return Err(IlpError::Infeasible);
        }
        // pivot remaining artificials out of the basis where possible
        for r in 0..prep.m {
            if prep.artificial_cols.contains(&prep.basis[r]) {
                if let Some(col) = (0..prep.n + prep.m).find(|&c| prep.tableau[r][c].abs() > 1e-7) {
                    pivot(&mut prep.tableau, &mut prep.basis, r, col, prep.total);
                }
                // else: redundant row; harmless to leave (rhs ~ 0)
            }
        }
        freeze_artificials(&mut prep);
    }

    // ---- phase 2: original objective ----
    let mut phase2 = vec![0.0; prep.total];
    phase2[..prep.n].copy_from_slice(&prep.costs);
    run_simplex(
        &mut prep.tableau,
        &mut prep.basis,
        &phase2,
        prep.total,
        prep.max_iterations,
    )?;

    // read off shifted values
    let mut shifted = vec![0.0; n];
    for (r, &b) in prep.basis.iter().enumerate() {
        if b < n {
            shifted[b] = prep.tableau[r][prep.total];
        }
    }
    let values: Vec<f64> = (0..n)
        .map(|i| {
            lower[i]
                + if prep.width[i] <= TOL {
                    0.0
                } else {
                    shifted[i]
                }
        })
        .collect();
    let objective = model.objective_value(&values);
    let basis = extract_basis(&prep);
    Ok(WarmLp {
        solution: LpSolution { values, objective },
        basis,
        warm_start_used,
    })
}

/// Builds the phase-1-ready tableau: shifted bounds, normalized rhs, slack
/// and artificial columns, initial (all-slack/artificial) basis.
fn build_tableau(model: &Model, lower: &[f64], upper: &[f64]) -> Prepared {
    let n = model.num_variables();
    // shifted widths; fixed variables keep width 0 and leave the tableau
    let width: Vec<f64> = (0..n).map(|i| upper[i] - lower[i]).collect();

    // objective in "minimize" convention over shifted vars
    let sign = match model.direction() {
        Direction::Minimize => 1.0,
        Direction::Maximize => -1.0,
    };
    // fixed variables (width 0) leave the tableau entirely: their column is
    // zeroed below and their objective contribution is a constant, so their
    // cost must be zeroed too or the simplex sees a phantom improving column
    let costs: Vec<f64> = model
        .variables
        .iter()
        .enumerate()
        .map(|(i, v)| {
            if width[i] <= TOL {
                0.0
            } else {
                sign * v.objective
            }
        })
        .collect();

    // rows: model constraints with rhs adjusted by lower bounds,
    // plus upper-bound rows x'_i ≤ width_i for non-fixed vars
    struct Row {
        coeffs: Vec<f64>, // length n (structural only)
        sense: Sense,
        rhs: f64,
        id: RowId,
    }
    let mut rows: Vec<Row> = Vec::with_capacity(model.num_constraints() + n);
    for (k, c) in model.constraints.iter().enumerate() {
        let mut coeffs = vec![0.0; n];
        let mut rhs = c.rhs;
        for (var, coeff) in &c.terms {
            coeffs[var.0] += *coeff;
        }
        for i in 0..n {
            rhs -= coeffs[i] * lower[i];
            if width[i] <= TOL {
                coeffs[i] = 0.0; // fixed variable contributes via rhs only
            }
        }
        rows.push(Row {
            coeffs,
            sense: c.sense,
            rhs,
            id: RowId::Constraint(k),
        });
    }
    for i in 0..n {
        if width[i] > TOL && width[i].is_finite() {
            let mut coeffs = vec![0.0; n];
            coeffs[i] = 1.0;
            rows.push(Row {
                coeffs,
                sense: Sense::Le,
                rhs: width[i],
                id: RowId::Bound(i),
            });
        }
    }

    // normalize rhs ≥ 0
    for row in &mut rows {
        if row.rhs < 0.0 {
            for c in &mut row.coeffs {
                *c = -*c;
            }
            row.rhs = -row.rhs;
            row.sense = match row.sense {
                Sense::Le => Sense::Ge,
                Sense::Ge => Sense::Le,
                Sense::Eq => Sense::Eq,
            };
        }
    }

    let m = rows.len();
    // column layout: [0..n structural][n..n+m slack/surplus][artificials][rhs]
    let mut n_artificial = 0usize;
    for row in &rows {
        if !matches!(row.sense, Sense::Le) {
            n_artificial += 1;
        }
    }
    let total = n + m + n_artificial;
    let mut tableau: Vec<Vec<f64>> = Vec::with_capacity(m);
    let mut basis: Vec<usize> = Vec::with_capacity(m);
    let mut artificial_cols: Vec<usize> = Vec::with_capacity(n_artificial);
    let mut row_ids: Vec<RowId> = Vec::with_capacity(m);
    let mut next_artificial = n + m;
    for (r, row) in rows.iter().enumerate() {
        let mut line = vec![0.0; total + 1];
        line[..n].copy_from_slice(&row.coeffs);
        line[total] = row.rhs;
        match row.sense {
            Sense::Le => {
                line[n + r] = 1.0;
                basis.push(n + r);
            }
            Sense::Ge => {
                line[n + r] = -1.0;
                line[next_artificial] = 1.0;
                basis.push(next_artificial);
                artificial_cols.push(next_artificial);
                next_artificial += 1;
            }
            Sense::Eq => {
                line[next_artificial] = 1.0;
                basis.push(next_artificial);
                artificial_cols.push(next_artificial);
                next_artificial += 1;
            }
        }
        row_ids.push(row.id);
        tableau.push(line);
    }

    let max_iterations = 200 * (m + total) + 1000;

    Prepared {
        n,
        m,
        total,
        tableau,
        basis,
        artificial_cols,
        row_ids,
        costs,
        width,
        max_iterations,
    }
}

/// Attempts to restart from a prior optimal basis: install it, clean up
/// violated artificial rows, and — when the restart is primal infeasible
/// but dual feasible, the normal state after a branch & bound bound change
/// — repair it with dual simplex pivots.
///
/// Returns `Ok(true)` when the tableau is left primal feasible and ready
/// for phase 2, `Ok(false)` when the basis is unusable (caller rebuilds
/// and solves cold), and `Err(Infeasible)` when the dual ratio test proves
/// the LP has no feasible point at all.
fn warm_solve(prep: &mut Prepared, warm: &LpBasis) -> Result<bool> {
    // map stable identities to this tableau's columns
    let mut target_cols: Vec<usize> = Vec::with_capacity(warm.entries.len());
    for entry in &warm.entries {
        match *entry {
            BasisEntry::Structural(i) => {
                if i < prep.n && prep.width[i] > TOL {
                    target_cols.push(i);
                }
            }
            BasisEntry::Slack(id) => {
                if let Some(r) = prep.row_ids.iter().position(|&rid| rid == id) {
                    target_cols.push(prep.n + r);
                }
            }
        }
    }
    let mut used_rows = vec![false; prep.m];
    for &col in &target_cols {
        if let Some(r) = prep.basis.iter().position(|&b| b == col) {
            used_rows[r] = true; // already basic (its own slack row)
            continue;
        }
        // pick the free row where this column has the strongest pivot
        let mut best: Option<(usize, f64)> = None;
        for (r, used) in used_rows.iter().enumerate() {
            if *used {
                continue;
            }
            let a = prep.tableau[r][col].abs();
            if a > 1e-7 && best.is_none_or(|(_, b)| a > b) {
                best = Some((r, a));
            }
        }
        if let Some((r, _)) = best {
            pivot(&mut prep.tableau, &mut prep.basis, r, col, prep.total);
            used_rows[r] = true;
        }
        // unmappable entries are skipped; their rows keep the default basis
    }
    // Rows still basic in an artificial must not survive the freeze with
    // their constraint silently dropped. Unlike the cold path — where
    // phase-1 optimality proves such rows redundant — an installed basis
    // gives no guarantee, whatever the rhs: a frozen artificial on a live
    // row lets phase 2 violate the constraint through the row's negative
    // coefficients (the ratio test only bounds positive ones). Pivot a
    // real column in (the row's own slack when the rhs is clearly
    // nonzero, any nonzero column otherwise); only a row whose real
    // coefficients are all ~0 is genuinely redundant and safe to freeze.
    for r in 0..prep.m {
        if !prep.artificial_cols.contains(&prep.basis[r]) {
            continue;
        }
        let rhs = prep.tableau[r][prep.total];
        if rhs.abs() > 1e-6 {
            let slack = prep.n + r;
            if prep.tableau[r][slack].abs() > 1e-7 {
                pivot(&mut prep.tableau, &mut prep.basis, r, slack, prep.total);
            } else {
                return Ok(false); // e.g. an equality row: no slack to use
            }
        } else if let Some(col) = (0..prep.n + prep.m).find(|&c| prep.tableau[r][c].abs() > 1e-7) {
            pivot(&mut prep.tableau, &mut prep.basis, r, col, prep.total);
        }
        // else: every real coefficient is ~0 — the row is redundant
    }
    freeze_artificials(prep);

    // phase-2 reduced costs over the installed basis
    let mut costs = vec![0.0; prep.total];
    costs[..prep.n].copy_from_slice(&prep.costs);
    let z = compute_reduced_costs(&prep.tableau, &prep.basis, &costs, prep.total);
    let primal_feasible = prep.tableau.iter().all(|row| row[prep.total] >= -1e-7);
    if primal_feasible {
        return Ok(true); // phase 2 finishes the job
    }
    let dual_feasible = (0..prep.total).all(|c| z[c] >= -1e-7);
    if !dual_feasible {
        return Ok(false); // neither primal nor dual usable: solve cold
    }
    dual_repair(prep, z)
}

/// Dual simplex: drive negative-rhs rows out of the basis while reduced
/// costs stay nonnegative. `Ok(true)` on primal feasibility, `Ok(false)`
/// when the iteration budget runs out, `Err(Infeasible)` when a row proves
/// the LP empty (negative rhs, no negative coefficient).
fn dual_repair(prep: &mut Prepared, mut z: Vec<f64>) -> Result<bool> {
    for _ in 0..prep.max_iterations {
        // most negative rhs row
        let mut leaving: Option<(usize, f64)> = None;
        for (r, row) in prep.tableau.iter().enumerate() {
            let rhs = row[prep.total];
            if rhs < -1e-9 && leaving.is_none_or(|(_, worst)| rhs < worst) {
                leaving = Some((r, rhs));
            }
        }
        let Some((row, _)) = leaving else {
            return Ok(true);
        };
        // dual ratio test: entering column minimizes z_j / −a_rj over
        // a_rj < 0 (artificials are frozen at zero and never re-enter)
        let mut entering: Option<(usize, f64)> = None;
        for (c, &a) in prep.tableau[row].iter().take(prep.total).enumerate() {
            if a < -TOL {
                let ratio = z[c].max(0.0) / -a;
                let better = match entering {
                    None => true,
                    Some((ec, eratio)) => ratio < eratio - TOL || (ratio < eratio + TOL && c < ec),
                };
                if better {
                    entering = Some((c, ratio));
                }
            }
        }
        let Some((col, _)) = entering else {
            // a row demanding a negative value from nonnegative terms:
            // the constraint system is empty
            return Err(IlpError::Infeasible);
        };
        pivot_with_z(
            &mut prep.tableau,
            &mut prep.basis,
            &mut z,
            row,
            col,
            prep.total,
        );
    }
    Ok(false)
}

/// Zeroes artificial columns so phase 2 can never pivot them back in.
fn freeze_artificials(prep: &mut Prepared) {
    for row in prep.tableau.iter_mut() {
        for &c in &prep.artificial_cols {
            row[c] = 0.0;
        }
    }
}

/// Reads the final basis back out as stable identities.
fn extract_basis(prep: &Prepared) -> LpBasis {
    let entries = prep
        .basis
        .iter()
        .filter_map(|&b| {
            if b < prep.n {
                Some(BasisEntry::Structural(b))
            } else if b < prep.n + prep.m {
                Some(BasisEntry::Slack(prep.row_ids[b - prep.n]))
            } else {
                None // artificial at zero: no useful identity
            }
        })
        .collect();
    LpBasis { entries }
}

/// Runs minimizing simplex iterations for cost vector `costs`; returns the
/// phase objective value. Bland's rule throughout (anti-cycling).
fn run_simplex(
    tableau: &mut [Vec<f64>],
    basis: &mut [usize],
    costs: &[f64],
    total: usize,
    max_iterations: usize,
) -> Result<f64> {
    let m = tableau.len();
    let mut z = compute_reduced_costs(tableau, basis, costs, total);
    for _ in 0..max_iterations {
        // Bland: smallest-index column with negative reduced cost
        let Some(entering) = (0..total).find(|&c| z[c] < -TOL) else {
            return Ok(-z[total]); // phase value (z holds −obj in rhs slot)
        };
        // ratio test, Bland tie-break on basis index
        let mut leaving: Option<(usize, f64)> = None;
        for r in 0..m {
            let a = tableau[r][entering];
            if a > TOL {
                let ratio = tableau[r][total] / a;
                let better = match leaving {
                    None => true,
                    Some((lr, lratio)) => {
                        ratio < lratio - TOL || (ratio < lratio + TOL && basis[r] < basis[lr])
                    }
                };
                if better {
                    leaving = Some((r, ratio));
                }
            }
        }
        let Some((row, _)) = leaving else {
            return Err(IlpError::Unbounded);
        };
        pivot_with_z(tableau, basis, &mut z, row, entering, total);
    }
    Err(IlpError::IterationLimit)
}

/// The reduced-cost row: `z_j = costs_j − Σ_i costs_{basis_i} · a_ij`,
/// with the (negated) phase objective in the rhs slot.
fn compute_reduced_costs(
    tableau: &[Vec<f64>],
    basis: &[usize],
    costs: &[f64],
    total: usize,
) -> Vec<f64> {
    let mut z = vec![0.0; total + 1];
    z[..total].copy_from_slice(costs);
    for (r, row) in tableau.iter().enumerate() {
        let cb = costs[basis[r]];
        if cb != 0.0 {
            for c in 0..=total {
                z[c] -= cb * row[c];
            }
        }
    }
    z
}

fn pivot_with_z(
    tableau: &mut [Vec<f64>],
    basis: &mut [usize],
    z: &mut [f64],
    row: usize,
    col: usize,
    total: usize,
) {
    normalize_and_eliminate(tableau, basis, row, col, total);
    let factor = z[col];
    if factor != 0.0 {
        for c in 0..=total {
            z[c] -= factor * tableau[row][c];
        }
    }
}

fn pivot(tableau: &mut [Vec<f64>], basis: &mut [usize], row: usize, col: usize, total: usize) {
    normalize_and_eliminate(tableau, basis, row, col, total);
}

fn normalize_and_eliminate(
    tableau: &mut [Vec<f64>],
    basis: &mut [usize],
    row: usize,
    col: usize,
    total: usize,
) {
    let pivot_value = tableau[row][col];
    debug_assert!(pivot_value.abs() > 1e-12, "zero pivot");
    for cell in tableau[row].iter_mut().take(total + 1) {
        *cell /= pivot_value;
    }
    let pivot_row = tableau[row].clone();
    for (r, line) in tableau.iter_mut().enumerate() {
        if r == row {
            continue;
        }
        let factor = line[col];
        if factor != 0.0 {
            for c in 0..=total {
                line[c] -= factor * pivot_row[c];
            }
        }
    }
    basis[row] = col;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Model;

    fn bounds(model: &Model) -> (Vec<f64>, Vec<f64>) {
        (
            model.variables.iter().map(|v| v.lower).collect(),
            model.variables.iter().map(|v| v.upper).collect(),
        )
    }

    #[test]
    fn textbook_maximization() {
        // max 3x + 5y s.t. x ≤ 4, 2y ≤ 12, 3x + 2y ≤ 18 → (2, 6), obj 36
        let mut m = Model::maximize();
        let x = m.add_continuous("x", 0.0, f64::INFINITY, 3.0).unwrap();
        let y = m.add_continuous("y", 0.0, f64::INFINITY, 5.0).unwrap();
        m.add_constraint(vec![(x, 1.0)], Sense::Le, 4.0).unwrap();
        m.add_constraint(vec![(y, 2.0)], Sense::Le, 12.0).unwrap();
        m.add_constraint(vec![(x, 3.0), (y, 2.0)], Sense::Le, 18.0)
            .unwrap();
        let (l, u) = bounds(&m);
        let sol = solve_lp(&m, &l, &u).unwrap();
        assert!((sol.objective - 36.0).abs() < 1e-6);
        assert!((sol.values[x.index()] - 2.0).abs() < 1e-6);
        assert!((sol.values[y.index()] - 6.0).abs() < 1e-6);
    }

    #[test]
    fn minimization_with_ge() {
        // min 2x + 3y s.t. x + y ≥ 10, x ≥ 2 → (8, 2)? obj: prefer x (cost 2):
        // x=10,y=0 gives 20; constraint x≥2 already holds → obj 20
        let mut m = Model::minimize();
        let x = m.add_continuous("x", 0.0, f64::INFINITY, 2.0).unwrap();
        let y = m.add_continuous("y", 0.0, f64::INFINITY, 3.0).unwrap();
        m.add_constraint(vec![(x, 1.0), (y, 1.0)], Sense::Ge, 10.0)
            .unwrap();
        m.add_constraint(vec![(x, 1.0)], Sense::Ge, 2.0).unwrap();
        let (l, u) = bounds(&m);
        let sol = solve_lp(&m, &l, &u).unwrap();
        assert!((sol.objective - 20.0).abs() < 1e-6);
        assert!((sol.values[x.index()] - 10.0).abs() < 1e-6);
    }

    #[test]
    fn equality_constraints() {
        // max x + y s.t. x + y = 5, x − y = 1 → (3, 2), obj 5
        let mut m = Model::maximize();
        let x = m.add_continuous("x", 0.0, f64::INFINITY, 1.0).unwrap();
        let y = m.add_continuous("y", 0.0, f64::INFINITY, 1.0).unwrap();
        m.add_constraint(vec![(x, 1.0), (y, 1.0)], Sense::Eq, 5.0)
            .unwrap();
        m.add_constraint(vec![(x, 1.0), (y, -1.0)], Sense::Eq, 1.0)
            .unwrap();
        let (l, u) = bounds(&m);
        let sol = solve_lp(&m, &l, &u).unwrap();
        assert!((sol.objective - 5.0).abs() < 1e-6);
        assert!((sol.values[x.index()] - 3.0).abs() < 1e-6);
        assert!((sol.values[y.index()] - 2.0).abs() < 1e-6);
    }

    #[test]
    fn infeasible_detected() {
        let mut m = Model::maximize();
        let x = m.add_continuous("x", 0.0, 1.0, 1.0).unwrap();
        m.add_constraint(vec![(x, 1.0)], Sense::Ge, 5.0).unwrap();
        let (l, u) = bounds(&m);
        assert!(matches!(solve_lp(&m, &l, &u), Err(IlpError::Infeasible)));
    }

    #[test]
    fn unbounded_detected() {
        let mut m = Model::maximize();
        let _x = m.add_continuous("x", 0.0, f64::INFINITY, 1.0).unwrap();
        let (l, u) = bounds(&m);
        assert!(matches!(solve_lp(&m, &l, &u), Err(IlpError::Unbounded)));
    }

    #[test]
    fn variable_bounds_respected() {
        // max x + y with x ∈ [1, 3], y ∈ [0, 2], x + y ≤ 4 → (3, 1) or (2, 2): obj 4... wait
        // optimum 4 tight on constraint; but y ≤ 2 and x ≤ 3; obj = 4.
        let mut m = Model::maximize();
        let x = m.add_continuous("x", 1.0, 3.0, 1.0).unwrap();
        let y = m.add_continuous("y", 0.0, 2.0, 1.0).unwrap();
        m.add_constraint(vec![(x, 1.0), (y, 1.0)], Sense::Le, 4.0)
            .unwrap();
        let (l, u) = bounds(&m);
        let sol = solve_lp(&m, &l, &u).unwrap();
        assert!((sol.objective - 4.0).abs() < 1e-6);
        assert!(sol.values[x.index()] >= 1.0 - 1e-9);
        assert!(sol.values[y.index()] <= 2.0 + 1e-9);
    }

    #[test]
    fn fixed_variables_substituted() {
        // y fixed at 2 by bounds; max x s.t. x + y ≤ 5 → x = 3
        let mut m = Model::maximize();
        let x = m.add_continuous("x", 0.0, f64::INFINITY, 1.0).unwrap();
        let y = m.add_continuous("y", 2.0, 2.0, 0.0).unwrap();
        m.add_constraint(vec![(x, 1.0), (y, 1.0)], Sense::Le, 5.0)
            .unwrap();
        let (l, u) = bounds(&m);
        let sol = solve_lp(&m, &l, &u).unwrap();
        assert!((sol.values[x.index()] - 3.0).abs() < 1e-6);
        assert!((sol.values[y.index()] - 2.0).abs() < 1e-9);
    }

    #[test]
    fn negative_lower_bounds() {
        // min x with x ∈ [−5, 5], x ≥ −3 → x = −3
        let mut m = Model::minimize();
        let x = m.add_continuous("x", -5.0, 5.0, 1.0).unwrap();
        m.add_constraint(vec![(x, 1.0)], Sense::Ge, -3.0).unwrap();
        let (l, u) = bounds(&m);
        let sol = solve_lp(&m, &l, &u).unwrap();
        assert!((sol.values[x.index()] + 3.0).abs() < 1e-6);
    }

    #[test]
    fn binary_relaxation_is_fractional() {
        // max x + y s.t. x + y ≤ 1.5 with binaries → LP optimum 1.5
        let mut m = Model::maximize();
        let x = m.add_binary("x", 1.0);
        let y = m.add_binary("y", 1.0);
        m.add_constraint(vec![(x, 1.0), (y, 1.0)], Sense::Le, 1.5)
            .unwrap();
        let (l, u) = bounds(&m);
        let sol = solve_lp(&m, &l, &u).unwrap();
        assert!((sol.objective - 1.5).abs() < 1e-6);
    }

    #[test]
    fn degenerate_lp_terminates() {
        // multiple redundant constraints through the same vertex
        let mut m = Model::maximize();
        let x = m.add_continuous("x", 0.0, f64::INFINITY, 1.0).unwrap();
        let y = m.add_continuous("y", 0.0, f64::INFINITY, 1.0).unwrap();
        for rhs in [2.0, 2.0, 2.0] {
            m.add_constraint(vec![(x, 1.0), (y, 1.0)], Sense::Le, rhs)
                .unwrap();
        }
        m.add_constraint(vec![(x, 1.0)], Sense::Le, 2.0).unwrap();
        m.add_constraint(vec![(y, 1.0)], Sense::Le, 2.0).unwrap();
        let (l, u) = bounds(&m);
        let sol = solve_lp(&m, &l, &u).unwrap();
        assert!((sol.objective - 2.0).abs() < 1e-6);
    }

    #[test]
    fn warm_start_reproduces_cold_optimum() {
        // knapsack-relaxation shape, like a branch & bound child: solve,
        // fix one binary, re-solve warm — same optimum as a cold solve
        let mut m = Model::maximize();
        let vars: Vec<_> = (0..8)
            .map(|i| m.add_binary(format!("x{i}"), 1.0 + (i % 3) as f64))
            .collect();
        let terms: Vec<_> = vars
            .iter()
            .enumerate()
            .map(|(i, &v)| (v, 1.0 + (i % 4) as f64))
            .collect();
        m.add_constraint(terms, Sense::Le, 7.5).unwrap();
        let (l, u) = bounds(&m);
        let root = solve_lp_warm(&m, &l, &u, None).unwrap();
        assert!(!root.warm_start_used);
        // child: fix x0 = 0
        let mut child_u = u.clone();
        child_u[0] = 0.0;
        let cold = solve_lp(&m, &l, &child_u).unwrap();
        let warm = solve_lp_warm(&m, &l, &child_u, Some(&root.basis)).unwrap();
        assert!(
            (warm.solution.objective - cold.objective).abs() < 1e-6,
            "warm {} vs cold {}",
            warm.solution.objective,
            cold.objective
        );
        // child: fix x1 = 1 — reuses the basis the other way
        let mut child_l = l.clone();
        child_l[1] = 1.0;
        let cold_up = solve_lp(&m, &child_l, &u).unwrap();
        let warm_up = solve_lp_warm(&m, &child_l, &u, Some(&root.basis)).unwrap();
        assert!((warm_up.solution.objective - cold_up.objective).abs() < 1e-6);
    }

    #[test]
    fn stale_basis_degrades_gracefully() {
        // basis from one model shape, bounds that make it infeasible as a
        // starting point — the solver must fall back to two-phase and still
        // find the optimum
        let mut m = Model::maximize();
        let x = m.add_binary("x", 2.0);
        let y = m.add_binary("y", 3.0);
        m.add_constraint(vec![(x, 1.0), (y, 1.0)], Sense::Ge, 1.0)
            .unwrap();
        let (l, u) = bounds(&m);
        let root = solve_lp_warm(&m, &l, &u, None).unwrap();
        // fix both to zero: the Ge constraint becomes infeasible
        let zeroed = vec![0.0, 0.0];
        assert!(matches!(
            solve_lp_warm(&m, &zeroed, &zeroed, Some(&root.basis)),
            Err(IlpError::Infeasible)
        ));
        // fix x to one: still feasible; warm or cold, optimum is 5
        let fixed_l = vec![1.0, 0.0];
        let warm = solve_lp_warm(&m, &fixed_l, &u, Some(&root.basis)).unwrap();
        assert!((warm.solution.objective - 5.0).abs() < 1e-6);
    }

    #[test]
    fn warm_start_must_not_drop_live_zero_rhs_rows() {
        // regression: max 3·x0 s.t. −3·x0 − 4·x1 ≥ 0, x0 ∈ [0,1],
        // x1 ∈ [0,2]. The Ge row sits at rhs 0, so its artificial stays
        // basic at ~0 after installing the root basis in a child; freezing
        // it without re-covering the row lets phase 2 push x0 to 1 and
        // report objective 3 — infeasible. The true optimum is 0.
        let mut m = Model::maximize();
        let x0 = m.add_continuous("x0", 0.0, 1.0, 3.0).unwrap();
        let x1 = m.add_continuous("x1", 0.0, 2.0, 0.0).unwrap();
        m.add_constraint(vec![(x0, -3.0), (x1, -4.0)], Sense::Ge, 0.0)
            .unwrap();
        let (l, u) = bounds(&m);
        let root = solve_lp_warm(&m, &l, &u, None).unwrap();
        assert!(root.solution.objective.abs() < 1e-6);
        // child: fix x1 = 0
        let mut child_u = u.clone();
        child_u[x1.index()] = 0.0;
        let cold = solve_lp(&m, &l, &child_u).unwrap();
        let warm = solve_lp_warm(&m, &l, &child_u, Some(&root.basis)).unwrap();
        assert!(
            (warm.solution.objective - cold.objective).abs() < 1e-6,
            "warm {} vs cold {}",
            warm.solution.objective,
            cold.objective
        );
        assert!(
            m.is_feasible(&warm.solution.values, 1e-6),
            "warm solution violates the Ge row: {:?}",
            warm.solution.values
        );
    }

    #[test]
    fn basis_roundtrips_through_repeated_solves() {
        // warm-starting with the same bounds must keep returning the optimum
        let mut m = Model::maximize();
        let x = m.add_continuous("x", 0.0, 4.0, 3.0).unwrap();
        let y = m.add_continuous("y", 0.0, 6.0, 5.0).unwrap();
        m.add_constraint(vec![(x, 3.0), (y, 2.0)], Sense::Le, 18.0)
            .unwrap();
        let (l, u) = bounds(&m);
        let mut basis = LpBasis::default();
        for round in 0..3 {
            let warm = solve_lp_warm(&m, &l, &u, Some(&basis)).unwrap();
            assert!(
                (warm.solution.objective - 36.0).abs() < 1e-6,
                "round {round}"
            );
            basis = warm.basis;
            assert!(!basis.is_empty());
        }
    }
}
