//! Dense two-phase primal simplex with bounded variables.
//!
//! Batch-selection LPs are small (Theorem 8: `O(claims + sections)`), so a
//! dense tableau with Bland's anti-cycling rule is fast enough and — more
//! importantly for a solver that backs a branch & bound — simple enough to
//! trust. Variable bounds are handled by shifting to `[0, u−l]` and adding
//! explicit upper-bound rows.

use crate::error::IlpError;
use crate::model::{Direction, Model, Sense};
use crate::Result;

/// Relaxed LP solution.
#[derive(Debug, Clone)]
pub struct LpSolution {
    /// One value per model variable.
    pub values: Vec<f64>,
    /// Objective under the model's direction.
    pub objective: f64,
}

const TOL: f64 = 1e-9;

/// Solves the LP relaxation of `model` with overridden variable bounds
/// (`lower[i]`, `upper[i]` replace the model's bounds — branch & bound
/// tightens binaries this way). Integrality is ignored.
pub fn solve_lp(model: &Model, lower: &[f64], upper: &[f64]) -> Result<LpSolution> {
    let n = model.num_variables();
    assert_eq!(lower.len(), n, "bounds arity");
    assert_eq!(upper.len(), n, "bounds arity");
    for i in 0..n {
        if lower[i] > upper[i] + TOL {
            return Err(IlpError::Infeasible);
        }
    }
    // shifted widths; fixed variables keep width 0 and leave the tableau
    let width: Vec<f64> = (0..n).map(|i| upper[i] - lower[i]).collect();

    // objective in "minimize" convention over shifted vars
    let sign = match model.direction() {
        Direction::Minimize => 1.0,
        Direction::Maximize => -1.0,
    };
    // fixed variables (width 0) leave the tableau entirely: their column is
    // zeroed below and their objective contribution is a constant, so their
    // cost must be zeroed too or the simplex sees a phantom improving column
    let costs: Vec<f64> = model
        .variables
        .iter()
        .enumerate()
        .map(|(i, v)| {
            if width[i] <= TOL {
                0.0
            } else {
                sign * v.objective
            }
        })
        .collect();

    // rows: model constraints with rhs adjusted by lower bounds,
    // plus upper-bound rows x'_i ≤ width_i for non-fixed vars
    struct Row {
        coeffs: Vec<f64>, // length n (structural only)
        sense: Sense,
        rhs: f64,
    }
    let mut rows: Vec<Row> = Vec::with_capacity(model.num_constraints() + n);
    for c in &model.constraints {
        let mut coeffs = vec![0.0; n];
        let mut rhs = c.rhs;
        for (var, coeff) in &c.terms {
            coeffs[var.0] += *coeff;
        }
        for i in 0..n {
            rhs -= coeffs[i] * lower[i];
            if width[i] <= TOL {
                coeffs[i] = 0.0; // fixed variable contributes via rhs only
            }
        }
        rows.push(Row {
            coeffs,
            sense: c.sense,
            rhs,
        });
    }
    for i in 0..n {
        if width[i] > TOL && width[i].is_finite() {
            let mut coeffs = vec![0.0; n];
            coeffs[i] = 1.0;
            rows.push(Row {
                coeffs,
                sense: Sense::Le,
                rhs: width[i],
            });
        }
    }

    // normalize rhs ≥ 0
    for row in &mut rows {
        if row.rhs < 0.0 {
            for c in &mut row.coeffs {
                *c = -*c;
            }
            row.rhs = -row.rhs;
            row.sense = match row.sense {
                Sense::Le => Sense::Ge,
                Sense::Ge => Sense::Le,
                Sense::Eq => Sense::Eq,
            };
        }
    }

    let m = rows.len();
    // column layout: [0..n structural][n..n+m slack/surplus][artificials][rhs]
    let mut n_artificial = 0usize;
    for row in &rows {
        if !matches!(row.sense, Sense::Le) {
            n_artificial += 1;
        }
    }
    let total = n + m + n_artificial;
    let mut tableau: Vec<Vec<f64>> = Vec::with_capacity(m);
    let mut basis: Vec<usize> = Vec::with_capacity(m);
    let mut artificial_cols: Vec<usize> = Vec::with_capacity(n_artificial);
    let mut next_artificial = n + m;
    for (r, row) in rows.iter().enumerate() {
        let mut line = vec![0.0; total + 1];
        line[..n].copy_from_slice(&row.coeffs);
        line[total] = row.rhs;
        match row.sense {
            Sense::Le => {
                line[n + r] = 1.0;
                basis.push(n + r);
            }
            Sense::Ge => {
                line[n + r] = -1.0;
                line[next_artificial] = 1.0;
                basis.push(next_artificial);
                artificial_cols.push(next_artificial);
                next_artificial += 1;
            }
            Sense::Eq => {
                line[next_artificial] = 1.0;
                basis.push(next_artificial);
                artificial_cols.push(next_artificial);
                next_artificial += 1;
            }
        }
        tableau.push(line);
    }

    let max_iterations = 200 * (m + total) + 1000;

    // ---- phase 1: minimize sum of artificials ----
    if n_artificial > 0 {
        let mut phase1 = vec![0.0; total];
        for &c in &artificial_cols {
            phase1[c] = 1.0;
        }
        let value = run_simplex(&mut tableau, &mut basis, &phase1, total, max_iterations)?;
        if value > 1e-6 {
            return Err(IlpError::Infeasible);
        }
        // pivot remaining artificials out of the basis where possible
        for r in 0..m {
            if artificial_cols.contains(&basis[r]) {
                if let Some(col) = (0..n + m).find(|&c| tableau[r][c].abs() > 1e-7) {
                    pivot(&mut tableau, &mut basis, r, col, total);
                }
                // else: redundant row; harmless to leave (rhs ~ 0)
            }
        }
        // freeze artificial columns at zero
        for row in tableau.iter_mut() {
            for &c in &artificial_cols {
                row[c] = 0.0;
            }
        }
    }

    // ---- phase 2: original objective ----
    let mut phase2 = vec![0.0; total];
    phase2[..n].copy_from_slice(&costs);
    run_simplex(&mut tableau, &mut basis, &phase2, total, max_iterations)?;

    // read off shifted values
    let mut shifted = vec![0.0; n];
    for (r, &b) in basis.iter().enumerate() {
        if b < n {
            shifted[b] = tableau[r][total];
        }
    }
    let values: Vec<f64> = (0..n)
        .map(|i| lower[i] + if width[i] <= TOL { 0.0 } else { shifted[i] })
        .collect();
    let objective = model.objective_value(&values);
    Ok(LpSolution { values, objective })
}

/// Runs minimizing simplex iterations for cost vector `costs`; returns the
/// phase objective value. Bland's rule throughout (anti-cycling).
fn run_simplex(
    tableau: &mut [Vec<f64>],
    basis: &mut [usize],
    costs: &[f64],
    total: usize,
    max_iterations: usize,
) -> Result<f64> {
    let m = tableau.len();
    // reduced-cost row: z_j = costs_j − Σ_i costs_{basis_i} · a_ij
    let mut z = vec![0.0; total + 1];
    z[..total].copy_from_slice(costs);
    for r in 0..m {
        let cb = costs[basis[r]];
        if cb != 0.0 {
            for c in 0..=total {
                z[c] -= cb * tableau[r][c];
            }
        }
    }
    for _ in 0..max_iterations {
        // Bland: smallest-index column with negative reduced cost
        let Some(entering) = (0..total).find(|&c| z[c] < -TOL) else {
            return Ok(-z[total]); // phase value (z holds −obj in rhs slot)
        };
        // ratio test, Bland tie-break on basis index
        let mut leaving: Option<(usize, f64)> = None;
        for r in 0..m {
            let a = tableau[r][entering];
            if a > TOL {
                let ratio = tableau[r][total] / a;
                let better = match leaving {
                    None => true,
                    Some((lr, lratio)) => {
                        ratio < lratio - TOL || (ratio < lratio + TOL && basis[r] < basis[lr])
                    }
                };
                if better {
                    leaving = Some((r, ratio));
                }
            }
        }
        let Some((row, _)) = leaving else {
            return Err(IlpError::Unbounded);
        };
        pivot_with_z(tableau, basis, &mut z, row, entering, total);
    }
    Err(IlpError::IterationLimit)
}

fn pivot_with_z(
    tableau: &mut [Vec<f64>],
    basis: &mut [usize],
    z: &mut [f64],
    row: usize,
    col: usize,
    total: usize,
) {
    normalize_and_eliminate(tableau, basis, row, col, total);
    let factor = z[col];
    if factor != 0.0 {
        for c in 0..=total {
            z[c] -= factor * tableau[row][c];
        }
    }
}

fn pivot(tableau: &mut [Vec<f64>], basis: &mut [usize], row: usize, col: usize, total: usize) {
    normalize_and_eliminate(tableau, basis, row, col, total);
}

fn normalize_and_eliminate(
    tableau: &mut [Vec<f64>],
    basis: &mut [usize],
    row: usize,
    col: usize,
    total: usize,
) {
    let pivot_value = tableau[row][col];
    debug_assert!(pivot_value.abs() > 1e-12, "zero pivot");
    for cell in tableau[row].iter_mut().take(total + 1) {
        *cell /= pivot_value;
    }
    let pivot_row = tableau[row].clone();
    for (r, line) in tableau.iter_mut().enumerate() {
        if r == row {
            continue;
        }
        let factor = line[col];
        if factor != 0.0 {
            for c in 0..=total {
                line[c] -= factor * pivot_row[c];
            }
        }
    }
    basis[row] = col;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Model;

    fn bounds(model: &Model) -> (Vec<f64>, Vec<f64>) {
        (
            model.variables.iter().map(|v| v.lower).collect(),
            model.variables.iter().map(|v| v.upper).collect(),
        )
    }

    #[test]
    fn textbook_maximization() {
        // max 3x + 5y s.t. x ≤ 4, 2y ≤ 12, 3x + 2y ≤ 18 → (2, 6), obj 36
        let mut m = Model::maximize();
        let x = m.add_continuous("x", 0.0, f64::INFINITY, 3.0).unwrap();
        let y = m.add_continuous("y", 0.0, f64::INFINITY, 5.0).unwrap();
        m.add_constraint(vec![(x, 1.0)], Sense::Le, 4.0).unwrap();
        m.add_constraint(vec![(y, 2.0)], Sense::Le, 12.0).unwrap();
        m.add_constraint(vec![(x, 3.0), (y, 2.0)], Sense::Le, 18.0)
            .unwrap();
        let (l, u) = bounds(&m);
        let sol = solve_lp(&m, &l, &u).unwrap();
        assert!((sol.objective - 36.0).abs() < 1e-6);
        assert!((sol.values[x.index()] - 2.0).abs() < 1e-6);
        assert!((sol.values[y.index()] - 6.0).abs() < 1e-6);
    }

    #[test]
    fn minimization_with_ge() {
        // min 2x + 3y s.t. x + y ≥ 10, x ≥ 2 → (8, 2)? obj: prefer x (cost 2):
        // x=10,y=0 gives 20; constraint x≥2 already holds → obj 20
        let mut m = Model::minimize();
        let x = m.add_continuous("x", 0.0, f64::INFINITY, 2.0).unwrap();
        let y = m.add_continuous("y", 0.0, f64::INFINITY, 3.0).unwrap();
        m.add_constraint(vec![(x, 1.0), (y, 1.0)], Sense::Ge, 10.0)
            .unwrap();
        m.add_constraint(vec![(x, 1.0)], Sense::Ge, 2.0).unwrap();
        let (l, u) = bounds(&m);
        let sol = solve_lp(&m, &l, &u).unwrap();
        assert!((sol.objective - 20.0).abs() < 1e-6);
        assert!((sol.values[x.index()] - 10.0).abs() < 1e-6);
    }

    #[test]
    fn equality_constraints() {
        // max x + y s.t. x + y = 5, x − y = 1 → (3, 2), obj 5
        let mut m = Model::maximize();
        let x = m.add_continuous("x", 0.0, f64::INFINITY, 1.0).unwrap();
        let y = m.add_continuous("y", 0.0, f64::INFINITY, 1.0).unwrap();
        m.add_constraint(vec![(x, 1.0), (y, 1.0)], Sense::Eq, 5.0)
            .unwrap();
        m.add_constraint(vec![(x, 1.0), (y, -1.0)], Sense::Eq, 1.0)
            .unwrap();
        let (l, u) = bounds(&m);
        let sol = solve_lp(&m, &l, &u).unwrap();
        assert!((sol.objective - 5.0).abs() < 1e-6);
        assert!((sol.values[x.index()] - 3.0).abs() < 1e-6);
        assert!((sol.values[y.index()] - 2.0).abs() < 1e-6);
    }

    #[test]
    fn infeasible_detected() {
        let mut m = Model::maximize();
        let x = m.add_continuous("x", 0.0, 1.0, 1.0).unwrap();
        m.add_constraint(vec![(x, 1.0)], Sense::Ge, 5.0).unwrap();
        let (l, u) = bounds(&m);
        assert!(matches!(solve_lp(&m, &l, &u), Err(IlpError::Infeasible)));
    }

    #[test]
    fn unbounded_detected() {
        let mut m = Model::maximize();
        let _x = m.add_continuous("x", 0.0, f64::INFINITY, 1.0).unwrap();
        let (l, u) = bounds(&m);
        assert!(matches!(solve_lp(&m, &l, &u), Err(IlpError::Unbounded)));
    }

    #[test]
    fn variable_bounds_respected() {
        // max x + y with x ∈ [1, 3], y ∈ [0, 2], x + y ≤ 4 → (3, 1) or (2, 2): obj 4... wait
        // optimum 4 tight on constraint; but y ≤ 2 and x ≤ 3; obj = 4.
        let mut m = Model::maximize();
        let x = m.add_continuous("x", 1.0, 3.0, 1.0).unwrap();
        let y = m.add_continuous("y", 0.0, 2.0, 1.0).unwrap();
        m.add_constraint(vec![(x, 1.0), (y, 1.0)], Sense::Le, 4.0)
            .unwrap();
        let (l, u) = bounds(&m);
        let sol = solve_lp(&m, &l, &u).unwrap();
        assert!((sol.objective - 4.0).abs() < 1e-6);
        assert!(sol.values[x.index()] >= 1.0 - 1e-9);
        assert!(sol.values[y.index()] <= 2.0 + 1e-9);
    }

    #[test]
    fn fixed_variables_substituted() {
        // y fixed at 2 by bounds; max x s.t. x + y ≤ 5 → x = 3
        let mut m = Model::maximize();
        let x = m.add_continuous("x", 0.0, f64::INFINITY, 1.0).unwrap();
        let y = m.add_continuous("y", 2.0, 2.0, 0.0).unwrap();
        m.add_constraint(vec![(x, 1.0), (y, 1.0)], Sense::Le, 5.0)
            .unwrap();
        let (l, u) = bounds(&m);
        let sol = solve_lp(&m, &l, &u).unwrap();
        assert!((sol.values[x.index()] - 3.0).abs() < 1e-6);
        assert!((sol.values[y.index()] - 2.0).abs() < 1e-9);
    }

    #[test]
    fn negative_lower_bounds() {
        // min x with x ∈ [−5, 5], x ≥ −3 → x = −3
        let mut m = Model::minimize();
        let x = m.add_continuous("x", -5.0, 5.0, 1.0).unwrap();
        m.add_constraint(vec![(x, 1.0)], Sense::Ge, -3.0).unwrap();
        let (l, u) = bounds(&m);
        let sol = solve_lp(&m, &l, &u).unwrap();
        assert!((sol.values[x.index()] + 3.0).abs() < 1e-6);
    }

    #[test]
    fn binary_relaxation_is_fractional() {
        // max x + y s.t. x + y ≤ 1.5 with binaries → LP optimum 1.5
        let mut m = Model::maximize();
        let x = m.add_binary("x", 1.0);
        let y = m.add_binary("y", 1.0);
        m.add_constraint(vec![(x, 1.0), (y, 1.0)], Sense::Le, 1.5)
            .unwrap();
        let (l, u) = bounds(&m);
        let sol = solve_lp(&m, &l, &u).unwrap();
        assert!((sol.objective - 1.5).abs() < 1e-6);
    }

    #[test]
    fn degenerate_lp_terminates() {
        // multiple redundant constraints through the same vertex
        let mut m = Model::maximize();
        let x = m.add_continuous("x", 0.0, f64::INFINITY, 1.0).unwrap();
        let y = m.add_continuous("y", 0.0, f64::INFINITY, 1.0).unwrap();
        for rhs in [2.0, 2.0, 2.0] {
            m.add_constraint(vec![(x, 1.0), (y, 1.0)], Sense::Le, rhs)
                .unwrap();
        }
        m.add_constraint(vec![(x, 1.0)], Sense::Le, 2.0).unwrap();
        m.add_constraint(vec![(y, 1.0)], Sense::Le, 2.0).unwrap();
        let (l, u) = bounds(&m);
        let sol = solve_lp(&m, &l, &u).unwrap();
        assert!((sol.objective - 2.0).abs() < 1e-6);
    }
}
