//! LP-relaxation rounding: a primal heuristic that turns the (fractional)
//! root relaxation into a feasible integral incumbent.
//!
//! Branch & bound prunes with `node bound ≤ incumbent + gap`; without an
//! incumbent nothing prunes until the search stumbles on an integral vertex.
//! Definition-9 instances are knapsack-like — their LP optima set most
//! binaries to clean 0/1 and leave only a few fractional — so rounding the
//! relaxation almost always yields a feasible point within a fraction of a
//! percent of the optimum, and seeding it lets the gap test cut the tree at
//! the root.

use crate::model::{Direction, Model, Solution, SolveStatus};
use crate::simplex::LpSolution;

/// Builds a feasible integral incumbent from an LP relaxation, or `None`
/// when no rounding attempt satisfies the constraints.
///
/// Two families of candidates are tried, keeping the best feasible one:
///
/// 1. nearest rounding of every binary;
/// 2. every prefix of the binaries ordered by fractional LP value (ties by
///    index): the top-`k` set to one, the rest to zero, for all `k`.
///
/// Continuous variables keep their relaxed values throughout. The returned
/// solution carries [`SolveStatus::Feasible`] — it is an incumbent, not a
/// proven optimum.
pub fn round_to_incumbent(model: &Model, relaxed: &LpSolution) -> Option<Solution> {
    let binaries: Vec<usize> = model.binary_vars().iter().map(|v| v.index()).collect();
    if binaries.is_empty() {
        return None;
    }
    let sign = match model.direction() {
        Direction::Maximize => 1.0,
        Direction::Minimize => -1.0,
    };

    let mut best: Option<(f64, Vec<f64>)> = None;
    let mut consider = |values: Vec<f64>| {
        if !model.is_feasible(&values, 1e-6) {
            return;
        }
        let objective = model.objective_value(&values);
        let keyed = sign * objective;
        if best.as_ref().is_none_or(|(b, _)| keyed > *b) {
            best = Some((keyed, values));
        }
    };

    // candidate 1: nearest rounding
    let mut nearest = relaxed.values.clone();
    for &i in &binaries {
        nearest[i] = nearest[i].round();
    }
    consider(nearest);

    // candidate 2: LP-value-ordered prefixes
    let mut ordered = binaries.clone();
    ordered.sort_by(|&a, &b| {
        relaxed.values[b]
            .total_cmp(&relaxed.values[a])
            .then(a.cmp(&b))
    });
    let mut values = relaxed.values.clone();
    for &i in &binaries {
        values[i] = 0.0;
    }
    consider(values.clone());
    for &i in &ordered {
        values[i] = 1.0;
        consider(values.clone());
    }

    best.map(|(_, values)| {
        let objective = model.objective_value(&values);
        Solution {
            values,
            objective,
            status: SolveStatus::Feasible,
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Sense;
    use crate::simplex::solve_lp;

    fn model_bounds(m: &Model) -> (Vec<f64>, Vec<f64>) {
        (
            m.variables.iter().map(|v| v.lower).collect(),
            m.variables.iter().map(|v| v.upper).collect(),
        )
    }

    #[test]
    fn rounds_knapsack_relaxation_to_feasible_incumbent() {
        // max 10a + 13b + 7c s.t. 3a + 4b + 2c ≤ 6 — optimum 20 (b + c)
        let mut m = Model::maximize();
        let a = m.add_binary("a", 10.0);
        let b = m.add_binary("b", 13.0);
        let c = m.add_binary("c", 7.0);
        m.add_constraint(vec![(a, 3.0), (b, 4.0), (c, 2.0)], Sense::Le, 6.0)
            .unwrap();
        let (l, u) = model_bounds(&m);
        let relaxed = solve_lp(&m, &l, &u).unwrap();
        let incumbent = round_to_incumbent(&m, &relaxed).expect("feasible rounding");
        assert!(m.is_feasible(&incumbent.values, 1e-6));
        assert!(incumbent.objective >= 13.0, "at least one good item packed");
        assert_eq!(incumbent.status, SolveStatus::Feasible);
    }

    #[test]
    fn respects_coverage_constraints() {
        // Definition-9 shape: section var must cover its claims
        let mut m = Model::maximize();
        let c0 = m.add_binary("c0", 5.0);
        let c1 = m.add_binary("c1", 3.0);
        let s = m.add_binary("s", 0.0);
        for &c in &[c0, c1] {
            m.add_constraint(vec![(s, 1.0), (c, -1.0)], Sense::Ge, 0.0)
                .unwrap();
        }
        // budget: c0 + c1 + 2s ≤ 3 → both claims + section fit exactly
        m.add_constraint(vec![(c0, 1.0), (c1, 1.0), (s, 2.0)], Sense::Le, 4.0)
            .unwrap();
        let (l, u) = model_bounds(&m);
        let relaxed = solve_lp(&m, &l, &u).unwrap();
        let incumbent = round_to_incumbent(&m, &relaxed).expect("feasible rounding");
        assert!(m.is_feasible(&incumbent.values, 1e-6));
        // selecting any claim forces the section variable on
        if incumbent.values[c0.index()] > 0.5 || incumbent.values[c1.index()] > 0.5 {
            assert!(incumbent.values[s.index()] > 0.5);
        }
    }

    #[test]
    fn infeasible_roundings_return_none() {
        // x + y = 1 with a relaxation at (0.5, 0.5): prefixes give (0,0),
        // (1,0)/(0,1), (1,1); equality admits exactly-one — still feasible,
        // so force infeasibility with an unsatisfiable pair instead
        let mut m = Model::maximize();
        let x = m.add_binary("x", 1.0);
        m.add_constraint(vec![(x, 2.0)], Sense::Eq, 1.0).unwrap();
        let relaxed = LpSolution {
            values: vec![0.5],
            objective: 0.5,
        };
        assert!(round_to_incumbent(&m, &relaxed).is_none());
    }
}
