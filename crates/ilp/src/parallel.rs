//! Parallel best-first branch & bound over a work-stealing node pool.
//!
//! The serial solver in [`crate::branch`] explores one node at a time and
//! re-solves every LP from scratch. This module scales the same search
//! three ways:
//!
//! * **work stealing** — each worker owns a best-first node heap; idle
//!   workers steal half of the richest victim's nodes, so the frontier
//!   spreads without a global lock on the hot path;
//! * **shared atomic incumbent** — the best integral value is published as
//!   atomic `f64` bits, so bound pruning reads it without locking; the full
//!   solution vector lives behind a mutex touched only on improvement;
//! * **LP warm starts** — every child node carries its parent's optimal
//!   [`LpBasis`] and re-installs it, repairing the usual primal
//!   infeasibility (the fixed branching variable) with dual simplex pivots
//!   instead of re-running phase 1 from scratch;
//! * **incumbent seeding** — the root relaxation is rounded
//!   ([`crate::heuristic::round_to_incumbent`]) into a feasible incumbent
//!   before the search starts, so the gap test prunes from node one.
//!
//! **Determinism:** with a (near-)zero gap, a run that terminates by
//! optimality returns the same objective regardless of thread count or
//! scheduling (pruning then only discards nodes that cannot improve the
//! incumbent), and incumbent ties are broken lexicographically. With a
//! nonzero gap the objective is guaranteed within the gap of optimal but
//! may vary inside it (gap pruning discards nodes another schedule would
//! have explored first), and runs cut off by the node limit return
//! schedule-dependent incumbents — exactly like the serial solver's
//! budget-exhaustion path. Seeded hints are a floor in every mode: the
//! result never drops below a feasible hint.

use crate::error::IlpError;
use crate::heuristic::round_to_incumbent;
use crate::model::{Direction, Model, Solution, SolveStatus};
use crate::simplex::{solve_lp_warm, LpBasis};
use crate::Result;
use std::cmp::Ordering as CmpOrdering;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::Duration;

/// Configuration of the parallel solver.
#[derive(Debug, Clone, Copy)]
pub struct ParallelConfig {
    /// Worker threads; `0` uses the machine's available parallelism.
    pub threads: usize,
    /// Maximum number of explored nodes before giving up with the incumbent.
    pub node_limit: usize,
    /// Relative optimality gap at which a node is pruned against the
    /// incumbent (also the early-termination gap).
    pub gap: f64,
    /// Integrality tolerance.
    pub int_tol: f64,
    /// Round the root relaxation into a seed incumbent before searching.
    pub seed_heuristic: bool,
}

impl Default for ParallelConfig {
    fn default() -> Self {
        ParallelConfig {
            threads: 0,
            node_limit: 20_000,
            gap: 1e-6,
            int_tol: 1e-6,
            seed_heuristic: true,
        }
    }
}

/// Counters describing one parallel solve, surfaced up to the planner and
/// the engine's metrics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SolveStats {
    /// Nodes popped and processed (the serial solver's `explored`).
    pub nodes_explored: usize,
    /// LP relaxations solved.
    pub lp_solves: usize,
    /// LP solves that reused a parent basis and skipped phase 1.
    pub warm_start_hits: usize,
    /// Whether the rounding heuristic produced the seed incumbent.
    pub heuristic_seeded: bool,
    /// Worker threads used.
    pub threads_used: usize,
    /// Whether the node budget ran out (the solution is the best incumbent,
    /// not a proven optimum).
    pub node_limit_hit: bool,
}

/// A completed parallel solve: the solution plus its search counters.
#[derive(Debug, Clone)]
pub struct ParallelSolve {
    /// The optimal (or, under a nonzero gap, gap-optimal) solution.
    pub solution: Solution,
    /// Search counters.
    pub stats: SolveStats,
}

struct Node {
    /// LP bound of this node (maximize convention).
    bound: f64,
    lower: Vec<f64>,
    upper: Vec<f64>,
    /// Parent's optimal basis, installed to warm-start this node's LP.
    basis: LpBasis,
}

impl PartialEq for Node {
    fn eq(&self, other: &Self) -> bool {
        self.bound == other.bound
    }
}
impl Eq for Node {}
impl PartialOrd for Node {
    fn partial_cmp(&self, other: &Self) -> Option<CmpOrdering> {
        Some(self.cmp(other))
    }
}
impl Ord for Node {
    fn cmp(&self, other: &Self) -> CmpOrdering {
        // best-first: larger bound explored first
        self.bound.total_cmp(&other.bound)
    }
}

struct Incumbent {
    /// Best value in maximize convention; −∞ when none.
    value: f64,
    solution: Option<Solution>,
}

struct Shared<'m> {
    model: &'m Model,
    binaries: Vec<usize>,
    sign: f64,
    config: ParallelConfig,
    queues: Vec<Mutex<BinaryHeap<Node>>>,
    /// Nodes queued or currently being processed; 0 means the search is done.
    pending: AtomicUsize,
    sleep_lock: Mutex<()>,
    wakeup: Condvar,
    incumbent: Mutex<Incumbent>,
    /// `f64::to_bits` of the incumbent value, for lock-free bound pruning.
    incumbent_bits: AtomicU64,
    explored: AtomicUsize,
    lp_solves: AtomicUsize,
    warm_hits: AtomicUsize,
    stop: AtomicBool,
    node_limit_hit: AtomicBool,
    hard_error: Mutex<Option<IlpError>>,
}

impl Shared<'_> {
    fn incumbent_value(&self) -> f64 {
        f64::from_bits(self.incumbent_bits.load(Ordering::Acquire))
    }

    /// Publishes a candidate incumbent; ties (within 1e-12) are broken
    /// toward the lexicographically smaller value vector so full solves
    /// stay deterministic across schedules.
    fn offer_incumbent(&self, values: Vec<f64>) {
        let objective = self.model.objective_value(&values);
        let value = self.sign * objective;
        let mut incumbent = self.incumbent.lock().expect("incumbent poisoned");
        let better = value > incumbent.value + 1e-12
            || ((value - incumbent.value).abs() <= 1e-12
                && incumbent
                    .solution
                    .as_ref()
                    .is_none_or(|s| lexicographically_less(&values, &s.values)));
        if better {
            incumbent.value = value;
            incumbent.solution = Some(Solution {
                values,
                objective,
                status: SolveStatus::Optimal,
            });
            self.incumbent_bits
                .store(value.to_bits(), Ordering::Release);
        }
    }

    /// Whether a node at `bound` can still beat the incumbent by more than
    /// the configured gap.
    fn improves(&self, bound: f64) -> bool {
        let value = self.incumbent_value();
        if value == f64::NEG_INFINITY {
            return true;
        }
        bound > value + self.config.gap * value.abs().max(1.0) - 1e-12
    }
}

fn lexicographically_less(a: &[f64], b: &[f64]) -> bool {
    for (x, y) in a.iter().zip(b) {
        match x.total_cmp(y) {
            CmpOrdering::Less => return true,
            CmpOrdering::Greater => return false,
            CmpOrdering::Equal => {}
        }
    }
    false
}

/// Solves a model whose integer variables are all binary, in parallel.
///
/// `hints` seed the incumbent with known feasible assignments (e.g. the
/// greedy heuristic's answer, or the previous planning round's solution) —
/// infeasible hints are ignored, and the returned objective can only
/// improve on a feasible hint. When the node budget runs out *with* an
/// incumbent, the incumbent is returned as a [`SolveStatus::Feasible`]
/// solution with [`SolveStats::node_limit_hit`] set (unlike
/// [`crate::branch::solve_ilp`], which wraps it in an error — the parallel
/// caller wants the counters either way); exhaustion with no incumbent is
/// [`IlpError::NodeLimit`]`(None)`.
pub fn solve_ilp_parallel(
    model: &Model,
    config: ParallelConfig,
    hints: &[&[f64]],
) -> Result<ParallelSolve> {
    let threads = if config.threads == 0 {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    } else {
        config.threads
    }
    .max(1)
    // a search capped at N nodes can never keep more than N workers busy —
    // don't spawn a many-core fleet to explore a 12-node planning tree
    .min(config.node_limit.max(1));
    let binaries: Vec<usize> = model.binary_vars().iter().map(|v| v.index()).collect();
    let sign = match model.direction() {
        Direction::Maximize => 1.0,
        Direction::Minimize => -1.0,
    };

    let root_lower: Vec<f64> = model.variables.iter().map(|v| v.lower).collect();
    let root_upper: Vec<f64> = model.variables.iter().map(|v| v.upper).collect();
    let root = solve_lp_warm(model, &root_lower, &root_upper, None)?;

    let shared = Shared {
        model,
        binaries,
        sign,
        config,
        queues: (0..threads)
            .map(|_| Mutex::new(BinaryHeap::new()))
            .collect(),
        pending: AtomicUsize::new(0),
        sleep_lock: Mutex::new(()),
        wakeup: Condvar::new(),
        incumbent: Mutex::new(Incumbent {
            value: f64::NEG_INFINITY,
            solution: None,
        }),
        incumbent_bits: AtomicU64::new(f64::NEG_INFINITY.to_bits()),
        explored: AtomicUsize::new(0),
        lp_solves: AtomicUsize::new(1),
        warm_hits: AtomicUsize::new(0),
        stop: AtomicBool::new(false),
        node_limit_hit: AtomicBool::new(false),
        hard_error: Mutex::new(None),
    };

    // seed incumbents: caller hints first, then the rounding heuristic
    for &values in hints {
        if values.len() == model.num_variables() && model.is_feasible(values, 1e-6) {
            shared.offer_incumbent(values.to_vec());
        }
    }
    let mut heuristic_seeded = false;
    if config.seed_heuristic {
        if let Some(seed) = round_to_incumbent(model, &root.solution) {
            heuristic_seeded = true;
            shared.offer_incumbent(seed.values);
        }
    }

    // root handled inline: integral roots never spawn a worker
    let root_bound = sign * root.solution.objective;
    let fractional = most_fractional(&shared.binaries, &root.solution.values, config.int_tol);
    match fractional {
        None => {
            let mut values = root.solution.values.clone();
            for &i in &shared.binaries {
                values[i] = values[i].round();
            }
            if model.is_feasible(&values, 1e-6) {
                shared.offer_incumbent(values);
            }
        }
        Some(var) => {
            if shared.improves(root_bound) {
                shared.explored.fetch_add(1, Ordering::Relaxed);
                let mut queue = shared.queues[0].lock().expect("queue poisoned");
                push_children(
                    &mut queue,
                    &shared.pending,
                    var,
                    root_bound,
                    &root_lower,
                    &root_upper,
                    &root.basis,
                );
            }
        }
    }

    if shared.pending.load(Ordering::Acquire) > 0 {
        if threads == 1 {
            worker(&shared, 0);
        } else {
            std::thread::scope(|scope| {
                for me in 0..threads {
                    let shared = &shared;
                    scope.spawn(move || worker(shared, me));
                }
            });
        }
    }

    if let Some(error) = shared
        .hard_error
        .lock()
        .expect("hard error slot poisoned")
        .take()
    {
        return Err(error);
    }
    let incumbent = shared
        .incumbent
        .lock()
        .expect("incumbent poisoned")
        .solution
        .take();
    let node_limit_hit = shared.node_limit_hit.load(Ordering::Acquire);
    let mut solution = match incumbent {
        Some(solution) => solution,
        None if node_limit_hit => return Err(IlpError::NodeLimit(None)),
        None => return Err(IlpError::Infeasible),
    };
    if node_limit_hit {
        solution.status = SolveStatus::Feasible;
    }
    let stats = SolveStats {
        nodes_explored: shared.explored.load(Ordering::Relaxed),
        lp_solves: shared.lp_solves.load(Ordering::Relaxed),
        warm_start_hits: shared.warm_hits.load(Ordering::Relaxed),
        heuristic_seeded,
        threads_used: threads,
        node_limit_hit,
    };
    Ok(ParallelSolve { solution, stats })
}

fn most_fractional(binaries: &[usize], values: &[f64], int_tol: f64) -> Option<usize> {
    binaries
        .iter()
        .copied()
        .map(|i| (i, (values[i] - values[i].round()).abs()))
        .filter(|(_, f)| *f > int_tol)
        .max_by(|a, b| a.1.total_cmp(&b.1))
        .map(|(i, _)| i)
}

#[allow(clippy::too_many_arguments)]
fn push_children(
    queue: &mut BinaryHeap<Node>,
    pending: &AtomicUsize,
    var: usize,
    bound: f64,
    lower: &[f64],
    upper: &[f64],
    basis: &LpBasis,
) {
    let mut down_upper = upper.to_vec();
    down_upper[var] = 0.0;
    queue.push(Node {
        bound,
        lower: lower.to_vec(),
        upper: down_upper,
        basis: basis.clone(),
    });
    let mut up_lower = lower.to_vec();
    up_lower[var] = 1.0;
    queue.push(Node {
        bound,
        lower: up_lower,
        upper: upper.to_vec(),
        basis: basis.clone(),
    });
    pending.fetch_add(2, Ordering::AcqRel);
}

fn worker(shared: &Shared<'_>, me: usize) {
    loop {
        if shared.stop.load(Ordering::Acquire) {
            return;
        }
        let Some(node) = pop_or_steal(shared, me) else {
            if shared.pending.load(Ordering::Acquire) == 0 {
                shared.wakeup.notify_all();
                return;
            }
            let guard = shared.sleep_lock.lock().expect("sleep lock poisoned");
            // re-check under the lock, then nap until work or completion
            if shared.pending.load(Ordering::Acquire) == 0 || shared.stop.load(Ordering::Acquire) {
                continue;
            }
            let _ = shared
                .wakeup
                .wait_timeout(guard, Duration::from_micros(200))
                .expect("sleep lock poisoned");
            continue;
        };
        process(shared, me, node);
        if shared.pending.fetch_sub(1, Ordering::AcqRel) == 1 {
            shared.wakeup.notify_all();
        }
    }
}

/// Pops the best node from the worker's own heap, or steals roughly half of
/// the richest victim's nodes.
fn pop_or_steal(shared: &Shared<'_>, me: usize) -> Option<Node> {
    if let Some(node) = shared.queues[me].lock().expect("queue poisoned").pop() {
        return Some(node);
    }
    let n = shared.queues.len();
    for offset in 1..n {
        let victim = (me + offset) % n;
        let mut stolen: Vec<Node> = Vec::new();
        {
            let mut queue = shared.queues[victim].lock().expect("queue poisoned");
            let take = queue.len().div_ceil(2);
            for _ in 0..take {
                if let Some(node) = queue.pop() {
                    stolen.push(node);
                }
            }
        }
        if stolen.is_empty() {
            continue;
        }
        let best = stolen.remove(0);
        if !stolen.is_empty() {
            let mut own = shared.queues[me].lock().expect("queue poisoned");
            for node in stolen {
                own.push(node);
            }
            shared.wakeup.notify_all();
        }
        return Some(best);
    }
    None
}

fn process(shared: &Shared<'_>, me: usize, node: Node) {
    // bound pruning against the shared incumbent (lock-free read)
    if !shared.improves(node.bound) {
        return;
    }
    let explored = shared.explored.fetch_add(1, Ordering::AcqRel) + 1;
    if explored > shared.config.node_limit {
        shared.node_limit_hit.store(true, Ordering::Release);
        shared.stop.store(true, Ordering::Release);
        shared.wakeup.notify_all();
        return;
    }
    let warm = if node.basis.is_empty() {
        None
    } else {
        Some(&node.basis)
    };
    shared.lp_solves.fetch_add(1, Ordering::Relaxed);
    let relaxed = match solve_lp_warm(shared.model, &node.lower, &node.upper, warm) {
        Ok(warm_lp) => {
            if warm_lp.warm_start_used {
                shared.warm_hits.fetch_add(1, Ordering::Relaxed);
            }
            warm_lp
        }
        Err(IlpError::Infeasible) => return,
        Err(error) => {
            let mut slot = shared.hard_error.lock().expect("hard error slot poisoned");
            slot.get_or_insert(error);
            shared.stop.store(true, Ordering::Release);
            shared.wakeup.notify_all();
            return;
        }
    };
    let bound = shared.sign * relaxed.solution.objective;
    if !shared.improves(bound) {
        return;
    }
    match most_fractional(
        &shared.binaries,
        &relaxed.solution.values,
        shared.config.int_tol,
    ) {
        None => {
            let mut values = relaxed.solution.values.clone();
            for &i in &shared.binaries {
                values[i] = values[i].round();
            }
            if shared.model.is_feasible(&values, 1e-6) {
                shared.offer_incumbent(values);
            }
        }
        Some(var) => {
            let mut queue = shared.queues[me].lock().expect("queue poisoned");
            push_children(
                &mut queue,
                &shared.pending,
                var,
                bound,
                &node.lower,
                &node.upper,
                &relaxed.basis,
            );
            drop(queue);
            shared.wakeup.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::branch::{solve_ilp, BranchConfig};
    use crate::model::Sense;

    fn config(threads: usize) -> ParallelConfig {
        ParallelConfig {
            threads,
            ..Default::default()
        }
    }

    #[test]
    fn matches_serial_on_knapsack() {
        let mut m = Model::maximize();
        let a = m.add_binary("a", 10.0);
        let b = m.add_binary("b", 13.0);
        let c = m.add_binary("c", 7.0);
        m.add_constraint(vec![(a, 3.0), (b, 4.0), (c, 2.0)], Sense::Le, 6.0)
            .unwrap();
        let serial = solve_ilp(&m, BranchConfig::default()).unwrap();
        for threads in [1, 2, 4] {
            let parallel = solve_ilp_parallel(&m, config(threads), &[]).unwrap();
            assert!(
                (parallel.solution.objective - serial.objective).abs() < 1e-6,
                "{threads} threads: {} vs {}",
                parallel.solution.objective,
                serial.objective
            );
            assert_eq!(parallel.stats.threads_used, threads);
        }
    }

    #[test]
    fn matches_serial_on_minimization() {
        let mut m = Model::minimize();
        let x = m.add_binary("x", 1.0);
        let y = m.add_binary("y", 2.0);
        m.add_constraint(vec![(x, 1.0), (y, 1.0)], Sense::Ge, 1.0)
            .unwrap();
        let parallel = solve_ilp_parallel(&m, config(2), &[]).unwrap();
        assert!((parallel.solution.objective - 1.0).abs() < 1e-6);
        assert!(parallel.solution.is_set(x) && !parallel.solution.is_set(y));
    }

    #[test]
    fn infeasible_detected() {
        let mut m = Model::maximize();
        let x = m.add_binary("x", 1.0);
        m.add_constraint(vec![(x, 1.0)], Sense::Ge, 2.0).unwrap();
        assert!(matches!(
            solve_ilp_parallel(&m, config(2), &[]),
            Err(IlpError::Infeasible)
        ));
    }

    #[test]
    fn node_limit_returns_incumbent() {
        // symmetric optima with a tiny node budget and no heuristic seeding
        // (the heuristic would otherwise solve it at the root)
        let mut m = Model::maximize();
        let vars: Vec<_> = (0..12)
            .map(|i| m.add_binary(format!("x{i}"), 1.0 + (i as f64) * 1e-7))
            .collect();
        let terms: Vec<_> = vars.iter().map(|&v| (v, 1.0)).collect();
        m.add_constraint(terms, Sense::Le, 6.5).unwrap();
        let tight = ParallelConfig {
            threads: 2,
            node_limit: 1,
            seed_heuristic: false,
            ..Default::default()
        };
        match solve_ilp_parallel(&m, tight, &[]) {
            Err(IlpError::NodeLimit(None)) => {}
            Ok(solve) => {
                assert!(solve.solution.objective <= 6.5 + 1e-9);
                if solve.stats.node_limit_hit {
                    assert_eq!(solve.solution.status, SolveStatus::Feasible);
                }
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn hint_seeds_incumbent() {
        let mut m = Model::maximize();
        let a = m.add_binary("a", 2.0);
        let b = m.add_binary("b", 3.0);
        m.add_constraint(vec![(a, 1.0), (b, 1.0)], Sense::Le, 1.0)
            .unwrap();
        // feasible hint: take `a` (suboptimal); solver must still find `b`
        let hint = [1.0, 0.0];
        let solve = solve_ilp_parallel(&m, config(2), &[&hint]).unwrap();
        assert!((solve.solution.objective - 3.0).abs() < 1e-6);
        // infeasible hint is ignored, not propagated
        let bad_hint = [1.0, 1.0];
        let solve = solve_ilp_parallel(&m, config(1), &[&bad_hint]).unwrap();
        assert!((solve.solution.objective - 3.0).abs() < 1e-6);
    }

    #[test]
    fn stats_report_search_effort() {
        // a model that forces branching
        let mut m = Model::maximize();
        let vars: Vec<_> = (0..10)
            .map(|i| m.add_binary(format!("x{i}"), 3.0 + ((i * 5) % 7) as f64))
            .collect();
        let terms: Vec<_> = vars
            .iter()
            .enumerate()
            .map(|(i, &v)| (v, 2.0 + ((i * 3) % 5) as f64))
            .collect();
        m.add_constraint(terms, Sense::Le, 11.0).unwrap();
        let solve = solve_ilp_parallel(&m, config(2), &[]).unwrap();
        assert!(solve.stats.lp_solves >= 1);
        assert!(solve.stats.heuristic_seeded);
        // warm starts only happen once children are explored
        if solve.stats.nodes_explored > 1 {
            assert!(solve.stats.warm_start_hits > 0, "{:?}", solve.stats);
        }
    }

    #[test]
    fn mixed_continuous_and_binary() {
        let mut m = Model::maximize();
        let x = m.add_binary("x", 2.0);
        let y = m.add_continuous("y", 0.0, 3.5, 1.0).unwrap();
        m.add_constraint(vec![(x, 1.0), (y, 1.0)], Sense::Le, 4.0)
            .unwrap();
        let solve = solve_ilp_parallel(&m, config(2), &[]).unwrap();
        assert!((solve.solution.objective - 5.0).abs() < 1e-6);
        assert!(solve.solution.is_set(x));
        assert!((solve.solution.value(y) - 3.0).abs() < 1e-6);
    }
}
