//! # scrutinizer-ilp
//!
//! A small exact optimization stack replacing the Gurobi dependency of the
//! paper's claim-ordering component (§5.2):
//!
//! * [`model`] — a Gurobi-like model builder: variables (continuous or
//!   binary), linear constraints, minimize/maximize objective;
//! * [`simplex`] — dense two-phase primal simplex for the LP relaxation,
//!   with optional basis warm-starting ([`simplex::solve_lp_warm`]);
//! * [`branch`] — serial best-first branch & bound over the binary
//!   variables, with node and gap limits (kept as the reference solver and
//!   ablation baseline);
//! * [`parallel`] — the scalable solver: work-stealing parallel branch &
//!   bound with a shared atomic incumbent, per-node LP warm starts, and
//!   [`heuristic`] incumbent seeding, reporting [`SolveStats`] counters;
//! * [`heuristic`] — LP-relaxation rounding that turns the root relaxation
//!   into a feasible incumbent so the gap test prunes early;
//! * [`knapsack`] — dynamic-programming 0/1 knapsack, used both as a fast
//!   path for batch-selection instances that degenerate to knapsack
//!   (Theorem 7's reduction) and as an independent cross-check in tests.
//!
//! The batch-selection ILPs are small — `O(claims + sections)` variables and
//! constraints (Theorem 8) — but the mixed-initiative loop re-solves one
//! after *every* retrain over thousands of claims, so the solver is built to
//! be re-entered cheaply rather than merely to finish once.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod branch;
pub mod error;
pub mod heuristic;
pub mod knapsack;
pub mod model;
pub mod parallel;
pub mod simplex;

pub use branch::{solve_ilp, BranchConfig};
pub use error::IlpError;
pub use knapsack::knapsack_01;
pub use model::{Constraint, Model, Sense, Solution, SolveStatus, VarId, VarKind};
pub use parallel::{solve_ilp_parallel, ParallelConfig, ParallelSolve, SolveStats};

/// Result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, IlpError>;
