//! # scrutinizer-ilp
//!
//! A small exact optimization stack replacing the Gurobi dependency of the
//! paper's claim-ordering component (§5.2):
//!
//! * [`model`] — a Gurobi-like model builder: variables (continuous or
//!   binary), linear constraints, minimize/maximize objective;
//! * [`simplex`] — dense two-phase primal simplex for the LP relaxation;
//! * [`branch`] — best-first branch & bound over the binary variables, with
//!   node and gap limits;
//! * [`knapsack`] — dynamic-programming 0/1 knapsack, used both as a fast
//!   path for batch-selection instances that degenerate to knapsack
//!   (Theorem 7's reduction) and as an independent cross-check in tests.
//!
//! The batch-selection ILPs are small — `O(claims + sections)` variables and
//! constraints (Theorem 8) — so a textbook implementation solves them in
//! milliseconds, which is all the paper's experiments require.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod branch;
pub mod error;
pub mod knapsack;
pub mod model;
pub mod simplex;

pub use branch::{solve_ilp, BranchConfig};
pub use error::IlpError;
pub use knapsack::knapsack_01;
pub use model::{Constraint, Model, Sense, Solution, SolveStatus, VarId, VarKind};

/// Result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, IlpError>;
