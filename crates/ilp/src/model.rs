//! Model builder: variables, linear constraints, objective.

use crate::error::IlpError;
use crate::Result;

/// Handle to a model variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct VarId(pub(crate) usize);

impl VarId {
    /// Index of the variable in the model (also in solution vectors).
    pub fn index(self) -> usize {
        self.0
    }
}

/// Variable domain kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VarKind {
    /// Continuous within its bounds.
    Continuous,
    /// Binary {0, 1} (bounds are implicitly [0, 1]).
    Binary,
}

/// Constraint sense.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sense {
    /// `≤ rhs`
    Le,
    /// `≥ rhs`
    Ge,
    /// `= rhs`
    Eq,
}

/// Optimization direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Minimize the objective.
    Minimize,
    /// Maximize the objective.
    Maximize,
}

#[derive(Debug, Clone)]
pub(crate) struct Variable {
    pub(crate) name: String,
    pub(crate) kind: VarKind,
    pub(crate) lower: f64,
    pub(crate) upper: f64,
    pub(crate) objective: f64,
}

/// A linear constraint `Σ coeff·var  sense  rhs`.
#[derive(Debug, Clone)]
pub struct Constraint {
    /// `(variable, coefficient)` terms; duplicates are summed by the solver.
    pub terms: Vec<(VarId, f64)>,
    /// Relation to the right-hand side.
    pub sense: Sense,
    /// Right-hand side constant.
    pub rhs: f64,
}

/// Solver status of a returned solution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolveStatus {
    /// Proven optimal (within tolerances).
    Optimal,
    /// Feasible incumbent, optimality not proven (node limit hit).
    Feasible,
}

/// A solution: one value per variable (indexed by [`VarId::index`]).
#[derive(Debug, Clone, PartialEq)]
pub struct Solution {
    /// Variable values.
    pub values: Vec<f64>,
    /// Objective value under the model's direction.
    pub objective: f64,
    /// Optimality status.
    pub status: SolveStatus,
}

impl Solution {
    /// Value of a variable.
    pub fn value(&self, var: VarId) -> f64 {
        self.values[var.0]
    }

    /// Whether a binary variable is set (value > 0.5).
    pub fn is_set(&self, var: VarId) -> bool {
        self.values[var.0] > 0.5
    }
}

/// A linear optimization model.
#[derive(Debug, Clone)]
pub struct Model {
    pub(crate) variables: Vec<Variable>,
    pub(crate) constraints: Vec<Constraint>,
    pub(crate) direction: Direction,
}

impl Model {
    /// Creates a minimization model.
    pub fn minimize() -> Self {
        Model {
            variables: Vec::new(),
            constraints: Vec::new(),
            direction: Direction::Minimize,
        }
    }

    /// Creates a maximization model.
    pub fn maximize() -> Self {
        Model {
            variables: Vec::new(),
            constraints: Vec::new(),
            direction: Direction::Maximize,
        }
    }

    /// Adds a continuous variable with bounds `[lower, upper]` and objective
    /// coefficient `objective`.
    pub fn add_continuous(
        &mut self,
        name: impl Into<String>,
        lower: f64,
        upper: f64,
        objective: f64,
    ) -> Result<VarId> {
        if lower > upper {
            return Err(IlpError::BadBounds {
                var: self.variables.len(),
                lower,
                upper,
            });
        }
        let id = VarId(self.variables.len());
        self.variables.push(Variable {
            name: name.into(),
            kind: VarKind::Continuous,
            lower,
            upper,
            objective,
        });
        Ok(id)
    }

    /// Adds a binary variable with objective coefficient `objective`.
    pub fn add_binary(&mut self, name: impl Into<String>, objective: f64) -> VarId {
        let id = VarId(self.variables.len());
        self.variables.push(Variable {
            name: name.into(),
            kind: VarKind::Binary,
            lower: 0.0,
            upper: 1.0,
            objective,
        });
        id
    }

    /// Adds a linear constraint.
    pub fn add_constraint(
        &mut self,
        terms: Vec<(VarId, f64)>,
        sense: Sense,
        rhs: f64,
    ) -> Result<()> {
        for (var, _) in &terms {
            if var.0 >= self.variables.len() {
                return Err(IlpError::UnknownVariable(var.0));
            }
        }
        self.constraints.push(Constraint { terms, sense, rhs });
        Ok(())
    }

    /// Number of variables.
    pub fn num_variables(&self) -> usize {
        self.variables.len()
    }

    /// Number of constraints.
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// Optimization direction.
    pub fn direction(&self) -> Direction {
        self.direction
    }

    /// Name of a variable (for diagnostics).
    pub fn var_name(&self, var: VarId) -> &str {
        &self.variables[var.0].name
    }

    /// Indices of the binary variables.
    pub fn binary_vars(&self) -> Vec<VarId> {
        self.variables
            .iter()
            .enumerate()
            .filter(|(_, v)| v.kind == VarKind::Binary)
            .map(|(i, _)| VarId(i))
            .collect()
    }

    /// Objective value of an assignment under the model direction.
    pub fn objective_value(&self, values: &[f64]) -> f64 {
        self.variables
            .iter()
            .zip(values)
            .map(|(v, x)| v.objective * x)
            .sum()
    }

    /// Checks whether `values` satisfies every constraint and bound within
    /// tolerance `tol`.
    pub fn is_feasible(&self, values: &[f64], tol: f64) -> bool {
        if values.len() != self.variables.len() {
            return false;
        }
        for (variable, &x) in self.variables.iter().zip(values) {
            if x < variable.lower - tol || x > variable.upper + tol {
                return false;
            }
            if variable.kind == VarKind::Binary && (x - x.round()).abs() > tol {
                return false;
            }
        }
        for c in &self.constraints {
            let lhs: f64 = c.terms.iter().map(|(v, coeff)| coeff * values[v.0]).sum();
            let ok = match c.sense {
                Sense::Le => lhs <= c.rhs + tol,
                Sense::Ge => lhs >= c.rhs - tol,
                Sense::Eq => (lhs - c.rhs).abs() <= tol,
            };
            if !ok {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_basics() {
        let mut m = Model::maximize();
        let x = m.add_continuous("x", 0.0, 10.0, 1.0).unwrap();
        let y = m.add_binary("y", 5.0);
        m.add_constraint(vec![(x, 1.0), (y, 2.0)], Sense::Le, 8.0)
            .unwrap();
        assert_eq!(m.num_variables(), 2);
        assert_eq!(m.num_constraints(), 1);
        assert_eq!(m.binary_vars(), vec![y]);
        assert_eq!(m.var_name(x), "x");
    }

    #[test]
    fn bad_bounds_rejected() {
        let mut m = Model::minimize();
        assert!(matches!(
            m.add_continuous("x", 2.0, 1.0, 0.0),
            Err(IlpError::BadBounds { .. })
        ));
    }

    #[test]
    fn unknown_variable_rejected() {
        let mut m = Model::minimize();
        let _x = m.add_binary("x", 1.0);
        let ghost = VarId(7);
        assert!(matches!(
            m.add_constraint(vec![(ghost, 1.0)], Sense::Le, 1.0),
            Err(IlpError::UnknownVariable(7))
        ));
    }

    #[test]
    fn feasibility_check() {
        let mut m = Model::maximize();
        let x = m.add_continuous("x", 0.0, 4.0, 1.0).unwrap();
        let y = m.add_binary("y", 1.0);
        m.add_constraint(vec![(x, 1.0), (y, 1.0)], Sense::Le, 4.0)
            .unwrap();
        assert!(m.is_feasible(&[3.0, 1.0], 1e-9));
        assert!(!m.is_feasible(&[4.0, 1.0], 1e-9), "constraint violated");
        assert!(!m.is_feasible(&[3.0, 0.5], 1e-9), "binary fractional");
        assert!(!m.is_feasible(&[5.0, 0.0], 1e-9), "bound violated");
        assert!(!m.is_feasible(&[1.0], 1e-9), "wrong arity");
    }
}
