//! Dynamic-programming 0/1 knapsack.
//!
//! Theorem 7 reduces knapsack to claim selection; the converse direction is
//! useful too: when every claim sits in its own section, batch selection *is*
//! a knapsack, and this exact DP provides both a fast path and an independent
//! oracle for testing the ILP solver.

/// Solves 0/1 knapsack with integer weights: maximize Σ value over item
/// subsets with Σ weight ≤ capacity. Returns `(best_value, chosen_indices)`;
/// indices are ascending.
pub fn knapsack_01(weights: &[u64], values: &[f64], capacity: u64) -> (f64, Vec<usize>) {
    assert_eq!(
        weights.len(),
        values.len(),
        "weights/values length mismatch"
    );
    let n = weights.len();
    let cap = capacity as usize;
    // dp[w] = best value with capacity w; keep[i][w] = item i taken at w
    let mut dp = vec![0.0f64; cap + 1];
    let mut keep = vec![false; n * (cap + 1)];
    for i in 0..n {
        let wi = weights[i] as usize;
        if wi > cap {
            continue;
        }
        // descending so each item is used at most once
        for w in (wi..=cap).rev() {
            let candidate = dp[w - wi] + values[i];
            if candidate > dp[w] + 1e-12 {
                dp[w] = candidate;
                keep[i * (cap + 1) + w] = true;
            }
        }
    }
    // best capacity (dp is monotone, but be explicit)
    let mut best_w = 0;
    for w in 0..=cap {
        if dp[w] > dp[best_w] {
            best_w = w;
        }
    }
    // backtrack
    let mut chosen = Vec::new();
    let mut w = best_w;
    for i in (0..n).rev() {
        if keep[i * (cap + 1) + w] {
            chosen.push(i);
            w -= weights[i] as usize;
        }
    }
    chosen.reverse();
    (dp[best_w], chosen)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classic_instance() {
        let weights = [3, 4, 2];
        let values = [10.0, 13.0, 7.0];
        let (best, chosen) = knapsack_01(&weights, &values, 6);
        assert_eq!(best, 20.0);
        assert_eq!(chosen, vec![1, 2]);
    }

    #[test]
    fn zero_capacity() {
        let (best, chosen) = knapsack_01(&[1, 2], &[5.0, 6.0], 0);
        assert_eq!(best, 0.0);
        assert!(chosen.is_empty());
    }

    #[test]
    fn oversized_items_skipped() {
        let (best, chosen) = knapsack_01(&[100, 1], &[1000.0, 1.0], 10);
        assert_eq!(best, 1.0);
        assert_eq!(chosen, vec![1]);
    }

    #[test]
    fn all_items_fit() {
        let (best, chosen) = knapsack_01(&[1, 1, 1], &[1.0, 2.0, 3.0], 10);
        assert_eq!(best, 6.0);
        assert_eq!(chosen, vec![0, 1, 2]);
    }

    #[test]
    fn empty_instance() {
        let (best, chosen) = knapsack_01(&[], &[], 5);
        assert_eq!(best, 0.0);
        assert!(chosen.is_empty());
    }

    #[test]
    fn chosen_weight_within_capacity() {
        let weights = [5, 4, 6, 3, 7];
        let values = [10.0, 40.0, 30.0, 50.0, 35.0];
        let (best, chosen) = knapsack_01(&weights, &values, 10);
        let total_w: u64 = chosen.iter().map(|&i| weights[i]).sum();
        let total_v: f64 = chosen.iter().map(|&i| values[i]).sum();
        assert!(total_w <= 10);
        assert_eq!(total_v, best);
        assert_eq!(best, 90.0); // items 1 (w4 v40) + 3 (w3 v50)
    }
}
