//! Error types for the optimization stack.

use std::fmt;

/// Errors produced while building or solving models.
#[derive(Debug, Clone, PartialEq)]
pub enum IlpError {
    /// The model has no feasible solution.
    Infeasible,
    /// The LP relaxation is unbounded in the optimization direction.
    Unbounded,
    /// A constraint references a variable id not in the model.
    UnknownVariable(usize),
    /// The simplex iteration limit was exceeded (numerical trouble).
    IterationLimit,
    /// Branch & bound exhausted its node budget before proving optimality;
    /// the payload carries the best incumbent found, if any.
    NodeLimit(Option<crate::model::Solution>),
    /// A bound pair is inconsistent (lower > upper).
    BadBounds {
        /// Variable index.
        var: usize,
        /// Lower bound.
        lower: f64,
        /// Upper bound.
        upper: f64,
    },
}

impl fmt::Display for IlpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IlpError::Infeasible => write!(f, "model is infeasible"),
            IlpError::Unbounded => write!(f, "model is unbounded"),
            IlpError::UnknownVariable(id) => write!(f, "unknown variable id {id}"),
            IlpError::IterationLimit => write!(f, "simplex iteration limit exceeded"),
            IlpError::NodeLimit(best) => write!(
                f,
                "branch & bound node limit reached ({})",
                if best.is_some() {
                    "incumbent available"
                } else {
                    "no incumbent"
                }
            ),
            IlpError::BadBounds { var, lower, upper } => {
                write!(
                    f,
                    "variable {var} has inconsistent bounds [{lower}, {upper}]"
                )
            }
        }
    }
}

impl std::error::Error for IlpError {}
