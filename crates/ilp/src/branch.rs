//! Best-first branch & bound for 0/1 integer programs.

use crate::error::IlpError;
use crate::model::{Direction, Model, Solution, SolveStatus};
use crate::simplex::solve_lp;
use crate::Result;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Branch & bound configuration.
#[derive(Debug, Clone, Copy)]
pub struct BranchConfig {
    /// Maximum number of explored nodes before giving up with the incumbent.
    pub node_limit: usize,
    /// Relative optimality gap at which search stops early.
    pub gap: f64,
    /// Integrality tolerance.
    pub int_tol: f64,
}

impl Default for BranchConfig {
    fn default() -> Self {
        BranchConfig {
            node_limit: 20_000,
            gap: 1e-6,
            int_tol: 1e-6,
        }
    }
}

struct Node {
    /// LP bound of this node (in maximize convention).
    bound: f64,
    lower: Vec<f64>,
    upper: Vec<f64>,
}

impl PartialEq for Node {
    fn eq(&self, other: &Self) -> bool {
        self.bound == other.bound
    }
}
impl Eq for Node {}
impl PartialOrd for Node {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Node {
    fn cmp(&self, other: &Self) -> Ordering {
        // best-first: larger bound explored first
        self.bound.total_cmp(&other.bound)
    }
}

/// Solves a model whose integer variables are all binary.
///
/// Returns the optimal solution, or — when the node budget runs out — the
/// best incumbent wrapped in [`IlpError::NodeLimit`].
pub fn solve_ilp(model: &Model, config: BranchConfig) -> Result<Solution> {
    let binaries: Vec<usize> = model.binary_vars().iter().map(|v| v.index()).collect();
    let sign = match model.direction() {
        Direction::Maximize => 1.0,
        Direction::Minimize => -1.0,
    };

    let root_lower: Vec<f64> = model.variables.iter().map(|v| v.lower).collect();
    let root_upper: Vec<f64> = model.variables.iter().map(|v| v.upper).collect();

    let root = solve_lp(model, &root_lower, &root_upper)?;

    let mut heap = BinaryHeap::new();
    heap.push(Node {
        bound: sign * root.objective,
        lower: root_lower,
        upper: root_upper,
    });

    let mut incumbent: Option<Solution> = None;
    let mut incumbent_value = f64::NEG_INFINITY; // maximize convention
    let mut explored = 0usize;

    while let Some(node) = heap.pop() {
        // bound-based pruning (also achieves early gap termination)
        if node.bound <= incumbent_value + config.gap * incumbent_value.abs().max(1.0) - 1e-12
            && incumbent.is_some()
        {
            break; // best-first: all remaining nodes are no better
        }
        explored += 1;
        if explored > config.node_limit {
            return Err(IlpError::NodeLimit(incumbent));
        }
        let relaxed = match solve_lp(model, &node.lower, &node.upper) {
            Ok(sol) => sol,
            Err(IlpError::Infeasible) => continue,
            Err(e) => return Err(e),
        };
        let bound = sign * relaxed.objective;
        if incumbent.is_some() && bound <= incumbent_value + 1e-12 {
            continue;
        }
        // most fractional binary
        let fractional = binaries
            .iter()
            .copied()
            .map(|i| (i, (relaxed.values[i] - relaxed.values[i].round()).abs()))
            .filter(|(_, f)| *f > config.int_tol)
            .max_by(|a, b| a.1.total_cmp(&b.1));
        match fractional {
            None => {
                // integral: candidate incumbent (round binaries exactly)
                let mut values = relaxed.values.clone();
                for &i in &binaries {
                    values[i] = values[i].round();
                }
                let objective = model.objective_value(&values);
                let value = sign * objective;
                if value > incumbent_value && model.is_feasible(&values, 1e-6) {
                    incumbent_value = value;
                    incumbent = Some(Solution {
                        values,
                        objective,
                        status: SolveStatus::Optimal,
                    });
                }
            }
            Some((var, _)) => {
                let mut down_upper = node.upper.clone();
                down_upper[var] = 0.0;
                heap.push(Node {
                    bound,
                    lower: node.lower.clone(),
                    upper: down_upper,
                });
                let mut up_lower = node.lower.clone();
                up_lower[var] = 1.0;
                heap.push(Node {
                    bound,
                    lower: up_lower,
                    upper: node.upper,
                });
            }
        }
    }

    incumbent.ok_or(IlpError::Infeasible)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Model, Sense};

    #[test]
    fn knapsack_style() {
        // max 10a + 13b + 7c s.t. 3a + 4b + 2c ≤ 6 → b + c = 20? check:
        // a+c: w 5 v 17; b+c: w 6 v 20; a+b: w 7 infeasible → optimum 20
        let mut m = Model::maximize();
        let a = m.add_binary("a", 10.0);
        let b = m.add_binary("b", 13.0);
        let c = m.add_binary("c", 7.0);
        m.add_constraint(vec![(a, 3.0), (b, 4.0), (c, 2.0)], Sense::Le, 6.0)
            .unwrap();
        let sol = solve_ilp(&m, BranchConfig::default()).unwrap();
        assert!((sol.objective - 20.0).abs() < 1e-6);
        assert!(sol.is_set(b) && sol.is_set(c) && !sol.is_set(a));
        assert_eq!(sol.status, SolveStatus::Optimal);
    }

    #[test]
    fn integrality_matters() {
        // LP relaxation gives 1.5; ILP must give 1
        let mut m = Model::maximize();
        let x = m.add_binary("x", 1.0);
        let y = m.add_binary("y", 1.0);
        m.add_constraint(vec![(x, 1.0), (y, 1.0)], Sense::Le, 1.5)
            .unwrap();
        let sol = solve_ilp(&m, BranchConfig::default()).unwrap();
        assert!((sol.objective - 1.0).abs() < 1e-6);
    }

    #[test]
    fn equality_and_linking_constraints() {
        // choose exactly 2 of 3 items; y must cover chosen sections
        let mut m = Model::maximize();
        let items: Vec<_> = (0..3)
            .map(|i| m.add_binary(format!("c{i}"), (i + 1) as f64))
            .collect();
        let section = m.add_binary("s0", -0.5); // section cost
                                                // all items live in section 0: s0 ≥ ci
        for &c in &items {
            m.add_constraint(vec![(section, 1.0), (c, -1.0)], Sense::Ge, 0.0)
                .unwrap();
        }
        let terms: Vec<_> = items.iter().map(|&c| (c, 1.0)).collect();
        m.add_constraint(terms, Sense::Eq, 2.0).unwrap();
        let sol = solve_ilp(&m, BranchConfig::default()).unwrap();
        // best two items: values 2 + 3 = 5, minus section 0.5 → 4.5
        assert!((sol.objective - 4.5).abs() < 1e-6);
        assert!(sol.is_set(section));
        assert!(sol.is_set(items[1]) && sol.is_set(items[2]));
    }

    #[test]
    fn minimization_direction() {
        // min x + 2y s.t. x + y ≥ 1 → x=1, y=0, obj 1
        let mut m = Model::minimize();
        let x = m.add_binary("x", 1.0);
        let y = m.add_binary("y", 2.0);
        m.add_constraint(vec![(x, 1.0), (y, 1.0)], Sense::Ge, 1.0)
            .unwrap();
        let sol = solve_ilp(&m, BranchConfig::default()).unwrap();
        assert!((sol.objective - 1.0).abs() < 1e-6);
        assert!(sol.is_set(x) && !sol.is_set(y));
    }

    #[test]
    fn infeasible_ilp() {
        let mut m = Model::maximize();
        let x = m.add_binary("x", 1.0);
        m.add_constraint(vec![(x, 1.0)], Sense::Ge, 2.0).unwrap();
        assert!(matches!(
            solve_ilp(&m, BranchConfig::default()),
            Err(IlpError::Infeasible)
        ));
    }

    #[test]
    fn node_limit_returns_incumbent() {
        // a model with many symmetric optima; tiny node limit
        let mut m = Model::maximize();
        let vars: Vec<_> = (0..12)
            .map(|i| m.add_binary(format!("x{i}"), 1.0))
            .collect();
        let terms: Vec<_> = vars.iter().map(|&v| (v, 1.0)).collect();
        m.add_constraint(terms, Sense::Le, 6.0).unwrap();
        match solve_ilp(
            &m,
            BranchConfig {
                node_limit: 1,
                ..Default::default()
            },
        ) {
            Err(IlpError::NodeLimit(Some(sol))) => {
                assert!(sol.objective <= 6.0 + 1e-9);
            }
            Ok(sol) => assert!((sol.objective - 6.0).abs() < 1e-6), // solved at root
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn mixed_continuous_and_binary() {
        // max 2x + y with binary x, continuous y ≤ 3.5, x + y ≤ 4
        let mut m = Model::maximize();
        let x = m.add_binary("x", 2.0);
        let y = m.add_continuous("y", 0.0, 3.5, 1.0).unwrap();
        m.add_constraint(vec![(x, 1.0), (y, 1.0)], Sense::Le, 4.0)
            .unwrap();
        let sol = solve_ilp(&m, BranchConfig::default()).unwrap();
        // x=1, y=3 → 5
        assert!((sol.objective - 5.0).abs() < 1e-6);
        assert!(sol.is_set(x));
        assert!((sol.value(y) - 3.0).abs() < 1e-6);
    }
}
