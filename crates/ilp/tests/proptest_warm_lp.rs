//! Differential property test for LP basis warm-starting: re-solving a
//! model under branch-and-bound-style bound changes with the parent's
//! basis must agree with a cold solve — same objective, and always a
//! feasible point. This is the harness that catches "the warm path
//! silently dropped a constraint" bugs.

use proptest::prelude::*;
use scrutinizer_ilp::simplex::{solve_lp, solve_lp_warm};
use scrutinizer_ilp::{IlpError, Model, Sense};

#[derive(Debug, Clone)]
struct LpCase {
    /// Per-variable (upper bound in tenths, objective in ±tenths).
    variables: Vec<(u32, i32)>,
    /// Constraints: per-variable coefficients in ±units, sense selector,
    /// rhs in ±units.
    constraints: Vec<(Vec<i32>, u8, i32)>,
    /// Which variable a "branch" fixes, and to which bound.
    branch_var: usize,
    branch_up: bool,
}

fn cases() -> impl Strategy<Value = LpCase> {
    (2usize..6).prop_flat_map(|n| {
        (
            prop::collection::vec((1u32..30, -50i32..50), n),
            prop::collection::vec(
                (prop::collection::vec(-5i32..6, n), 0u8..3, -8i32..20),
                1..5,
            ),
            0..n,
            0u8..2,
        )
            .prop_map(|(variables, constraints, branch_var, branch_up)| LpCase {
                variables,
                constraints,
                branch_var,
                branch_up: branch_up == 1,
            })
    })
}

fn build(case: &LpCase) -> (Model, Vec<f64>, Vec<f64>) {
    let mut m = Model::maximize();
    let vars: Vec<_> = case
        .variables
        .iter()
        .enumerate()
        .map(|(i, &(upper, objective))| {
            m.add_continuous(
                format!("x{i}"),
                0.0,
                upper as f64 / 10.0,
                objective as f64 / 10.0,
            )
            .unwrap()
        })
        .collect();
    for (coeffs, sense, rhs) in &case.constraints {
        let terms: Vec<_> = vars
            .iter()
            .zip(coeffs)
            .filter(|(_, &c)| c != 0)
            .map(|(&v, &c)| (v, c as f64))
            .collect();
        if terms.is_empty() {
            continue;
        }
        let sense = match sense {
            0 => Sense::Le,
            1 => Sense::Ge,
            _ => Sense::Eq,
        };
        m.add_constraint(terms, sense, *rhs as f64).unwrap();
    }
    let lower = vec![0.0; case.variables.len()];
    let upper: Vec<f64> = case
        .variables
        .iter()
        .map(|&(u, _)| u as f64 / 10.0)
        .collect();
    (m, lower, upper)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn warm_solve_matches_cold_solve(case in cases()) {
        let (model, lower, upper) = build(&case);
        // infeasible/unbounded roots have nothing to warm-start
        if let Ok(root) = solve_lp_warm(&model, &lower, &upper, None) {
            // branch: clamp one variable to one of its bounds
            let mut child_lower = lower.clone();
            let mut child_upper = upper.clone();
            if case.branch_up {
                child_lower[case.branch_var] = upper[case.branch_var];
            } else {
                child_upper[case.branch_var] = 0.0;
            }
            let cold = solve_lp(&model, &child_lower, &child_upper);
            let warm = solve_lp_warm(&model, &child_lower, &child_upper, Some(&root.basis));
            match (cold, warm) {
                (Ok(cold), Ok(warm)) => {
                    prop_assert!(
                        (cold.objective - warm.solution.objective).abs() < 1e-6,
                        "cold {} vs warm {} (warm_used={})",
                        cold.objective,
                        warm.solution.objective,
                        warm.warm_start_used
                    );
                    let clamped = clamp(&warm.solution.values, &child_lower, &child_upper);
                    prop_assert!(
                        model.is_feasible(&clamped, 1e-5),
                        "warm solution infeasible: {:?}",
                        warm.solution.values
                    );
                }
                (Err(IlpError::Infeasible), Err(IlpError::Infeasible)) => {}
                (cold, warm) => prop_assert!(false, "disagreement: cold {cold:?} vs warm {warm:?}"),
            }
        }
    }
}

/// `Model::is_feasible` checks the *model* bounds; the child tightened
/// them, so clamp tiny numerical overshoot against the child bounds first.
fn clamp(values: &[f64], lower: &[f64], upper: &[f64]) -> Vec<f64> {
    values
        .iter()
        .zip(lower.iter().zip(upper))
        .map(|(&v, (&l, &u))| v.clamp(l, u))
        .collect()
}
