//! Differential property tests for the parallel solver: over random
//! Definition-9 instances (claims with costs/utilities, section coverage
//! variables, a budget, cardinality bounds), the work-stealing parallel
//! branch & bound must return exactly the serial solver's objective — at
//! one thread and at several — and its warm starts, heuristic seeding and
//! hints must never change the optimum.

use proptest::prelude::*;
use scrutinizer_ilp::{
    solve_ilp, solve_ilp_parallel, BranchConfig, IlpError, Model, ParallelConfig, Sense, VarId,
};

/// A random Definition-9 instance small enough to solve exactly.
#[derive(Debug, Clone)]
struct Instance {
    costs: Vec<f64>,
    utilities: Vec<f64>,
    sections: Vec<usize>,
    reads: Vec<f64>,
    budget: f64,
    batch_size: usize,
}

impl Instance {
    fn build(&self) -> (Model, Vec<VarId>) {
        let n_sections = self.reads.len();
        let mut m = Model::maximize();
        let claim_vars: Vec<_> = self
            .utilities
            .iter()
            .enumerate()
            .map(|(i, &u)| m.add_binary(format!("cs{i}"), u))
            .collect();
        let section_vars: Vec<_> = (0..n_sections)
            .map(|s| m.add_binary(format!("sr{s}"), 0.0))
            .collect();
        for (i, &cv) in claim_vars.iter().enumerate() {
            m.add_constraint(
                vec![(section_vars[self.sections[i]], 1.0), (cv, -1.0)],
                Sense::Ge,
                0.0,
            )
            .unwrap();
        }
        let mut budget_terms: Vec<_> = claim_vars
            .iter()
            .zip(&self.costs)
            .map(|(&v, &c)| (v, c))
            .collect();
        for (s, &sv) in section_vars.iter().enumerate() {
            budget_terms.push((sv, self.reads[s]));
        }
        m.add_constraint(budget_terms, Sense::Le, self.budget)
            .unwrap();
        let cardinality: Vec<_> = claim_vars.iter().map(|&v| (v, 1.0)).collect();
        m.add_constraint(cardinality.clone(), Sense::Le, self.batch_size as f64)
            .unwrap();
        m.add_constraint(cardinality, Sense::Ge, 1.0).unwrap();
        (m, claim_vars)
    }
}

fn instances() -> impl Strategy<Value = Instance> {
    (
        prop::collection::vec((5u32..80, 1u32..20, 0usize..4), 2..12),
        prop::collection::vec(5u32..60, 4),
        20u32..250,
        1usize..6,
    )
        .prop_map(|(claims, reads, budget, batch_size)| Instance {
            costs: claims.iter().map(|(c, _, _)| *c as f64).collect(),
            utilities: claims.iter().map(|(_, u, _)| *u as f64).collect(),
            sections: claims.iter().map(|(_, _, s)| *s).collect(),
            reads: reads.iter().map(|&r| r as f64).collect(),
            budget: budget as f64,
            batch_size,
        })
}

/// Serial reference objective, `None` when infeasible.
fn serial_objective(model: &Model) -> Option<f64> {
    match solve_ilp(
        model,
        BranchConfig {
            node_limit: 1_000_000,
            ..Default::default()
        },
    ) {
        Ok(solution) => Some(solution.objective),
        Err(IlpError::Infeasible) => None,
        Err(error) => panic!("serial solver failed: {error}"),
    }
}

fn parallel_objective(model: &Model, threads: usize, hints: &[&[f64]]) -> Option<f64> {
    match solve_ilp_parallel(
        model,
        ParallelConfig {
            threads,
            node_limit: 1_000_000,
            ..Default::default()
        },
        hints,
    ) {
        Ok(solve) => {
            assert!(
                !solve.stats.node_limit_hit,
                "budget was effectively unbounded"
            );
            Some(solve.solution.objective)
        }
        Err(IlpError::Infeasible) => None,
        Err(error) => panic!("parallel solver failed: {error}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn parallel_matches_serial_objective(instance in instances()) {
        let (model, _) = instance.build();
        let serial = serial_objective(&model);
        for threads in [1, 3] {
            let parallel = parallel_objective(&model, threads, &[]);
            match (serial, parallel) {
                (None, None) => {}
                (Some(s), Some(p)) => prop_assert!(
                    (s - p).abs() < 1e-6,
                    "{threads} threads: serial {s} vs parallel {p}"
                ),
                other => prop_assert!(false, "feasibility disagreement: {other:?}"),
            }
        }
    }

    #[test]
    fn hints_never_change_the_optimum(instance in instances()) {
        let (model, claim_vars) = instance.build();
        let serial = serial_objective(&model);
        // hint: cheapest single claim plus its section (feasible whenever
        // the instance is), plus a deliberately infeasible all-ones hint
        let cheapest = (0..instance.costs.len())
            .min_by(|&a, &b| instance.costs[a].total_cmp(&instance.costs[b]))
            .unwrap();
        let mut hint = vec![0.0; model.num_variables()];
        hint[claim_vars[cheapest].index()] = 1.0;
        hint[instance.costs.len() + instance.sections[cheapest]] = 1.0;
        let all_ones = vec![1.0; model.num_variables()];
        let parallel = parallel_objective(&model, 2, &[&hint, &all_ones]);
        match (serial, parallel) {
            (None, None) => {}
            (Some(s), Some(p)) => prop_assert!(
                (s - p).abs() < 1e-6,
                "hinted: serial {s} vs parallel {p}"
            ),
            other => prop_assert!(false, "feasibility disagreement: {other:?}"),
        }
    }
}
