//! Cross-checks between the three solution methods: branch & bound must
//! agree with the DP knapsack and with brute-force enumeration on random
//! small instances.

use proptest::prelude::*;
use scrutinizer_ilp::{knapsack_01, solve_ilp, BranchConfig, Model, Sense};

/// Brute-force optimum of a knapsack instance.
fn brute_force(weights: &[u64], values: &[f64], capacity: u64) -> f64 {
    let n = weights.len();
    let mut best = 0.0f64;
    for mask in 0..(1u32 << n) {
        let mut w = 0u64;
        let mut v = 0.0;
        for i in 0..n {
            if mask & (1 << i) != 0 {
                w += weights[i];
                v += values[i];
            }
        }
        if w <= capacity && v > best {
            best = v;
        }
    }
    best
}

fn knapsack_as_ilp(weights: &[u64], values: &[f64], capacity: u64) -> f64 {
    let mut m = Model::maximize();
    let vars: Vec<_> = values
        .iter()
        .enumerate()
        .map(|(i, &v)| m.add_binary(format!("x{i}"), v))
        .collect();
    let terms: Vec<_> = vars
        .iter()
        .zip(weights)
        .map(|(&v, &w)| (v, w as f64))
        .collect();
    m.add_constraint(terms, Sense::Le, capacity as f64).unwrap();
    solve_ilp(&m, BranchConfig::default()).unwrap().objective
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn ilp_matches_brute_force_and_dp(
        items in prop::collection::vec((1u64..12, 1u64..50), 1..10),
        capacity in 1u64..40,
    ) {
        let weights: Vec<u64> = items.iter().map(|(w, _)| *w).collect();
        let values: Vec<f64> = items.iter().map(|(_, v)| *v as f64).collect();

        let exact = brute_force(&weights, &values, capacity);
        let (dp, chosen) = knapsack_01(&weights, &values, capacity);
        let ilp = knapsack_as_ilp(&weights, &values, capacity);

        prop_assert!((dp - exact).abs() < 1e-9, "DP {dp} vs brute {exact}");
        prop_assert!((ilp - exact).abs() < 1e-6, "ILP {ilp} vs brute {exact}");
        // chosen set must be feasible and achieve the DP value
        let w: u64 = chosen.iter().map(|&i| weights[i]).sum();
        let v: f64 = chosen.iter().map(|&i| values[i]).sum();
        prop_assert!(w <= capacity);
        prop_assert!((v - dp).abs() < 1e-9);
    }

    #[test]
    fn ilp_with_cardinality_constraints(
        items in prop::collection::vec((1u64..10, 1u64..30), 2..8),
        capacity in 5u64..30,
    ) {
        // add a |B| ≤ 2 cardinality bound, check vs brute force
        let weights: Vec<u64> = items.iter().map(|(w, _)| *w).collect();
        let values: Vec<f64> = items.iter().map(|(_, v)| *v as f64).collect();
        let n = weights.len();

        let mut best = 0.0f64;
        for mask in 0..(1u32 << n) {
            if mask.count_ones() > 2 { continue; }
            let mut w = 0u64;
            let mut v = 0.0;
            for i in 0..n {
                if mask & (1 << i) != 0 { w += weights[i]; v += values[i]; }
            }
            if w <= capacity && v > best { best = v; }
        }

        let mut m = Model::maximize();
        let vars: Vec<_> = values.iter().enumerate()
            .map(|(i, &v)| m.add_binary(format!("x{i}"), v)).collect();
        let weight_terms: Vec<_> =
            vars.iter().zip(&weights).map(|(&v, &w)| (v, w as f64)).collect();
        m.add_constraint(weight_terms, Sense::Le, capacity as f64).unwrap();
        let card_terms: Vec<_> = vars.iter().map(|&v| (v, 1.0)).collect();
        m.add_constraint(card_terms, Sense::Le, 2.0).unwrap();
        let sol = solve_ilp(&m, BranchConfig::default()).unwrap();
        prop_assert!((sol.objective - best).abs() < 1e-6,
            "ILP {} vs brute {best}", sol.objective);
    }
}
