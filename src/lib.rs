//! # Scrutinizer
//!
//! A mixed-initiative, data-driven claim verification system — a from-scratch
//! Rust reproduction of *"Scrutinizer: A Mixed-Initiative Approach to
//! Large-Scale, Data-Driven Claim Verification"* (VLDB 2020).
//!
//! Scrutinizer helps teams of fact checkers verify statistical claims in text
//! documents against a corpus of relational tables. It translates claims into
//! SQL queries using four text classifiers (relation, row key, attribute,
//! formula), generates candidate queries by instantiating learned formulas
//! (Algorithm 2), and plans the interaction with the crowd using cost-based
//! optimization: greedy sub-modular question selection per claim (Theorems
//! 3–5) and ILP-based claim-batch ordering across a report (Definition 9).
//!
//! This facade crate re-exports all subsystems; see the README for a tour and
//! `examples/quickstart.rs` for a five-minute introduction.
//!
//! ```
//! use scrutinizer::data::TableBuilder;
//! use scrutinizer::query::run_sql;
//!
//! let mut catalog = scrutinizer::data::Catalog::new();
//! catalog
//!     .add(
//!         TableBuilder::new("GED", "Index", &["2016", "2017"])
//!             .row("PGElecDemand", &[21_566.0, 22_209.0])
//!             .unwrap()
//!             .build(),
//!     )
//!     .unwrap();
//! let value = run_sql(
//!     &catalog,
//!     "SELECT POWER(a.2017 / b.2016, 1 / (2017 - 2016)) - 1 \
//!      FROM GED a, GED b \
//!      WHERE a.Index = 'PGElecDemand' AND b.Index = 'PGElecDemand'",
//! )
//! .unwrap();
//! // global electricity demand grew by 3% in 2017
//! assert!((value.as_f64().unwrap() - 0.0298).abs() < 1e-3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// The Scrutinizer system itself: translation, query generation, question
/// planning, claim ordering, the main verification loop, and simulators.
pub use scrutinizer_core as core;
/// Synthetic IEA-style corpus generator.
pub use scrutinizer_corpus as corpus;
/// Simulated crowd of domain experts and the verification cost model.
pub use scrutinizer_crowd as crowd;
/// Relational storage: values, tables, catalog, CSV.
pub use scrutinizer_data as data;
/// The serving layer: a long-lived concurrent engine hosting many checker
/// sessions over shared models, with a query-result cache, a thread-pool
/// executor, metrics, durability (WAL records + crash recovery), and the
/// `scrutinizer-serve` TCP binary.
pub use scrutinizer_engine as engine;
/// Formula language: generalization and instantiation of checks.
pub use scrutinizer_formula as formula;
/// ILP solver (simplex + branch & bound) used for claim-batch selection.
pub use scrutinizer_ilp as ilp;
/// Classifiers and active learning.
pub use scrutinizer_learn as learn;
/// Observability substrate: structured tracing (spans + flight recorder),
/// the unified metrics registry with Prometheus exposition, and the
/// structured stderr logger used by `scrutinizer-serve`.
pub use scrutinizer_obs as obs;
/// The statistical-check SQL fragment: parser, functions, executor.
pub use scrutinizer_query as query;
/// Claim preprocessing: tokenization, TF-IDF, embeddings, parameter extraction.
pub use scrutinizer_text as text;
/// The append-only checksummed write-ahead log the engine's durability
/// layer builds on: rotating segments, group commit, epoch checkpoints.
pub use scrutinizer_wal as wal;
