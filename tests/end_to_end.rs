//! Cross-crate integration tests: the full pipeline from raw text and tables
//! to verified claims, exercising every subsystem together.

use scrutinizer::core::{generate_queries, OrderingStrategy, SystemConfig, Verdict, Verifier};
use scrutinizer::corpus::{ClaimKind, Corpus, CorpusConfig};
use scrutinizer::crowd::{Panel, WorkerConfig};
use scrutinizer::data::{Catalog, TableBuilder};
use scrutinizer::formula::{generalize, instantiate, parse_formula};
use scrutinizer::query::{execute, parse, FunctionRegistry};

/// The paper's running example, end to end: Figure 1 data, Example 1 claim,
/// Example 8 generalization, Example 10 instantiation, Example 4 correction.
#[test]
fn paper_running_example() {
    let mut catalog = Catalog::new();
    catalog
        .add(
            TableBuilder::new("GED", "Index", &["2016", "2017"])
                .row("PGElecDemand", &[21_566.0, 22_209.0])
                .unwrap()
                .build(),
        )
        .unwrap();

    // Example 1: execute the published verification query
    let stmt = parse(
        "SELECT POWER(a.2017/b.2016, 1/(2017-2016)) - 1 \
         FROM GED a, GED b \
         WHERE a.Index = 'PGElecDemand' AND b.Index = 'PGElecDemand'",
    )
    .unwrap();
    let value = execute(&catalog, &stmt).unwrap().as_f64().unwrap();
    assert!((value - 0.0298).abs() < 1e-3, "3% growth");

    // Example 8: generalize it into a reusable formula
    let g = generalize(&stmt).unwrap();
    assert_eq!(g.formula.to_string(), "POWER(a / b, 1 / (A1 - A2)) - 1");

    // Example 10: instantiate the formula back and get the same query
    let again = instantiate(&g.formula, &g.lookups).unwrap();
    let value_again = execute(&catalog, &again).unwrap().as_f64().unwrap();
    assert!((value - value_again).abs() < 1e-12);

    // Definition 2: the claim parameter 3% verifies within tolerance
    let p = Verifier::extract_parameter(
        "In 2017, global electricity demand grew by 3%, reaching 22 200 TWh",
    )
    .unwrap();
    assert!((value - p).abs() <= 0.05 * p, "claim verifies at e = 5%");

    // Example 4: the false 2.5% variant fails and gets a 3% suggestion
    let config = SystemConfig::default();
    let registry = FunctionRegistry::standard();
    let candidates = generate_queries(
        &catalog,
        &registry,
        &["GED".to_string()],
        &["PGElecDemand".to_string()],
        &["2016".to_string(), "2017".to_string()],
        &[(g.formula.to_string(), g.formula.clone())],
        Some(0.025),
        &config,
    );
    assert!(!candidates.is_empty());
    assert!(candidates.iter().all(|c| !c.matches_parameter));
    assert!((candidates[0].value - 0.0298).abs() < 1e-3, "suggests 3%");
}

/// Full Algorithm 1 run on a generated corpus: every claim resolved, most
/// verdicts right, corrections offered for false claims.
#[test]
fn full_document_verification() {
    let corpus = Corpus::generate(CorpusConfig::small());
    let mut verifier = Verifier::new(&corpus, SystemConfig::test());
    let mut panel = Panel::new(3, WorkerConfig::default(), 11);
    let report = verifier.run(&corpus, &mut panel, OrderingStrategy::Ilp);

    assert_eq!(report.outcomes.len(), corpus.claims.len());
    assert!(
        report.verdict_accuracy() > 0.7,
        "accuracy {}",
        report.verdict_accuracy()
    );

    // flagged claims come with evidence
    let mut with_suggestion = 0;
    for outcome in &report.outcomes {
        if let Verdict::Incorrect {
            suggested_value, ..
        } = &outcome.verdict
        {
            if suggested_value.is_some() {
                with_suggestion += 1;
            }
        }
    }
    assert!(
        with_suggestion > 0,
        "incorrect claims should carry suggestions"
    );

    // classifiers learned something during the run
    let final_acc = report.accuracy_trace.last().unwrap().1;
    let first_acc = report.accuracy_trace.first().unwrap().1;
    let improved = final_acc.iter().sum::<f64>() >= first_acc.iter().sum::<f64>();
    let peaked = report.max_classifier_accuracy() > first_acc.iter().sum::<f64>() / 4.0;
    assert!(
        improved || peaked,
        "no learning: {first_acc:?} → {final_acc:?}"
    );
}

/// Determinism: identical seeds give identical reports.
#[test]
fn runs_are_reproducible() {
    let corpus = Corpus::generate(CorpusConfig::small());
    let run = || {
        let mut verifier = Verifier::new(&corpus, SystemConfig::test());
        let mut panel = Panel::new(3, WorkerConfig::default(), 23);
        let report = verifier.run(&corpus, &mut panel, OrderingStrategy::Greedy);
        (
            report.total_crowd_seconds,
            report.outcomes.len(),
            report.verdict_accuracy(),
        )
    };
    let a = run();
    let b = run();
    assert_eq!(a, b);
}

/// The corpus ground truth is internally consistent: every correct explicit
/// claim actually verifies through the public SQL pipeline.
#[test]
fn corpus_ground_truth_verifies_via_sql() {
    let corpus = Corpus::generate(CorpusConfig::small());
    let mut checked = 0;
    for claim in corpus
        .claims
        .iter()
        .filter(|c| c.kind == ClaimKind::Explicit)
        .take(40)
    {
        let formula = parse_formula(&claim.formula_text).unwrap();
        let stmt = instantiate(&formula, &claim.lookups).unwrap();
        let value = execute(&corpus.catalog, &stmt).unwrap().as_f64().unwrap();
        assert!(
            (value - claim.true_value).abs() <= 1e-6 * claim.true_value.abs().max(1.0),
            "claim {}: SQL gives {value}, ground truth {}",
            claim.id,
            claim.true_value
        );
        checked += 1;
    }
    assert!(checked >= 15);
}
