//! Integration tests at the substrate boundaries: SQL ↔ formula ↔ data,
//! crowd cost model ↔ planner, ILP ↔ ordering — the seams the unit tests of
//! each crate cannot see.

use scrutinizer::core::planner::{plan_claim, CROWD_PROPERTIES};
use scrutinizer::core::{PropertyKind, SystemConfig, SystemModels, Translation};
use scrutinizer::corpus::annotations::{annotate, AnnotationStyle};
use scrutinizer::corpus::{Corpus, CorpusConfig};
use scrutinizer::crowd::CostModel;
use scrutinizer::data::csv;
use scrutinizer::formula::{claim_complexity, generalize, parse_formula};
use scrutinizer::query::{execute_all, parse};

/// CSV round trip through the catalog feeds the executor correctly.
#[test]
fn csv_to_query_pipeline() {
    let csv_text = "Index,2016,2017\nPGElecDemand,21566,22209\nCapAdd_Wind,5.8,52.2\n";
    let table = csv::read_table("GED", csv_text.as_bytes()).unwrap();
    let mut catalog = scrutinizer::data::Catalog::new();
    catalog.add(table).unwrap();
    let stmt = parse("SELECT a.2017 / a.2016 FROM GED a WHERE a.Index = 'CapAdd_Wind'").unwrap();
    let results = execute_all(&catalog, &stmt).unwrap();
    assert_eq!(results.len(), 1);
    assert!((results[0].1.as_f64().unwrap() - 9.0).abs() < 0.01);

    // write → read is stable
    let mut buffer = Vec::new();
    csv::write_table(catalog.get("GED").unwrap(), &mut buffer).unwrap();
    let again = csv::read_table("GED2", buffer.as_slice()).unwrap();
    assert_eq!(again.row_count(), 2);
}

/// Messy §4.2 annotations still yield usable formulas through generalization.
#[test]
fn annotation_styles_feed_formula_extraction() {
    let corpus = Corpus::generate(CorpusConfig::small());
    let mut recovered = 0;
    let mut incomplete = 0;
    for claim in corpus.claims.iter().take(30) {
        for ann in annotate(claim, 3, 77) {
            let stmt = parse(&ann.sql).expect("all annotation styles parse");
            let g = generalize(&stmt).expect("all annotation styles generalize");
            match ann.style {
                AnnotationStyle::CleanSql => {
                    // clean annotations recover the original formula exactly
                    let original = parse_formula(&claim.formula_text).unwrap();
                    if g.formula == original {
                        recovered += 1;
                    }
                }
                AnnotationStyle::IncompleteLookup => {
                    // incomplete ones lose the check structure: bare lookup
                    assert_eq!(g.formula.to_string(), "a");
                    incomplete += 1;
                }
                AnnotationStyle::BooleanQuery => {}
            }
        }
    }
    assert!(recovered >= 10, "clean recoveries: {recovered}");
    assert!(incomplete >= 2, "incomplete seen: {incomplete}");
}

/// The planner's expected cost honors Theorem 1's bound against the manual
/// baseline for every claim in a corpus.
#[test]
fn theorem1_bound_holds_corpus_wide() {
    let corpus = Corpus::generate(CorpusConfig::small());
    let config = SystemConfig::default();
    let models = SystemModels::bootstrap(&corpus, &config);
    let bound = 3.0 * config.cost.sf; // Corollary 1: overhead ≤ factor 3
    for claim in corpus.claims.iter().take(40) {
        let features = models.features(claim);
        let translation = models.translate(&features, config.options_per_screen);
        let plan = plan_claim(&translation, &config);
        assert!(
            plan.expected_cost <= bound,
            "claim {}: expected cost {} exceeds 3·s_f = {bound}",
            claim.id,
            plan.expected_cost
        );
        assert!(plan.screens.len() <= CROWD_PROPERTIES.len());
    }
}

/// Option ordering from the classifiers is always probability-descending —
/// Corollary 2's optimality precondition — even after retraining.
#[test]
fn corollary2_option_order_after_retraining() {
    let corpus = Corpus::generate(CorpusConfig::small());
    let config = SystemConfig::test();
    let mut models = SystemModels::bootstrap(&corpus, &config);
    let refs: Vec<&scrutinizer::corpus::ClaimRecord> = corpus.claims.iter().collect();
    models.retrain(&refs);
    for claim in corpus.claims.iter().take(20) {
        let features = models.features(claim);
        let translation: Translation = models.translate(&features, 10);
        for kind in PropertyKind::ALL {
            let probs: Vec<f32> = translation.of(kind).iter().map(|(_, p)| *p).collect();
            for w in probs.windows(2) {
                assert!(w[0] >= w[1], "{:?} options out of order", kind);
            }
            // and Theorem 2's cost is monotone under prefix truncation
            let c_full = CostModel::expected_list_cost(1.0, &probs);
            let c_half = CostModel::expected_list_cost(1.0, &probs[..probs.len() / 2]);
            assert!(c_half <= c_full + 1e-6);
        }
    }
}

/// Claim complexity computed via the formula crate agrees with the corpus
/// generator's recorded complexity (two implementations, one definition).
#[test]
fn complexity_definitions_agree() {
    let corpus = Corpus::generate(CorpusConfig::small());
    for claim in &corpus.claims {
        let formula = parse_formula(&claim.formula_text).unwrap();
        assert_eq!(
            claim_complexity(&formula, &claim.lookups),
            claim.complexity,
            "claim {}",
            claim.id
        );
    }
}
