//! Scrutinizer on a different domain: quarterly financial reporting.
//!
//! ```text
//! cargo run --example custom_domain
//! ```
//!
//! The paper stresses that formulas and parameters are domain-specific
//! ("an aggressive growth in the energy market may not be the same parameter
//! in the financial market", §2). This example builds a tiny finance catalog
//! with its own function registry and check formulas, then verifies claims
//! about revenue growth and margins — no energy-specific code involved.

use scrutinizer::core::{generate_queries, SystemConfig, Verifier};
use scrutinizer::data::{Catalog, TableBuilder};
use scrutinizer::formula::parse_formula;
use scrutinizer::query::functions::{Arity, Function};
use scrutinizer::query::FunctionRegistry;

fn main() {
    // quarterly income statements, keyed by line item (key column named `Index` by convention)
    let mut catalog = Catalog::new();
    catalog
        .add(
            // key column follows the `Index` convention the query printer assumes
            TableBuilder::new("Income_ACME", "Index", &["Q1", "Q2", "Q3", "Q4", "FY"])
                .row("Revenue", &[120.0, 135.0, 150.0, 162.0, 567.0])
                .expect("row")
                .row("CostOfSales", &[70.0, 78.0, 85.0, 90.0, 323.0])
                .expect("row")
                .row("OperatingIncome", &[18.0, 22.0, 27.0, 30.0, 97.0])
                .expect("row")
                .build(),
        )
        .expect("unique");

    // a domain-specific primitive: gross margin
    let mut registry = FunctionRegistry::standard();
    registry.register(Function {
        name: "GROSS_MARGIN",
        arity: Arity::Exact(2),
        description: "(revenue - cost) / revenue",
        imp: |a| {
            if a[0] == 0.0 {
                Err("margin on zero revenue".into())
            } else {
                Ok((a[0] - a[1]) / a[0])
            }
        },
    });

    let config = SystemConfig::default();

    // Claim 1: "Q4 revenue grew 8% quarter-over-quarter"
    let claim1 = "ACME Q4 revenue grew by 8% quarter-over-quarter";
    let p1 = Verifier::extract_parameter(claim1).expect("explicit");
    let growth = parse_formula("a / b - 1").expect("formula");
    let candidates = generate_queries(
        &catalog,
        &registry,
        &["Income_ACME".to_string()],
        &["Revenue".to_string()],
        &["Q3".to_string(), "Q4".to_string()],
        &[("a / b - 1".to_string(), growth)],
        Some(p1),
        &config,
    );
    report(claim1, &candidates);

    // Claim 2: "full-year gross margin reached 43%"
    let claim2 = "ACME full-year gross margin reached 43%";
    let p2 = Verifier::extract_parameter(claim2).expect("explicit");
    let margin = parse_formula("GROSS_MARGIN(a, b)").expect("formula");
    let candidates = generate_queries(
        &catalog,
        &registry,
        &["Income_ACME".to_string()],
        &["Revenue".to_string(), "CostOfSales".to_string()],
        &["FY".to_string()],
        &[("GROSS_MARGIN(a, b)".to_string(), margin)],
        Some(p2),
        &config,
    );
    report(claim2, &candidates);

    // Claim 3 (false): "operating income doubled during the year"
    let claim3 = "ACME operating income doubled during the year";
    let p3 = Verifier::extract_parameter(claim3).expect("fold");
    let ratio = parse_formula("a / b").expect("formula");
    let candidates = generate_queries(
        &catalog,
        &registry,
        &["Income_ACME".to_string()],
        &["OperatingIncome".to_string()],
        &["Q1".to_string(), "Q4".to_string()],
        &[("a / b".to_string(), ratio)],
        Some(p3),
        &config,
    );
    report(claim3, &candidates);
}

fn report(claim: &str, candidates: &[scrutinizer::core::QueryCandidate]) {
    println!("claim: {claim}");
    match candidates.iter().find(|c| c.matches_parameter) {
        Some(c) => println!("  ✓ VERIFIED by {}\n    value {:.4}\n", c.stmt, c.value),
        None => match candidates.first() {
            Some(c) => println!(
                "  ✗ NOT SUPPORTED — closest evidence {}\n    value {:.4} (suggested correction)\n",
                c.stmt, c.value
            ),
            None => println!("  ? no evidence found\n"),
        },
    }
}
