//! Quickstart: verify the paper's Example 1 claim end to end.
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! Builds the Figure 1 table, states the claim "In 2017, global electricity
//! demand grew by 3%, reaching 22 200 TWh", extracts its parameters, runs
//! query generation over a small context, and prints the verifying SQL.

use scrutinizer::core::{generate_queries, SystemConfig, Verifier};
use scrutinizer::data::{Catalog, TableBuilder};
use scrutinizer::formula::parse_formula;
use scrutinizer::query::FunctionRegistry;

fn main() {
    // 1. the data (Figure 1 fragment)
    let mut catalog = Catalog::new();
    catalog
        .add(
            TableBuilder::new("GED", "Index", &["2000", "2016", "2017"])
                .row("PGElecDemand", &[15_000.0, 21_566.0, 22_209.0])
                .expect("row")
                .row("PGINCoal", &[2_300.0, 2_380.0, 2_390.0])
                .expect("row")
                .row("TFCelec", &[14_800.0, 21_465.0, 22_040.0])
                .expect("row")
                .build(),
        )
        .expect("unique table");

    // 2. the claim
    let claim = "In 2017, global electricity demand grew by 3%, reaching 22 200 TWh";
    println!("claim: {claim}\n");

    // 3. extract the explicit parameter (Definition 2's p)
    let parameter = Verifier::extract_parameter(claim).expect("explicit claim");
    println!("extracted parameter p = {parameter} (3% → 0.03)\n");

    // 4. generate candidate queries (Algorithm 2) from a validated context
    let registry = FunctionRegistry::standard();
    let config = SystemConfig::default();
    let formulas = vec![
        (
            "POWER(a / b, 1 / (A1 - A2)) - 1".to_string(),
            parse_formula("POWER(a / b, 1 / (A1 - A2)) - 1").expect("formula"),
        ),
        (
            "a / b".to_string(),
            parse_formula("a / b").expect("formula"),
        ),
    ];
    let candidates = generate_queries(
        &catalog,
        &registry,
        &["GED".to_string()],
        &["PGElecDemand".to_string()],
        &["2016".to_string(), "2017".to_string()],
        &formulas,
        Some(parameter),
        &config,
    );

    // 5. show the verifying query, exactly as a fact checker would see it
    println!("candidate queries:");
    for candidate in &candidates {
        println!(
            "  [{}] {}  →  {:.4}",
            if candidate.matches_parameter {
                "MATCH"
            } else {
                "  -  "
            },
            candidate.stmt,
            candidate.value
        );
    }
    let best = candidates
        .iter()
        .find(|c| c.matches_parameter)
        .expect("claim verifies");
    println!(
        "\nclaim VERIFIED: demand grew by {:.2}% (claimed 3%, tolerance {}%)",
        best.value * 100.0,
        config.tolerance * 100.0
    );
}
