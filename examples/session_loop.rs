//! The engine's mixed-initiative session loop, driven in-process.
//!
//! ```text
//! cargo run --example session_loop
//! ```
//!
//! Builds a small corpus, starts the shared engine, and plays one checker
//! session against it: submit a report, answer the property screens a
//! (simulated) checker would see, read the top-k query suggestions, post
//! verdicts, and watch the engine re-plan what is left. Finishes with a
//! concurrent batch over the thread pool and the engine's metrics.

use scrutinizer::core::{OrderingStrategy, SystemConfig};
use scrutinizer::corpus::{Corpus, CorpusConfig};
use scrutinizer::crowd::WorkerConfig;
use scrutinizer::engine::engine::{Engine, EngineOptions};

fn main() {
    // ---- one shared engine ----
    let corpus = Corpus::generate(CorpusConfig::small());
    let engine = Engine::with_options(
        corpus,
        SystemConfig::test(),
        EngineOptions {
            retrain_interval: Some(10),
            ordering: OrderingStrategy::Ilp,
            ..EngineOptions::default()
        },
    );
    engine.pretrain(None);
    println!(
        "engine up: {} claims, {} sessions live\n",
        engine.corpus().claims.len(),
        0
    );

    // ---- an interactive session ----
    let session = engine.open_session("S1");
    let report: Vec<usize> = (0..6).collect();
    let batch = engine
        .submit_report(session, &report)
        .expect("submit report");
    println!(
        "submitted {} claims; first batch plans {} of them:",
        report.len(),
        batch.len()
    );
    for questions in &batch {
        println!(
            "  claim {:>2}: {} screens, expected cost {:>6.1}s",
            questions.claim_id,
            questions.screens.len(),
            questions.expected_cost
        );
    }

    // The checker: answers every screen with ground truth (a perfect
    // simulated expert), then judges the suggestions.
    for &claim_id in &report {
        let claim = engine.corpus().claims[claim_id].clone();
        let questions = engine.screens(session, claim_id).expect("screens");
        for screen in &questions.screens {
            use scrutinizer::core::PropertyKind;
            let truth = match screen.kind {
                PropertyKind::Relation => claim.relation.clone(),
                PropertyKind::Key => claim.key.clone(),
                _ => claim.attributes[0].clone(),
            };
            engine
                .post_answer(session, claim_id, screen.kind, &truth)
                .expect("post answer");
        }
        let suggestions = engine.suggest(session, claim_id).expect("suggest");
        let verdict_correct = suggestions.iter().any(|s| s.matches_parameter) || claim.is_correct;
        if let Some(best) = suggestions.first() {
            println!(
                "claim {:>2}: top suggestion (of {}) → {} = {:.4}{}",
                claim_id,
                suggestions.len(),
                best.sql,
                best.value,
                if best.matches_parameter {
                    "  [confirms the claim]"
                } else {
                    ""
                }
            );
        } else {
            println!("claim {claim_id:>2}: no candidate queries — manual judgment");
        }
        let record = engine
            .post_verdict(
                session,
                claim_id,
                verdict_correct,
                suggestions.first().map(|s| s.rank),
            )
            .expect("post verdict");
        if record.retrained {
            println!("           ↳ retrain threshold crossed; models updated");
        }
    }
    let verified = engine.close_session(session).expect("close");
    println!(
        "\nsession closed; {} claims verified interactively",
        verified.len()
    );

    // ---- the batch path: simulated checkers over the thread pool ----
    let claims: Vec<usize> = (6..30).collect();
    let outcomes = engine
        .verify_batch(
            &claims,
            WorkerConfig {
                accuracy: 1.0,
                skip_probability: 0.0,
                seed: 11,
                ..Default::default()
            },
        )
        .expect("all claim ids are in the corpus");
    let matched = outcomes.iter().filter(|o| o.verdict_matches_truth).count();
    println!(
        "batch of {} claims over {} pool threads: {}/{} verdicts match ground truth",
        claims.len(),
        std::thread::available_parallelism()
            .map_or(2, |n| n.get())
            .max(2),
        matched,
        outcomes.len()
    );

    // ---- metrics ----
    let stats = engine.stats();
    println!("\nengine stats:");
    println!(
        "  sessions opened/closed: {}/{}",
        stats.sessions_opened, stats.sessions_closed
    );
    println!("  claims verified:        {}", stats.claims_verified);
    println!(
        "  cache:                  {} hits / {} misses (hit rate {:.1}%), {} entries",
        stats.cache_hits,
        stats.cache_misses,
        stats.cache_hit_rate * 100.0,
        stats.cache_entries
    );
    println!(
        "  suggest latency:        mean {:.0}µs, p99 ≤ {}µs over {} runs",
        stats.suggest_latency.mean_micros(),
        stats.suggest_latency.quantile_micros(0.99),
        stats.suggest_latency.count
    );
    println!("  retrains:               {}", stats.retrains);
}
