//! Verify a synthetic IEA-style report with a simulated team of checkers.
//!
//! ```text
//! cargo run --release --example iea_report
//! ```
//!
//! Generates a small World-Energy-Outlook-like corpus (tables + sectioned
//! document + claims, ~25% injected errors), runs the full Algorithm 1 loop
//! with ILP claim ordering against a three-person simulated crowd, and
//! prints the verification report with suggested corrections.

use scrutinizer::core::{OrderingStrategy, SystemConfig, Verdict, Verifier};
use scrutinizer::corpus::{Corpus, CorpusConfig};
use scrutinizer::crowd::{Panel, WorkCalendar, WorkerConfig};

fn main() {
    let mut corpus_config = CorpusConfig::small();
    corpus_config.n_claims = 120;
    corpus_config.error_rate = 0.25;
    let corpus = Corpus::generate(corpus_config);
    println!(
        "corpus: {} tables, {} claims in {} sections ({} sentences)\n",
        corpus.catalog.len(),
        corpus.claims.len(),
        corpus.document.sections.len(),
        corpus.document.total_sentences
    );

    let config = SystemConfig::default();
    let mut verifier = Verifier::new(&corpus, config);
    let mut panel = Panel::new(3, WorkerConfig::default(), 42);
    let report = verifier.run(&corpus, &mut panel, OrderingStrategy::Ilp);

    println!("{report}");
    let calendar = WorkCalendar::default();
    println!(
        "team time: {:.2} work weeks (3 checkers × 8h × 5d)\n",
        calendar.weeks(report.total_crowd_seconds)
    );

    println!("sample of flagged claims with suggested corrections:");
    let mut shown = 0;
    for outcome in &report.outcomes {
        if let Verdict::Incorrect {
            suggested_value,
            closest_query,
        } = &outcome.verdict
        {
            let claim = &corpus.claims[outcome.claim_id];
            println!("  ✗ \"{}\"", claim.sentence_text);
            if let Some(v) = suggested_value {
                println!("    suggested value: {v:.4}");
            }
            if let Some(q) = closest_query {
                println!("    evidence: {q}");
            }
            shown += 1;
            if shown >= 5 {
                break;
            }
        }
    }

    let flagged = report.incorrect_count();
    let truly_wrong = corpus.claims.iter().filter(|c| !c.is_correct).count();
    println!("\nflagged {flagged} claims as erroneous ({truly_wrong} truly are)");
    println!(
        "verdict accuracy: {:.1}%",
        100.0 * report.verdict_accuracy()
    );
}
