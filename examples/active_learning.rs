//! Cold-start active learning: watch the classifiers improve as the crowd
//! verifies batches (the dynamics behind Figures 8 and 9).
//!
//! ```text
//! cargo run --release --example active_learning
//! ```
//!
//! Compares ILP claim ordering (uncertainty-driven) against document order
//! on the same corpus and prints both learning curves side by side.

use scrutinizer::core::{OrderingStrategy, SystemConfig, Verifier};
use scrutinizer::corpus::{Corpus, CorpusConfig};
use scrutinizer::crowd::{Panel, WorkerConfig};

fn learning_curve(corpus: &Corpus, strategy: OrderingStrategy) -> Vec<(usize, f64)> {
    let mut verifier = Verifier::new(corpus, SystemConfig::default());
    let mut panel = Panel::new(3, WorkerConfig::default(), 7);
    let report = verifier.run(corpus, &mut panel, strategy);
    report
        .accuracy_trace
        .iter()
        .map(|(n, accs)| (*n, accs.iter().sum::<f64>() / 4.0))
        .collect()
}

fn main() {
    let mut config = CorpusConfig::small();
    config.n_claims = 150;
    let corpus = Corpus::generate(config);
    println!(
        "cold start on {} claims — no initial training data\n",
        corpus.claims.len()
    );

    let ordered = learning_curve(&corpus, OrderingStrategy::Ilp);
    let sequential = learning_curve(&corpus, OrderingStrategy::Sequential);

    println!(
        "{:>10} | {:>12} | {:>12}",
        "#verified", "Scrutinizer", "Sequential"
    );
    println!("{}", "-".repeat(42));
    for (i, (n, acc)) in ordered.iter().enumerate() {
        let seq = sequential.get(i).map(|(_, a)| *a).unwrap_or(f64::NAN);
        println!(
            "{n:>10} | {acc:>11.1}% | {seq:>11.1}%",
            acc = 100.0 * acc,
            seq = 100.0 * seq
        );
    }

    let best_ordered = ordered.iter().map(|(_, a)| *a).fold(0.0, f64::max);
    let best_seq = sequential.iter().map(|(_, a)| *a).fold(0.0, f64::max);
    println!(
        "\npeak average accuracy — Scrutinizer: {:.1}%, Sequential: {:.1}%",
        100.0 * best_ordered,
        100.0 * best_seq
    );
    println!("(the paper's Figure 8 shows the same dominance pattern over most of the run)");
}
